//! Road-network navigation — the high-diameter workload where the paper's
//! adaptive runtime states and NUMA-aware barrier matter most (Table 6(a),
//! Figure 10(b)): traversals take thousands of sparse iterations.
//!
//! Computes shortest travel costs over a weighted road grid with SSSP on
//! Polymer, demonstrates the ablation (always-dense states vs adaptive), and
//! cross-checks distances on the Galois-like engine's delta-stepping.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use polymer::prelude::*;

fn main() {
    println!("generating a road network (grid, avg degree ≈ 2.4) ...");
    let edges = polymer::graph::dataset(DatasetId::RoadUsS, -4);
    let graph = Graph::from_edges(&edges);
    println!(
        "  {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Scale the machine's fixed resources to the scaled-down dataset, as the
    // experiment harness does (see MachineSpec docs): a 24 MiB LLC against a
    // 16 K-vertex grid would otherwise hide all memory effects.
    let mut spec = MachineSpec::intel80();
    spec.llc_scale = graph.num_vertices() as f64 / 23.9e6;
    spec.barrier_scale = graph.num_edges() as f64 / 58e6;
    // Start from a well-connected intersection (bond sampling can isolate
    // corners of the grid).
    let source = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();

    // SSSP with every Polymer optimization on.
    let machine = Machine::new(spec.clone());
    let fast = PolymerEngine::new().run(&machine, 80, &graph, &Sssp::new(source));
    let reachable = fast
        .values
        .iter()
        .filter(|&&d| d != polymer::algos::UNREACHED)
        .count();
    println!(
        "\nSSSP from intersection {source}: {} reachable, {} iterations, {:.2} ms simulated",
        reachable,
        fast.iterations,
        fast.micros() / 1000.0
    );

    // The farthest reachable intersection and its travel cost.
    let (far, cost) = fast
        .values
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != polymer::algos::UNREACHED)
        .max_by_key(|(_, &d)| d)
        .map(|(v, &d)| (v, d))
        .unwrap();
    println!("farthest intersection: {far} at travel cost {cost}");

    // Ablation: turn adaptive runtime states off (always-dense bitmaps) —
    // every sparse iteration now scans full state arrays (paper Table 6(a)).
    let machine = Machine::new(spec.clone());
    let dense = PolymerEngine::new().without_adaptive_states().run(
        &machine,
        80,
        &graph,
        &Sssp::new(source),
    );
    println!(
        "\nadaptive-states ablation: {:.2} ms adaptive vs {:.2} ms always-dense ({:.1}x)\n\
         (the dense-state penalty grows with vertex count x diameter; run\n\
         `cargo run -p polymer-bench --release --bin table6_ablations` for the\n\
         paper-scale version of this experiment)",
        fast.micros() / 1000.0,
        dense.micros() / 1000.0,
        dense.micros() / fast.micros()
    );
    assert_eq!(
        fast.values, dense.values,
        "ablation must not change results"
    );

    // Cross-check with the Galois-like engine's asynchronous delta-stepping.
    let machine = Machine::new(spec);
    let galois = GaloisEngine::new().run(&machine, 80, &graph, &Sssp::new(source));
    assert_eq!(
        fast.values, galois.values,
        "Bellman-Ford and delta-stepping must agree on shortest distances"
    );
    println!(
        "delta-stepping cross-check passed ({:.2} ms on the Galois-like engine)",
        galois.micros() / 1000.0
    );
}
