//! Quickstart: run PageRank on the Polymer engine and compare it against the
//! three baseline systems on the paper's 80-core Intel machine model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polymer::prelude::*;

fn main() {
    // A scaled-down twitter-like follower graph (deterministic R-MAT).
    println!("generating a twitter-like graph ...");
    let edges = polymer::graph::dataset(DatasetId::TwitterS, -2);
    let graph = Graph::from_edges(&edges);
    println!(
        "  {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The paper's 8-socket, 80-core Intel Xeon machine.
    let spec = MachineSpec::intel80();
    let prog = PageRank::new(graph.num_vertices());

    println!(
        "\nrunning 5 PageRank iterations with 80 threads on {}:",
        spec.name
    );
    let mut times = Vec::new();
    macro_rules! bench {
        ($name:expr, $engine:expr) => {{
            let machine = Machine::new(spec.clone());
            let r = $engine.run(&machine, 80, &graph, &prog);
            println!(
                "  {:<9} {:>9.3} ms   remote accesses {:>5.1}%   peak mem {:>6.1} MiB",
                $name,
                r.micros() / 1000.0,
                r.remote_report().access_rate_remote * 100.0,
                r.memory.peak_bytes as f64 / (1 << 20) as f64,
            );
            times.push(($name, r.micros()));
            r
        }};
    }
    let polymer = bench!("Polymer", PolymerEngine::new());
    bench!("Ligra", LigraEngine::new());
    bench!("X-Stream", XStreamEngine::new());
    bench!("Galois", GaloisEngine::new());

    // Verify against the sequential oracle.
    let (want, _) = run_reference(&graph, &prog);
    let err = polymer::algos::reference::max_rel_error(&polymer.values, &want);
    println!("\nPolymer result matches the sequential reference (max rel err {err:.2e})");

    // Who won?
    let best = times
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "fastest system: {} — the paper's Table 3 expects Polymer here",
        best.0
    );

    // The top-ranked vertices.
    let mut ranked: Vec<(usize, f64)> = polymer.values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 vertices by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!(
            "  vertex {v:>8}  rank {r:.3e}  (out-degree {})",
            graph.out_degree(*v as u32)
        );
    }
}
