//! NUMA machine explorer — reproduces the paper's Section 2.2 study
//! interactively: walks both machine models, prints their topology, latency
//! and bandwidth characteristics, and demonstrates the two observations the
//! whole system is built on:
//!
//! 1. interleaved/centralized placement wastes locality and congests one
//!    memory controller;
//! 2. sequential *remote* accesses beat random *local* ones.
//!
//! ```sh
//! cargo run --release --example numa_explorer
//! ```

use polymer::numa::{AllocPolicy, CostConfig, DistClass, Machine, MachineSpec, SimExecutor};

const N: usize = 1 << 22;
const TOUCH: usize = 300_000;

fn sweep(machine: &Machine, policy: AllocPolicy, sequential: bool) -> f64 {
    let data = machine.alloc_array::<u64>("explorer/data", N, policy);
    let cfg = CostConfig {
        cpu_cycles_per_access: 0.0,
        ..CostConfig::default()
    };
    let mut sim = SimExecutor::with_config(machine, 1, cfg, polymer::numa::BarrierKind::SenseNuma);
    let cost = sim.run_phase("sweep", |_t, ctx| {
        if sequential {
            for i in 0..TOUCH {
                data.get(ctx, i);
            }
        } else {
            let mut i = 1usize;
            for _ in 0..TOUCH {
                i = (i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407))
                    % N;
                data.get(ctx, i);
            }
        }
    });
    (TOUCH * 8) as f64 / cost.time_us
}

fn main() {
    for spec in [MachineSpec::intel80(), MachineSpec::amd64()] {
        let machine = Machine::new(spec.clone());
        let topo = machine.topology();
        println!(
            "=== {} — {} sockets x {} cores, {} MiB LLC/socket, {:.1} GHz ===",
            spec.name,
            topo.num_nodes(),
            topo.cores_per_node(),
            topo.llc_bytes() >> 20,
            spec.ghz
        );

        // Hop-distance matrix (paper Figure 3(a) topology).
        println!("\nhop distance matrix (from node i to node j):");
        print!("     ");
        for j in 0..topo.num_nodes() {
            print!("{j:>3}");
        }
        println!();
        for i in 0..topo.num_nodes() {
            print!("  {i:>2}:");
            for j in 0..topo.num_nodes() {
                print!("{:>3}", topo.hops(i, j));
            }
            println!();
        }

        // Latency table (paper Figure 3(b)).
        println!("\nlatency (cycles):  load          store");
        for (label, d) in [
            ("0-hop", DistClass::Local),
            ("1-hop", DistClass::OneHop),
            ("2-hop", DistClass::TwoHop),
        ] {
            println!(
                "  {label:<6}          {:>5.0}          {:>5.0}",
                spec.latency.load(d),
                spec.latency.store(d)
            );
        }

        // Measured bandwidth through the simulator (paper Figure 4).
        println!("\nmeasured bandwidth (MB/s), one core on node 0:");
        let far_node = 3; // two hops from node 0 on both machine models
        let cases = [
            ("sequential local", AllocPolicy::OnNode(0), true),
            (
                "sequential 2-hop remote",
                AllocPolicy::OnNode(far_node),
                true,
            ),
            ("random local", AllocPolicy::OnNode(0), false),
            ("random 2-hop remote", AllocPolicy::OnNode(far_node), false),
            ("sequential interleaved", AllocPolicy::Interleaved, true),
        ];
        let mut results = Vec::new();
        for (label, pol, seq) in cases {
            let mbs = sweep(&machine, pol, seq);
            println!("  {label:<26} {mbs:>7.0}");
            results.push((label, mbs));
        }
        let seq_remote = results[1].1;
        let rand_local = results[2].1;
        println!(
            "\n  ==> sequential REMOTE is {:.2}x faster than random LOCAL —\n\
             \x20     the observation Polymer's access strategy is built on.\n",
            seq_remote / rand_local
        );
        assert!(seq_remote > rand_local);
    }

    // Observation 2: centralized allocation congests one controller.
    println!("=== congestion demo: 80 cores hammering one node vs spread ===");
    let machine = Machine::new(MachineSpec::intel80());
    for (label, policy) in [
        ("centralized on node 0", AllocPolicy::Centralized),
        ("interleaved across 8", AllocPolicy::Interleaved),
    ] {
        let data = machine.alloc_array::<u64>("explorer/cong", N, policy);
        let mut sim = SimExecutor::new(&machine, 80);
        let cost = sim.run_phase("hammer", |tid, ctx| {
            let chunk = N / 80;
            for i in tid * chunk..(tid + 1) * chunk {
                data.get(ctx, i);
            }
        });
        println!(
            "  {label:<24} phase {:>8.0} µs (controller-bound: {})",
            cost.time_us,
            cost.dram_bound_us >= cost.max_thread_us
        );
    }
    println!("\ncentralized placement is controller-bound — the paper's Issue 1.");

    // Tracing demo: record a two-phase BSP step and print the per-phase
    // breakdown table the bench binaries emit (see docs/OBSERVABILITY.md).
    println!("\n=== traced BSP step: per-phase breakdown ===\n");
    let data = machine.alloc_array::<u64>("explorer/traced", N, AllocPolicy::Interleaved);
    let mut sim = SimExecutor::new(&machine, 80);
    sim.enable_trace();
    sim.set_iteration(Some(0));
    sim.run_phase("scatter", |tid, ctx| {
        let chunk = N / 80;
        for i in tid * chunk..(tid + 1) * chunk {
            data.get(ctx, i);
        }
    });
    sim.charge_barrier();
    sim.run_phase("apply", |tid, ctx| {
        let chunk = N / 800; // lighter vertex phase
        for i in tid * chunk..(tid + 1) * chunk {
            data.get(ctx, i);
        }
    });
    sim.charge_barrier();
    let buf = sim.clock().trace.buffer().expect("tracing enabled");
    print!("{}", polymer::numa::phase_table(buf));
    println!(
        "\nexport the same buffer with polymer::numa::chrome_trace_json for\n\
         chrome://tracing / ui.perfetto.dev, or pass --trace <path> to the\n\
         polymer-bench binaries."
    );
}
