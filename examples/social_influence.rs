//! Social-network influence analysis — the workload class the paper's
//! introduction motivates (social computation on follower graphs).
//!
//! Pipeline on a skewed power-law graph:
//! 1. connected components to find the giant community,
//! 2. PageRank to rank influencers inside it,
//! 3. BFS from the top influencer to measure how far influence reaches.
//!
//! All three stages run on the Polymer engine over the 8-socket Intel
//! machine model; stage results feed each other.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use std::collections::HashMap;

use polymer::prelude::*;

fn main() {
    println!("generating a power-law social graph (Zipf 2.0) ...");
    let mut edges = polymer::graph::dataset(DatasetId::PowerlawS, -3);
    let directed = Graph::from_edges(&edges);
    edges.symmetrize();
    let undirected = Graph::from_edges(&edges);
    println!(
        "  {} users, {} follow edges",
        directed.num_vertices(),
        directed.num_edges()
    );

    let spec = MachineSpec::intel80();
    let engine = PolymerEngine::new();

    // Stage 1: communities (CC on the symmetrized graph).
    let machine = Machine::new(spec.clone());
    let cc = engine.run(&machine, 80, &undirected, &ConnectedComponents::new());
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for &label in &cc.values {
        *sizes.entry(label).or_default() += 1;
    }
    let (&giant, &giant_size) = sizes.iter().max_by_key(|(_, &s)| s).unwrap();
    println!(
        "\ncommunities: {} total; giant community has {} users ({:.1}%)  [{:.2} ms simulated]",
        sizes.len(),
        giant_size,
        100.0 * giant_size as f64 / directed.num_vertices() as f64,
        cc.micros() / 1000.0
    );

    // Stage 2: influencer ranking (PageRank on the directed graph).
    let machine = Machine::new(spec.clone());
    let pr = engine.run(
        &machine,
        80,
        &directed,
        &PageRank::new(directed.num_vertices()),
    );
    let mut ranked: Vec<(u32, f64)> = pr
        .values
        .iter()
        .copied()
        .enumerate()
        .map(|(v, r)| (v as u32, r))
        .filter(|(v, _)| cc.values[*v as usize] == giant)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\ntop influencers in the giant community  [{:.2} ms simulated]:",
        pr.micros() / 1000.0
    );
    for (v, r) in ranked.iter().take(5) {
        println!(
            "  user {v:>8}  rank {r:.3e}  followers(in) {:>5}  follows(out) {:>4}",
            directed.in_degree(*v),
            directed.out_degree(*v)
        );
    }

    // Stage 3: influence reach (BFS from the top influencer, undirected).
    let top = ranked[0].0;
    let machine = Machine::new(spec);
    let bfs = engine.run(&machine, 80, &undirected, &Bfs::new(top));
    let mut by_level: HashMap<u32, usize> = HashMap::new();
    for &lvl in &bfs.values {
        if lvl != polymer::algos::UNVISITED {
            *by_level.entry(lvl).or_default() += 1;
        }
    }
    let reached: usize = by_level.values().sum();
    let max_level = by_level.keys().max().copied().unwrap_or(0);
    println!(
        "\ninfluence reach from user {top}: {} users within {} hops  [{:.2} ms simulated]",
        reached,
        max_level,
        bfs.micros() / 1000.0
    );
    for lvl in 0..=max_level.min(5) {
        println!(
            "  {:>7} users at distance {lvl}",
            by_level.get(&lvl).unwrap_or(&0)
        );
    }
    assert_eq!(
        reached, giant_size,
        "BFS must cover exactly the giant community"
    );
    println!("\nreach check passed: BFS covered exactly the giant community");
}
