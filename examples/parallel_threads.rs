//! Real OS threads, no simulation: runs the scatter–gather programs through
//! `polymer::api::run_parallel`, which coordinates genuine worker threads
//! with Polymer's hierarchical sense-reversing barrier and lock-free atomic
//! combines — the concurrency machinery the engines are built from,
//! exercised end-to-end and verified against the sequential oracle.
//!
//! ```sh
//! cargo run --release --example parallel_threads
//! ```

use std::time::Instant;

use polymer::api::run_parallel;
use polymer::prelude::*;

fn main() {
    let edges = polymer::graph::gen::rmat(14, 260_000, polymer::graph::gen::RMAT_GRAPH500, 7);
    let graph = Graph::from_edges(&edges);
    println!(
        "graph: {} vertices, {} edges; running with real threads\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // PageRank across thread counts (grouped into 2 barrier groups).
    let prog = PageRank::new(graph.num_vertices());
    let (want, _) = run_reference(&graph, &prog);
    for threads in [1, 2, 4] {
        let t0 = Instant::now();
        let (got, iters) = run_parallel(&graph, &prog, threads, 2);
        let host_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let err = polymer::algos::reference::max_rel_error(&got, &want);
        println!(
            "PageRank  {threads} thread(s): {iters} iterations, {host_ms:7.1} ms host, \
             max rel err vs reference {err:.2e}"
        );
        assert!(err < 1e-9);
    }

    // BFS: exact equality under concurrency (min-combine is order-free).
    let src = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();
    let bfs = Bfs::new(src);
    let (want, _) = run_reference(&graph, &bfs);
    let t0 = Instant::now();
    let (got, iters) = run_parallel(&graph, &bfs, 4, 2);
    println!(
        "\nBFS       4 thread(s): {iters} iterations, {:7.1} ms host, exact match: {}",
        t0.elapsed().as_secs_f64() * 1000.0,
        got == want
    );
    assert_eq!(got, want);

    let reached = got
        .iter()
        .filter(|&&l| l != polymer::algos::UNVISITED)
        .count();
    println!(
        "\n{} of {} vertices reachable from the top hub (vertex {src})",
        reached,
        graph.num_vertices()
    );
    println!("all parallel results verified against the sequential reference");
}
