//! # polymer — NUMA-aware graph-structured analytics
//!
//! A Rust reproduction of *NUMA-Aware Graph-Structured Analytics* (Zhang,
//! Chen & Chen, PPoPP 2015): the **Polymer** engine, the three baseline
//! systems it is evaluated against (Ligra-, X-Stream- and Galois-like), the
//! six benchmark algorithms, and a simulated cc-NUMA machine substrate that
//! reproduces the paper's measured latency/bandwidth characteristics.
//!
//! ## Quickstart
//!
//! ```
//! use polymer::prelude::*;
//!
//! // A scaled-down twitter-like graph (deterministic).
//! let edges = polymer::graph::gen::rmat(12, 60_000, polymer::graph::gen::RMAT_GRAPH500, 42);
//! let graph = Graph::from_edges(&edges);
//!
//! // An 80-core, 8-socket machine like the paper's Intel testbed.
//! let machine = Machine::new(MachineSpec::intel80());
//!
//! // Run five PageRank iterations on the Polymer engine with 80 threads.
//! let prog = PageRank::new(graph.num_vertices());
//! let result = PolymerEngine::new().run(&machine, 80, &graph, &prog);
//! println!(
//!     "PR finished in {:.3} simulated seconds; remote access rate {:.1}%",
//!     result.seconds(),
//!     result.remote_report().access_rate_remote * 100.0
//! );
//! assert_eq!(result.iterations, 5);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numa`] | `polymer-numa` | simulated NUMA machine, placement, cost model |
//! | [`graph`] | `polymer-graph` | CSR/CSC, generators, partitioners, I/O |
//! | [`sync`] | `polymer-sync` | barriers, lookup table, adaptive frontiers |
//! | [`api`] | `polymer-api` | the scatter–gather `Program`/`Engine` interface |
//! | [`engine`] | `polymer-core` | the Polymer engine |
//! | [`baselines`] | `polymer-{ligra,xstream,galois}` | the three comparison systems |
//! | [`algos`] | `polymer-algos` | PR, SpMV, BP, BFS, CC, SSSP + reference oracle |
//! | [`serve`] | `polymer-serve` | resident-graph request serving with batching |

#![deny(unsafe_code)]

pub use polymer_algos as algos;
pub use polymer_api as api;
pub use polymer_core as engine;
pub use polymer_faults as faults;
pub use polymer_graph as graph;
pub use polymer_numa as numa;
pub use polymer_serve as serve;
pub use polymer_sync as sync;

/// The three baseline engines the paper compares Polymer against.
pub mod baselines {
    pub use polymer_galois::GaloisEngine;
    pub use polymer_ligra::LigraEngine;
    pub use polymer_xstream::XStreamEngine;
}

/// Everything needed to run an algorithm on an engine.
pub mod prelude {
    pub use polymer_algos::{
        run_reference, BeliefPropagation, Bfs, ConnectedComponents, PageRank, SpMV, Sssp,
    };
    pub use polymer_api::{
        Backend, Checkpoint, CheckpointPolicy, CheckpointStore, Engine, EngineKind, Program,
        RecoveryReport, RecoverySession, RunResult, RunSupervisor, SupervisorConfig,
    };
    pub use polymer_core::{PolymerConfig, PolymerEngine};
    pub use polymer_faults::{FaultPlan, PolymerError, PolymerResult};
    pub use polymer_galois::GaloisEngine;
    pub use polymer_graph::{dataset, DatasetId, EdgeList, Graph};
    pub use polymer_ligra::LigraEngine;
    pub use polymer_numa::{AllocPolicy, BarrierKind, Machine, MachineSpec, SpillPolicy};
    pub use polymer_serve::{GraphService, RequestKind, ServeConfig, ServeResponse};
    pub use polymer_xstream::XStreamEngine;
}
