//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Maps the vendored serde shim's [`Value`] tree to and from JSON text:
//! [`to_string`] / [`to_string_pretty`] for output, [`from_str`] /
//! [`from_value`] for input. The emitted JSON is standard (RFC 8259):
//! integers print exactly, floats use Rust's shortest-round-trip form, and
//! non-finite floats become `null` as upstream serde_json does.

#![allow(clippy::all)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Map, Value};

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize a value of type `T` from an already-parsed [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips,
                // and always includes a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-mag));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let v = Value::Obj({
            let mut m = Map::new();
            m.insert("name", Value::Str("intel\"80\"".into()));
            m.insert("nodes", Value::U64(8));
            m.insert("ghz", Value::F64(2.4));
            m.insert("neg", Value::I64(-3));
            m.insert(
                "arr",
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::F64(0.5)]),
            );
            m
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let text = to_string(&data).unwrap();
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456789] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }
}
