//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal wall-clock harness with criterion's call shape: benchmark
//! groups, `bench_function`, `Bencher::iter`, throughput annotations, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs a short
//! warm-up, then a fixed measurement window, and prints mean time per
//! iteration (plus throughput when declared). There is no statistical
//! analysis, outlier rejection, or HTML report — numbers printed here are
//! indicative only.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to print throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle passed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; this harness sizes runs by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let id = id.into();
        if b.iters == 0 {
            println!("bench {}/{id}: no iterations recorded", self.name);
            return self;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3e} B/s)", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!(
            "bench {}/{id}: {:.3} us/iter over {} iters{rate}",
            self.name,
            per_iter * 1e6,
            b.iters
        );
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Warm-up and measurement windows: long enough to be stable for coarse
/// comparisons, short enough that `cargo bench` completes quickly.
const WARM_UP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(200);

impl Bencher {
    /// Time repeated calls of `f` until the measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + WARM_UP;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let start = Instant::now();
        let deadline = start + MEASURE;
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main()` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        g.bench_function("wrapping_add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(3));
                acc
            })
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
