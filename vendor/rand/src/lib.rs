//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Deterministic pseudo-random generation for the synthetic graph generators:
//! [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64, exposing the
//! [`Rng`]/[`SeedableRng`] subset the workspace uses (`gen`, `gen_range` over
//! integer ranges). The bit streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), so graphs generated under this shim differ in detail from ones
//! generated with the real crate — but every generator remains fully
//! deterministic in the seed, which is the property the experiments rely on.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of typed values and ranges from any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its natural distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the domain;
    /// `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`], producing elements of type `T`.
pub trait UniformRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map a random word onto `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias of a single multiply is irrelevant
/// for graph synthesis).
fn scale(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + scale(rng.next_u64(), span) as i128) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + scale(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman & Vigna),
    /// seeded by expanding the seed with SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(1..=100u32);
            assert!((1..=100).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 100;
            let w = r.gen_range(0..7usize);
            assert!(w < 7);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }
}
