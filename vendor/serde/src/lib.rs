//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy data model, this shim uses a
//! simple owned value tree ([`Value`]): [`Serialize`] renders a type into a
//! `Value` and [`Deserialize`] rebuilds it from one. The `serde_json` shim
//! then maps `Value` to and from JSON text. The derive macros (re-exported
//! from `serde_derive`) support what the workspace uses: structs with named
//! fields, unit-variant enums, and the `#[serde(default)]` /
//! `#[serde(default = "path")]` field attributes.

#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error (also used by the `serde_json` shim).
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// An ordered string-keyed map of values — the object node of [`Value`].
/// Insertion order is preserved so serialized output matches field order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map(Vec<(String, Value)>);

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map(Vec::new())
    }

    /// Insert `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        if let Some(slot) = self.0.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.0.push((key, value));
        None
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove and return the entry under `key`.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.0.iter().position(|(k, _)| k == key)?;
        Some(self.0.remove(idx).1)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A dynamically-typed serialized value: the common currency between
/// [`Serialize`], [`Deserialize`], and the `serde_json` text layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; not round-tripped through `f64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(Map),
}

impl Value {
    /// Borrow as an object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as an object map.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64` (accepts exact integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            Value::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64` (accepts exact integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the serialized form.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", v.kind())))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}", v.kind()
                    ))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::I64(x) } else { Value::U64(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|x| x as $t).ok_or_else(|| {
                    Error::custom(format!("expected number, found {}", v.kind()))
                })
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let arr = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, found {}", v.kind()))
                })?;
                if arr.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}", LEN, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Obj(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Obj(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        // Integral floats deserialize into integer types.
        assert_eq!(u64::from_value(&Value::F64(7.0)).unwrap(), 7);
        assert!(u64::from_value(&Value::F64(7.5)).is_err());
    }

    #[test]
    fn composite_round_trips() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let back: Vec<(String, u64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let arr = [[1u64, 2], [3, 4]];
        let back: [[u64; 2]; 2] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::U64(1));
        m.insert("a", Value::U64(2));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.remove("z"), Some(Value::U64(1)));
        assert!(!m.contains_key("z"));
    }
}
