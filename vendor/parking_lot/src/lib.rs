//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! This workspace builds in containers with no access to a crates.io mirror,
//! so external dependencies are vendored as minimal API-compatible shims (see
//! `vendor/README.md`). Only the surface the workspace actually uses is
//! provided: [`Mutex::lock`], [`RwLock::read`]/[`RwLock::write`], and a
//! [`Condvar`] usable with our [`MutexGuard`]. Like the real `parking_lot`
//! (and unlike `std`), locks here do not poison: a panic while holding a
//! guard leaves the lock usable, which the fault-injection tests rely on.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no poisoning `Result`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the inner `std` guard in an `Option` so [`Condvar::wait`] can move
/// it out and back in through an `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A panic in a previous
    /// holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|poison| poison.into_inner()),
        ))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard moved during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard moved during condvar wait")
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the lock
    /// is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake all threads blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_round_trip() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
