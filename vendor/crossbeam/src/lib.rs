//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides only [`scope`] — scoped threads that may borrow from the calling
//! stack frame — implemented over `std::thread::scope`. Matching crossbeam's
//! contract, `scope` returns `Err(payload)` instead of unwinding when a
//! spawned thread panics, which the parallel executor relies on to convert
//! worker panics into typed errors.

#![allow(clippy::all)]

use std::panic::AssertUnwindSafe;

/// Scope handle passed to the closure of [`scope`]; spawn threads with
/// [`Scope::spawn`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Argument passed to every spawned closure (crossbeam passes a nested scope
/// here; the workspace never uses it, so this is a placeholder).
pub struct ScopeArg {
    _private: (),
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries the panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to the enclosing [`scope`] call.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopeArg) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&ScopeArg { _private: () })),
        }
    }
}

/// Run `f` with a [`Scope`] whose spawned threads may borrow local state; all
/// threads are joined before this returns. Returns `Err` with a panic payload
/// if the closure or any unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack() {
        let hits = AtomicUsize::new(0);
        let r = super::scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                s.spawn(move |_| hits.fetch_add(1, Ordering::Relaxed));
            }
            "done"
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_child_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = super::scope(|s| s.spawn(|_| 21 * 2).join().unwrap());
        assert_eq!(r.unwrap(), 42);
    }
}
