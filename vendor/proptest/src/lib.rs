//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, integer-range and tuple
//! strategies, `collection::vec`/`collection::btree_set`, and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and no
//! persisted failure seeds: cases are generated from a fixed deterministic
//! seed (plus the test function's name), so failures reproduce exactly on
//! rerun, and `prop_assert*` failures panic like plain `assert*`.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case generator handed to [`Strategy::generate`].
pub mod test_runner {
    /// SplitMix64 stream seeded from a constant and the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test-identifying string so distinct tests explore
        /// distinct inputs while every run of one test is identical.
        pub fn deterministic(salt: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in salt.bytes() {
                state = state.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
            }
            TestRng { state }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always-`value` strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with element strategy `S` and target size in
    /// `len` (duplicates may make the realized set smaller, as in proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate `BTreeSet`s whose target size is drawn from `len`.
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(
            len.start < len.end,
            "btree_set strategy: empty length range"
        );
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates shrink the set rather than loop.
            for _ in 0..n.saturating_mul(4).max(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

// Compile the doctest-style example above as a unit test too.
#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 1..=4u32) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec((0u8..4, 0usize..2), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 2);
            }
        }

        #[test]
        fn flat_map_threads_dependent_values(
            pair in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }

        #[test]
        fn btree_sets_are_bounded(s in crate::collection::btree_set(0u32..50, 0..10)) {
            let s: BTreeSet<u32> = s;
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn same_test_reproduces_identically() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let draw = |salt: &str| {
            let mut rng = TestRng::deterministic(salt);
            (0..8)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"));
    }
}
