//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by walking
//! the raw `proc_macro::TokenStream` directly — no `syn`/`quote`, so it
//! builds with nothing but the compiler. Supported shapes are exactly what
//! the workspace uses:
//!
//! * structs with named fields, optionally carrying `#[serde(default)]` or
//!   `#[serde(default = "path::to::fn")]` on a field;
//! * enums whose variants are all unit variants (discriminants allowed),
//!   serialized as their name string.
//!
//! Anything else (tuple structs, generics, data-carrying variants, other
//! serde attributes) is a compile error naming the unsupported construct.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field `#[serde(...)]` configuration.
enum FieldDefault {
    /// Field is required.
    None,
    /// `#[serde(default)]` — use `Default::default()` when absent.
    Std,
    /// `#[serde(default = "path")]` — call `path()` when absent.
    Path(String),
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<(String, FieldDefault)>,
    },
    Enum {
        name: String,
        variants: Vec<String>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut inserts = String::new();
            for (f, _) in fields {
                inserts.push_str(&format!(
                    "__map.insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Obj(__map)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Serialize): generated code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for (f, dflt) in fields {
                let missing = match dflt {
                    FieldDefault::None => format!(
                        "return ::std::result::Result::Err(::serde::Error::custom(\
                             concat!(\"missing field `\", {f:?}, \"` in {name}\")))"
                    ),
                    FieldDefault::Std => "::std::default::Default::default()".to_string(),
                    FieldDefault::Path(p) => format!("{p}()"),
                };
                inits.push_str(&format!(
                    "{f}: match __obj.get({f:?}) {{\n\
                         ::std::option::Option::Some(__x) => \
                             ::serde::Deserialize::from_value(__x)?,\n\
                         ::std::option::Option::None => {missing},\n\
                     }},\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\
                                 \"expected object for {name}\")))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "::std::option::Option::Some({v:?}) => \
                         ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(\
                                 ::serde::Error::custom(format!(\
                                     \"unknown {name} variant: {{:?}}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Deserialize): generated code")
}

/// Parse the derive input into the supported [`Shape`]s, panicking (a compile
/// error at the derive site) on anything unsupported.
fn parse_item(input: TokenStream) -> Shape {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes (doc comments arrive as #[doc = ...]) and
    // visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive: generic type `{name}` is not supported by the vendored serde shim")
        }
        other => panic!(
            "derive: `{name}` must be a braced struct or enum \
             (tuple/unit bodies unsupported), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Parse `[attrs] [pub] name : Type ,` sequences.
fn parse_named_fields(body: TokenStream) -> Vec<(String, FieldDefault)> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Attributes before the field.
        let mut dflt = FieldDefault::None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    let group = match toks.next() {
                        Some(TokenTree::Group(g)) => g,
                        other => panic!("derive: malformed field attribute: {other:?}"),
                    };
                    if let Some(d) = parse_serde_attr(group.stream()) {
                        dflt = d;
                    }
                }
                _ => break,
            }
        }
        match toks.peek() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => {}
        }
        let fname = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "derive: field `{fname}` must be named (`name: Type`); \
                 tuple structs are unsupported, found {other:?}"
            ),
        }
        // Skip the type until a top-level comma. Generic arguments arrive
        // as individual `<`/`>` puncts, so track nesting depth.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                _ => {
                    toks.next();
                }
            }
        }
        fields.push((fname, dflt));
    }
    fields
}

/// Parse `[attrs] Name [= disc] ,` sequences; payload-carrying variants are
/// rejected.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip variant attributes (doc comments).
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let vname = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected variant name, found {other:?}"),
        };
        // Reject data-carrying variants; skip optional discriminant.
        match toks.peek() {
            Some(TokenTree::Group(_)) => panic!(
                "derive: variant `{vname}` carries data; the vendored serde shim \
                 supports unit variants only"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                toks.next();
                // Discriminant expression runs to the next comma.
                while let Some(t) = toks.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    toks.next();
                }
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(vname);
    }
    variants
}

/// If the attribute body is `serde(...)`, extract the field default spec.
fn parse_serde_attr(attr: TokenStream) -> Option<FieldDefault> {
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None, // e.g. #[doc = "..."]
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("derive: malformed #[serde(...)] attribute: {other:?}"),
    };
    let mut toks = inner.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!(
            "derive: unsupported serde attribute {other:?}; the vendored shim \
             supports only `default` and `default = \"path\"`"
        ),
    }
    match toks.next() {
        None => Some(FieldDefault::Std),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let lit = match toks.next() {
                Some(TokenTree::Literal(l)) => l.to_string(),
                other => panic!("derive: expected string after `default =`, found {other:?}"),
            };
            let path = lit.trim_matches('"').to_string();
            Some(FieldDefault::Path(path))
        }
        other => panic!("derive: malformed serde default attribute: {other:?}"),
    }
}
