//! # polymer-ligra — the Ligra-like vertex-centric baseline
//!
//! A faithful reimplementation of Ligra's engine strategy (Shun & Blelloch,
//! PPoPP'13) over the simulated NUMA machine, reproducing exactly the
//! execution flow the paper's Figure 2 analyzes:
//!
//! * **Hybrid direction switching** (Beamer): sparse frontiers run *push*
//!   mode (iterate active vertices, atomically scatter along out-edges);
//!   dense frontiers run *pull* mode (iterate all vertices, gather from
//!   active in-neighbors). The switch uses Ligra's `|active| + Σdeg >
//!   |E|/20` rule.
//! * **Adaptive frontier representation**: sparse vertex queues ↔ dense
//!   bitmaps, switched with the same threshold.
//! * **NUMA-oblivious layout**: topology and application data end up
//!   *interleaved* across nodes (the first-touch mismatch of the paper's
//!   Section 3.1) and per-iteration runtime states are *centrally*
//!   allocated by the main thread — so push mode issues random global
//!   writes (`RAND|W|G`) and pull mode random global reads (`RAND|R|G`),
//!   precisely the patterns Polymer eliminates.

#![deny(unsafe_code)]

use polymer_api::{
    atomic_combine, catch_engine_faults, charged_values_restore, charged_values_snapshot,
    check_divergence, degree_balanced_chunks, even_chunks, init_values, validate_run_config,
    DirectionPolicy, Engine, EngineKind, ExecProfile, FrontierInit, IterationDriver, Program,
    RecoverySession, RunResult, TopoArrays,
};
use polymer_faults::{PolymerError, PolymerResult};
use polymer_graph::{Graph, VId};
use polymer_numa::{AllocPolicy, BarrierKind, Machine};
use polymer_sync::{should_densify, DenseBitmap, Frontier, ThreadQueues};

/// The Ligra-like engine. Construct with [`LigraEngine::new`].
#[derive(Clone, Debug, Default)]
pub struct LigraEngine {
    /// Force push mode (disable the hybrid switch); for ablations.
    pub force_push: bool,
}

impl LigraEngine {
    /// An engine with the standard hybrid push/pull switching.
    pub fn new() -> Self {
        LigraEngine { force_push: false }
    }

    /// Disable pull mode (always push), for experiments.
    pub fn push_only(mut self) -> Self {
        self.force_push = true;
        self
    }
}

impl Engine for LigraEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Ligra
    }

    fn try_run_rec<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        g: &Graph,
        prog: &P,
        traced: bool,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>> {
        validate_run_config(threads, g, prog)?;
        catch_engine_faults(|| self.run_inner(machine, threads, g, prog, traced, recovery))
    }

    fn exec_profile(&self) -> ExecProfile {
        ExecProfile {
            direction: if self.force_push {
                DirectionPolicy::PushOnly
            } else {
                DirectionPolicy::Hybrid
            },
            adaptive_frontier: true,
        }
    }
}

impl LigraEngine {
    fn run_inner<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        g: &Graph,
        prog: &P,
        traced: bool,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>> {
        let n = g.num_vertices();
        let m = g.num_edges();
        let identity = prog.next_identity();
        let sc = prog.scatter_cycles();

        // Construction stage: interleaved layout everywhere (the paper's
        // observed outcome of first-touch with parallel constructors).
        let topo = TopoArrays::build(machine, g, prog.uses_weights(), |_| {
            AllocPolicy::Interleaved
        });
        let (curr, next) = init_values(
            machine,
            g,
            prog,
            AllocPolicy::Interleaved,
            AllocPolicy::Interleaved,
        );

        let mut driver =
            IterationDriver::new(machine, threads, BarrierKind::Hierarchical, traced, n);
        let mut frontier = match recovery.resume() {
            Some(ck) => {
                if ck.values.len() != n {
                    return Err(PolymerError::InvalidConfig(format!(
                        "resume checkpoint has {} values for a {n}-vertex graph",
                        ck.values.len()
                    )));
                }
                // Restore the checkpointed vertex state through a charged
                // "restore" sweep and continue the global iteration count.
                charged_values_restore(driver.sim(), threads, &curr, &ck.values);
                driver.resume_at(ck.iteration);
                Frontier::from_snapshot(
                    machine,
                    "stat/frontier",
                    n,
                    AllocPolicy::Centralized,
                    &ck.frontier,
                )
            }
            None => match prog.initial_frontier(g) {
                FrontierInit::All => Frontier::all(
                    machine,
                    "stat/frontier",
                    n,
                    AllocPolicy::Centralized,
                    m as u64,
                ),
                FrontierInit::Single(s) => Frontier::sparse(vec![s]),
            },
        };

        let queues = ThreadQueues::new(machine, threads);
        // Per-iteration runtime states are *centrally* allocated by the main
        // thread (Section 3.1); so is the dense frontier store.
        let make_dense = |items: &[u32]| {
            let bits = DenseBitmap::new(machine, "stat/frontier", n, AllocPolicy::Centralized);
            for &v in items {
                bits.set_unaccounted(v as usize);
            }
            bits
        };
        driver.run_recoverable(
            prog.max_iters(),
            &mut frontier,
            recovery,
            |f| !f.is_empty(),
            |sim, iters, frontier| {
                // Choose direction: dense frontiers pull, sparse ones push.
                // The frontier knows its exact total out-degree.
                let frontier_degree = frontier.out_degree(|v| g.out_degree(v) as u64);
                let use_pull = !self.force_push
                    && !prog.prefer_push()
                    && should_densify(frontier.len() as u64, frontier_degree, m as u64);
                // `frontier` is consumed below and rebuilt after apply; keep
                // the converted representation alive through the scatter
                // phase.
                let taken = std::mem::replace(frontier, Frontier::sparse(Vec::new()));

                // Per-iteration runtime state, centrally allocated.
                let updated =
                    DenseBitmap::new(machine, "stat/updated", n, AllocPolicy::Centralized);

                let _converted;
                if use_pull {
                    let fr = taken.into_dense(
                        machine,
                        "stat/frontier",
                        n,
                        AllocPolicy::Centralized,
                        frontier_degree,
                    );
                    let bits = fr.as_dense().expect("dense after conversion");
                    let all_active = fr.len() == n;
                    // Balance pull chunks by in-edge counts (Ligra's cilk_for
                    // load balancing), not raw vertex counts.
                    let in_degrees: Vec<u32> = (0..n)
                        .map(|v| g.in_degree(v as polymer_graph::VId) as u32)
                        .collect();
                    let chunks = polymer_graph::edge_balanced_ranges(&in_degrees, threads);
                    // Pull targets are chunk-owned: every accounted write
                    // (`next`, `updated`) lands on the thread's own targets,
                    // and reads see only pre-phase state — so the whole task
                    // is shard-safe compute with nothing to publish.
                    sim.run_phase_split(
                        "gather-pull",
                        |tid, ctx| {
                            for t in chunks[tid].clone() {
                                // Offset pairs re-read the previous vertex's
                                // end — the bulk path charges ranges once, so
                                // they stay on the scalar path to keep that
                                // access pattern.
                                let lo = topo.in_off.get(ctx, t) as usize;
                                let hi = topo.in_off.get(ctx, t + 1) as usize;
                                let mut acc = identity;
                                let mut any = false;
                                if all_active {
                                    // Dense sweep: every in-edge is consumed,
                                    // so the edge-aligned arrays stream in
                                    // bulk (raw u32s or encoded bytes).
                                    let src_it = topo.in_src_stream(ctx, t, lo, hi);
                                    let deg_it = topo.in_src_deg.iter_seq(ctx, lo..hi);
                                    let mut w_it =
                                        topo.in_w.as_ref().map(|ws| ws.iter_seq(ctx, lo..hi));
                                    for (s, deg) in src_it.zip(deg_it) {
                                        let w = match &mut w_it {
                                            Some(it) => it.next().expect("weight stream aligned"),
                                            None => 1,
                                        };
                                        // Source values are indexed by vertex
                                        // id — random, scalar path.
                                        let sv = curr.load(ctx, s as usize);
                                        acc = prog.fold(acc, prog.scatter(s, sv, w, deg));
                                        ctx.charge_cycles(sc);
                                        any = true;
                                    }
                                } else {
                                    // Frontier-gated: the source stream is
                                    // still fully consumed; weight/value/
                                    // degree reads depend on the per-source
                                    // bitmap test — scalar.
                                    for (k, s) in topo.in_src_stream(ctx, t, lo, hi).enumerate() {
                                        let e = lo + k;
                                        if bits.test(ctx, s as usize) {
                                            let w = match &topo.in_w {
                                                Some(ws) => ws.get(ctx, e),
                                                None => 1,
                                            };
                                            let sv = curr.load(ctx, s as usize);
                                            let deg = topo.in_src_deg.get(ctx, e);
                                            acc = prog.fold(acc, prog.scatter(s, sv, w, deg));
                                            ctx.charge_cycles(sc);
                                            any = true;
                                        }
                                    }
                                }
                                if any {
                                    next.store(ctx, t, acc);
                                    updated.set(ctx, t);
                                }
                            }
                        },
                        |_, _, ()| {},
                    );
                    _converted = fr;
                } else {
                    let fr = taken.into_sparse();
                    let items: Vec<VId> = fr.as_sparse().expect("sparse after conversion").to_vec();
                    let chunks = degree_balanced_chunks(&items, |v| g.out_degree(v), threads);
                    // Push targets are arbitrary: combines into `next` and
                    // the `updated` test-and-set that gates queue pushes
                    // observe other threads' same-phase writes, so they move
                    // to the serially replayed publish half. Compute streams
                    // the topology and logs (target, contribution) pairs.
                    sim.run_phase_split(
                        "scatter-push",
                        |tid, ctx| {
                            let mut log: Vec<(VId, P::Val)> = Vec::new();
                            for &s in &items[chunks[tid].clone()] {
                                let si = s as usize;
                                // Offset pair + source value are indexed by
                                // vertex id (random for a sparse frontier) —
                                // scalar path.
                                let lo = topo.out_off.get(ctx, si) as usize;
                                let hi = topo.out_off.get(ctx, si + 1) as usize;
                                let sv = curr.load(ctx, si);
                                let deg = (hi - lo) as u32;
                                // Every out-edge of an active source is
                                // consumed, so the edge-aligned arrays stream
                                // in bulk.
                                let dst_it = topo.out_dst_stream(ctx, si, lo, hi);
                                let mut w_it =
                                    topo.out_w.as_ref().map(|ws| ws.iter_seq(ctx, lo..hi));
                                for t in dst_it {
                                    let w = match &mut w_it {
                                        Some(it) => it.next().expect("weight stream aligned"),
                                        None => 1,
                                    };
                                    log.push((t, prog.scatter(s, sv, w, deg)));
                                    ctx.charge_cycles(sc);
                                }
                            }
                            log
                        },
                        |_tid, ctx, log| {
                            for (t, c) in log {
                                let t = t as usize;
                                // Combine target / updated bit / queue push
                                // are destination-indexed (random) — scalar
                                // path.
                                atomic_combine(prog, &next, ctx, t, c);
                                if updated.set(ctx, t) {
                                    queues.push(ctx, t as VId);
                                }
                            }
                        },
                    );
                    _converted = fr;
                }
                sim.charge_barrier();

                // Apply phase over the updated set; collect the new frontier.
                // Apply items are unique (chunk-owned targets in pull mode,
                // first-setter winners in push mode), so the whole task is
                // shard-safe compute; the per-thread alive tallies ride back
                // as the compute payload.
                let mut alive_count = vec![0u64; threads];
                let mut alive_degree = vec![0u64; threads];
                if use_pull {
                    let chunks = even_chunks(n, threads);
                    sim.run_phase_split(
                        "apply",
                        |tid, ctx| {
                            let (mut cnt, mut deg) = (0u64, 0u64);
                            for t in chunks[tid].clone() {
                                if !updated.test(ctx, t) {
                                    continue;
                                }
                                let acc = next.load(ctx, t);
                                let cv = curr.load(ctx, t);
                                let (val, alive) = prog.apply(t as VId, acc, cv);
                                curr.store(ctx, t, val);
                                next.store(ctx, t, identity);
                                if alive {
                                    queues.push(ctx, t as VId);
                                    cnt += 1;
                                    deg += topo.out_deg.get(ctx, t) as u64;
                                }
                            }
                            (cnt, deg)
                        },
                        |tid, _ctx, (cnt, deg)| {
                            alive_count[tid] = cnt;
                            alive_degree[tid] = deg;
                        },
                    );
                } else {
                    let items = queues.drain_merged();
                    let chunks = even_chunks(items.len(), threads);
                    sim.run_phase_split(
                        "apply",
                        |tid, ctx| {
                            let (mut cnt, mut deg) = (0u64, 0u64);
                            for &t in &items[chunks[tid].clone()] {
                                let ti = t as usize;
                                let acc = next.load(ctx, ti);
                                let cv = curr.load(ctx, ti);
                                let (val, alive) = prog.apply(t, acc, cv);
                                curr.store(ctx, ti, val);
                                next.store(ctx, ti, identity);
                                if alive {
                                    queues.push(ctx, t);
                                    cnt += 1;
                                    deg += topo.out_deg.get(ctx, ti) as u64;
                                }
                            }
                            (cnt, deg)
                        },
                        |tid, _ctx, (cnt, deg)| {
                            alive_count[tid] = cnt;
                            alive_degree[tid] = deg;
                        },
                    );
                }
                sim.charge_barrier();

                // Build the next frontier and pick its representation.
                let alive: u64 = alive_count.iter().sum();
                let degree: u64 = alive_degree.iter().sum();
                let items = queues.drain_merged();
                debug_assert_eq!(items.len() as u64, alive);
                *frontier =
                    Frontier::rebuild(items, degree, m as u64, true, !self.force_push, make_dense);
                check_divergence(&curr, iters)?;
                Ok(())
            },
            |sim, frontier| {
                (
                    charged_values_snapshot(sim, threads, &curr),
                    frontier.to_snapshot(|v| g.out_degree(v) as u64),
                )
            },
        )?;

        Ok(driver.finish(curr.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_algos::{run_reference, Bfs, ConnectedComponents, PageRank, SpMV, Sssp};
    use polymer_api::PolymerError;
    use polymer_graph::gen;
    use polymer_numa::MachineSpec;

    fn check_exact<P: Program>(g: &Graph, prog: &P)
    where
        P::Val: Eq,
    {
        let m = Machine::new(MachineSpec::test2());
        let got = LigraEngine::new().run(&m, 4, g, prog);
        let (want, _) = run_reference(g, prog);
        assert_eq!(got.values, want);
    }

    #[test]
    fn bfs_matches_reference_on_rmat() {
        let el = gen::rmat(10, 8_000, gen::RMAT_GRAPH500, 11);
        let g = Graph::from_edges(&el);
        check_exact(&g, &Bfs::new(0));
    }

    #[test]
    fn sssp_matches_reference_on_road() {
        let el = gen::road_grid(16, 16, 0.6, 3);
        let g = Graph::from_edges(&el);
        check_exact(&g, &Sssp::new(0));
    }

    #[test]
    fn cc_matches_reference() {
        let mut el = gen::uniform(300, 500, 7);
        el.symmetrize();
        let g = Graph::from_edges(&el);
        check_exact(&g, &ConnectedComponents::new());
    }

    #[test]
    fn pagerank_close_to_reference() {
        let el = gen::rmat(9, 4_000, gen::RMAT_GRAPH500, 5);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m = Machine::new(MachineSpec::test2());
        let got = LigraEngine::new().run(&m, 4, &g, &prog);
        let (want, _) = run_reference(&g, &prog);
        let err = polymer_algos::reference::max_rel_error(&got.values, &want);
        assert!(err < 1e-9, "max rel error {err}");
    }

    #[test]
    fn spmv_close_to_reference() {
        let el = gen::uniform(200, 2_000, 9);
        let g = Graph::from_edges(&el);
        let prog = SpMV::new();
        let m = Machine::new(MachineSpec::test2());
        let got = LigraEngine::new().run(&m, 2, &g, &prog);
        let (want, _) = run_reference(&g, &prog);
        let err = polymer_algos::reference::max_rel_error(&got.values, &want);
        assert!(err < 1e-9, "max rel error {err}");
    }

    #[test]
    fn push_only_matches_hybrid_results() {
        let el = gen::rmat(9, 4_000, gen::RMAT_GRAPH500, 13);
        let g = Graph::from_edges(&el);
        let prog = Bfs::new(1);
        let m1 = Machine::new(MachineSpec::test2());
        let hybrid = LigraEngine::new().run(&m1, 4, &g, &prog);
        let m2 = Machine::new(MachineSpec::test2());
        let push = LigraEngine::new().push_only().run(&m2, 4, &g, &prog);
        assert_eq!(hybrid.values, push.values);
    }

    #[test]
    fn out_of_range_source_is_typed_error() {
        let el = gen::uniform(50, 100, 3);
        let g = Graph::from_edges(&el);
        let m = Machine::new(MachineSpec::test2());
        let err = LigraEngine::new()
            .try_run(&m, 4, &g, &Bfs::new(1_000))
            .map(|r| r.iterations)
            .unwrap_err();
        assert!(matches!(err, PolymerError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn clock_advances_and_memory_reported() {
        let el = gen::rmat(10, 8_000, gen::RMAT_GRAPH500, 2);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m = Machine::new(MachineSpec::intel80());
        let r = LigraEngine::new().run(&m, 80, &g, &prog);
        assert!(r.seconds() > 0.0);
        assert!(r.memory.peak_bytes > 0);
        assert_eq!(r.iterations, 5);
        assert!(
            r.total_cost().count_remote > 0,
            "interleaved layout must touch remote nodes"
        );
        assert_eq!(r.sockets, 8);
    }
}
