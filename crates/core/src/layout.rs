//! Polymer's NUMA-aware graph layout (paper Section 4.2).
//!
//! For a machine with `N` nodes the vertex space is split into `N`
//! contiguous ranges (edge-balanced by default). Per node and direction:
//!
//! * **push**: the node holds every edge whose *target* it owns, grouped by
//!   source vertex. Each distinct source is represented by an *agent* — an
//!   immutable replica holding just the source's id, out-degree, and the
//!   offset of its local edge group ("the start of neighboring edges and
//!   the degree of the vertex"). Agents ascend by source id, so reading the
//!   global `curr` array while scanning them is sequential.
//! * **pull**: symmetrically, the node holds every edge whose *source* it
//!   owns, grouped by target; pull agents ascend by target id, so writes to
//!   the global `next` array are sequential.
//!
//! All topology and agent arrays are discrete node-local allocations
//! (`AllocPolicy::OnNode`); the application-data arrays are contiguous
//! virtual ranges with chunked physical placement (built by the engine).

use std::ops::{Range, RangeFrom};

use polymer_graph::{edge_balanced_ranges, vertex_balanced_ranges, DeltaDecoder, Graph, VId};
use polymer_numa::{AccessCtx, AllocPolicy, CompressedLists, Machine, NumaArray};

/// Storage for one direction's grouped edge endpoints: a raw `u32` array, or
/// delta/varint-encoded per-agent lists when the global
/// [`compressed_topology`](polymer_numa::compressed_topology) toggle was on
/// at build time. Compressed lists are anchored at the agent's own vertex id
/// and billed by *encoded* bytes through the charged accessors, so the
/// compression shows up as simulated bytes saved.
pub enum EndpointStore {
    /// One `u32` per edge, grouped by agent.
    Raw(NumaArray<u32>),
    /// Delta/varint-encoded lists (one per agent) plus the total edge count,
    /// which the encoding no longer stores explicitly.
    Compressed {
        /// The encoded lists with their byte offsets.
        lists: CompressedLists,
        /// Number of edges across all lists.
        edges: usize,
    },
}

impl EndpointStore {
    /// Number of edges stored (all agents together).
    pub fn len(&self) -> usize {
        match self {
            EndpointStore::Raw(arr) => arr.len(),
            EndpointStore::Compressed { edges, .. } => *edges,
        }
    }

    /// Whether the store holds no edges.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the endpoints are delta/varint-encoded.
    pub fn is_compressed(&self) -> bool {
        matches!(self, EndpointStore::Compressed { .. })
    }

    /// Simulated footprint of the endpoint data in bytes (raw: 4 bytes per
    /// edge; compressed: encoded bytes plus the per-list offset table).
    pub fn stored_bytes(&self) -> usize {
        match self {
            EndpointStore::Raw(arr) => arr.len() * 4,
            EndpointStore::Compressed { lists, .. } => {
                lists.encoded_bytes() + (lists.num_lists() + 1) * 8
            }
        }
    }
}

/// Accounted stream over one agent's endpoints (no edge indices).
pub enum EndpointIter<'a> {
    /// Raw slice walk.
    Raw(std::iter::Copied<std::slice::Iter<'a, u32>>),
    /// Varint decode of an encoded list (decode itself is free; the encoded
    /// bytes were already charged when the list was fetched).
    Compressed(DeltaDecoder<'a>),
}

impl Iterator for EndpointIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            EndpointIter::Raw(it) => it.next(),
            EndpointIter::Compressed(it) => it.next(),
        }
    }
}

/// Accounted stream over one agent's endpoints as `(edge_index, endpoint)`
/// pairs. The edge index is exact in raw mode and in compressed mode with
/// weights (where it indexes the weight array); in compressed mode without
/// weights nothing consumes it and it starts at zero.
pub enum IndexedEndpointIter<'a> {
    /// Raw slice walk zipped with its edge range.
    Raw(std::iter::Zip<Range<usize>, std::iter::Copied<std::slice::Iter<'a, u32>>>),
    /// Varint decode zipped with edge indices from the agent's start offset.
    Compressed(std::iter::Zip<RangeFrom<usize>, DeltaDecoder<'a>>),
}

impl Iterator for IndexedEndpointIter<'_> {
    type Item = (usize, u32);

    #[inline]
    fn next(&mut self) -> Option<(usize, u32)> {
        match self {
            IndexedEndpointIter::Raw(it) => it.next(),
            IndexedEndpointIter::Compressed(it) => it.next(),
        }
    }
}

/// One direction's per-node edge structure: agents plus grouped edges.
pub struct DirLayout {
    /// Agent vertex ids, ascending (sources in push, targets in pull).
    pub agent_id: NumaArray<u32>,
    /// Agent out-degrees (the full graph out-degree, needed by `scatter`).
    pub agent_deg: NumaArray<u32>,
    /// Offsets into the edge arrays (`agents + 1` entries).
    pub agent_off: NumaArray<u32>,
    /// Dense map from vertex id to agent slot + 1 (0 = no local edges);
    /// used by sparse-frontier processing.
    pub agent_idx: NumaArray<u32>,
    /// Edge endpoints (targets in push, sources in pull), local to the node.
    pub endpoint: EndpointStore,
    /// Edge weights, when the program uses them.
    pub weight: Option<NumaArray<u32>>,
    /// Per-thread agent slices, balanced by edge count.
    pub slices: Vec<Range<usize>>,
}

impl DirLayout {
    /// Accounted stream of agent `a`'s endpoints plus, when the layout
    /// carries weights, the aligned bulk weight stream. `anchor` is the
    /// agent's vertex id (already read by the caller), which anchors the
    /// delta decode. Raw mode charges the `agent_off` pair, the endpoint run
    /// and the weight run — exactly what the engines charged when they read
    /// the arrays directly. Compressed mode charges the encoded offsets and
    /// bytes instead, and touches `agent_off` only if the weight array (raw,
    /// edge-indexed) still needs the edge range.
    pub fn agent_edges<'s>(
        &'s self,
        ctx: &mut AccessCtx,
        a: usize,
        anchor: VId,
    ) -> (
        EndpointIter<'s>,
        Option<std::iter::Copied<std::slice::Iter<'s, u32>>>,
    ) {
        match &self.endpoint {
            EndpointStore::Raw(arr) => {
                let lo = self.agent_off.get(ctx, a) as usize;
                let hi = self.agent_off.get(ctx, a + 1) as usize;
                let eps = EndpointIter::Raw(arr.load_range(ctx, lo..hi).iter().copied());
                let w = self
                    .weight
                    .as_ref()
                    .map(|ws| ws.load_range(ctx, lo..hi).iter().copied());
                (eps, w)
            }
            EndpointStore::Compressed { lists, .. } => {
                let w = self.weight.as_ref().map(|ws| {
                    let lo = self.agent_off.get(ctx, a) as usize;
                    let hi = self.agent_off.get(ctx, a + 1) as usize;
                    ws.load_range(ctx, lo..hi).iter().copied()
                });
                let eps = EndpointIter::Compressed(DeltaDecoder::new(anchor, lists.list(ctx, a)));
                (eps, w)
            }
        }
    }

    /// Accounted stream of agent `a`'s endpoints as `(edge_index, endpoint)`
    /// pairs, for callers that gate per-edge scalar accesses (pull). Charges
    /// like [`DirLayout::agent_edges`] but never streams weights in bulk.
    pub fn agent_edges_indexed<'s>(
        &'s self,
        ctx: &mut AccessCtx,
        a: usize,
        anchor: VId,
    ) -> IndexedEndpointIter<'s> {
        match &self.endpoint {
            EndpointStore::Raw(arr) => {
                let lo = self.agent_off.get(ctx, a) as usize;
                let hi = self.agent_off.get(ctx, a + 1) as usize;
                IndexedEndpointIter::Raw((lo..hi).zip(arr.load_range(ctx, lo..hi).iter().copied()))
            }
            EndpointStore::Compressed { lists, .. } => {
                let lo = if self.weight.is_some() {
                    self.agent_off.get(ctx, a) as usize
                } else {
                    0
                };
                IndexedEndpointIter::Compressed(
                    (lo..).zip(DeltaDecoder::new(anchor, lists.list(ctx, a))),
                )
            }
        }
    }

    /// Unaccounted copy of every endpoint in edge order (tests,
    /// verification).
    pub fn endpoint_values(&self) -> Vec<u32> {
        match &self.endpoint {
            EndpointStore::Raw(arr) => arr.raw().to_vec(),
            EndpointStore::Compressed { lists, edges } => {
                let mut out = Vec::with_capacity(*edges);
                for (slot, &v) in self.agent_id.raw().iter().enumerate() {
                    out.extend(DeltaDecoder::new(v, lists.raw_list(slot)));
                }
                out
            }
        }
    }
}

/// Everything one node owns.
pub struct NodeLayout {
    /// The contiguous vertex range this node owns.
    pub range: Range<usize>,
    /// Push-direction structure (edges targeting this node).
    pub push: DirLayout,
    /// Pull-direction structure (edges sourced from this node), when built.
    pub pull: Option<DirLayout>,
}

/// The full partitioned layout.
pub struct PolymerLayout {
    /// Per-node layouts, indexed by node id.
    pub nodes: Vec<NodeLayout>,
    /// Global out-degrees, contiguous-virtual with chunked placement.
    pub out_deg: NumaArray<u32>,
    /// Cached copy of the range boundaries for owner lookup.
    bounds: Vec<usize>,
    /// Whether placement is NUMA-aware (false = everything interleaved).
    numa_aware: bool,
}

impl PolymerLayout {
    /// Build the layout for `g` on `machine`. `threads_per_node[i]` is the
    /// number of worker threads bound to node `i` (the partition count is
    /// its length — only nodes that actually have threads own a partition).
    /// `balanced` selects edge-oriented balanced partitioning (Section 5);
    /// `with_pull` builds the pull-direction structures (skipped for
    /// push-only programs, saving agent memory); `with_weights` copies edge
    /// weights.
    pub fn build(
        machine: &Machine,
        g: &Graph,
        threads_per_node: &[usize],
        balanced: bool,
        with_pull: bool,
        with_weights: bool,
    ) -> Self {
        Self::build_with_placement(
            machine,
            g,
            threads_per_node,
            balanced,
            with_pull,
            with_weights,
            true,
        )
    }

    /// Like [`PolymerLayout::build`], with NUMA-aware placement optionally
    /// disabled: partitioning and agents stay (the computation is still
    /// factored), but every allocation is interleaved — isolating how much
    /// of Polymer's win comes from placement vs. from the algorithm
    /// structure (an extension ablation beyond the paper's Table 6).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_placement(
        machine: &Machine,
        g: &Graph,
        threads_per_node: &[usize],
        balanced: bool,
        with_pull: bool,
        with_weights: bool,
        numa_aware: bool,
    ) -> Self {
        let n = g.num_vertices();
        let nnodes = threads_per_node.len();
        assert!(nnodes >= 1, "need at least one partition");
        let mut ranges = if balanced {
            // Balance the direction-relevant work: in-degrees drive push
            // (edges live with their targets) and out-degrees drive pull;
            // their sum balances both within one vertex split.
            let work: Vec<u32> = (0..n)
                .map(|v| {
                    let v = v as VId;
                    (g.in_degree(v) + if with_pull { g.out_degree(v) } else { 0 }) as u32
                })
                .collect();
            edge_balanced_ranges(&work, nnodes)
        } else {
            vertex_balanced_ranges(n, nnodes)
        };
        // Polymer maps each partition's physical pages onto its node, so
        // partition boundaries are page-aligned in the real system; round
        // cut points to a 4 KiB multiple of every element width used by the
        // contiguous-virtual arrays (1024 vertices covers u32 and u64).
        // Tiny graphs (tests) skip alignment to keep partitions non-empty.
        const ALIGN: usize = 1024;
        if n >= nnodes * 4 * ALIGN {
            // Round every cut to the nearest aligned position, keeping the
            // sequence monotone (a partition may end up empty on extremely
            // skewed inputs, which the engine handles).
            let mut prev_end = 0usize;
            for range in ranges.iter_mut().take(nnodes - 1) {
                let cut = range.end;
                let rounded = ((cut + ALIGN / 2) / ALIGN * ALIGN).clamp(prev_end, n);
                range.start = prev_end;
                range.end = rounded;
                prev_end = rounded;
            }
            ranges[nnodes - 1].start = prev_end;
            ranges[nnodes - 1].end = n;
        }

        let mut nodes = Vec::with_capacity(nnodes);
        for (node, range) in ranges.iter().enumerate() {
            let push = Self::build_dir(
                machine,
                g,
                node,
                range,
                true,
                threads_per_node[node],
                with_weights,
                numa_aware,
            );
            let pull = with_pull.then(|| {
                Self::build_dir(
                    machine,
                    g,
                    node,
                    range,
                    false,
                    threads_per_node[node],
                    with_weights,
                    numa_aware,
                )
            });
            nodes.push(NodeLayout {
                range: range.clone(),
                push,
                pull,
            });
        }

        // Application-adjacent metadata: global out-degrees, contiguous
        // virtual, physically chunked by owner (like `curr`/`next`).
        let deg_policy = if numa_aware {
            AllocPolicy::ChunkedElems(
                ranges
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.len(), i))
                    .collect(),
            )
        } else {
            AllocPolicy::Interleaved
        };
        let out_deg = machine.alloc_array_with("topo/degrees", n, deg_policy, |v| {
            g.out_degree(v as VId) as u32
        });

        PolymerLayout {
            bounds: ranges.iter().map(|r| r.end).collect(),
            nodes,
            out_deg,
            numa_aware,
        }
    }

    /// Build one direction for one node. `push = true` collects edges whose
    /// target is owned (grouped by source); `push = false` collects edges
    /// whose source is owned (grouped by target).
    #[allow(clippy::too_many_arguments)]
    fn build_dir(
        machine: &Machine,
        g: &Graph,
        node: usize,
        range: &Range<usize>,
        push: bool,
        threads_per_node: usize,
        with_weights: bool,
        numa_aware: bool,
    ) -> DirLayout {
        let n = g.num_vertices();
        // Gather (group_key, endpoint, weight) triples: in push mode the
        // group key is the edge's source and the endpoint its (owned)
        // target; in pull mode the key is the target and the endpoint the
        // (owned) source. CSC/CSR iteration order already yields ascending
        // group keys.
        let mut ids = Vec::new();
        let mut degs = Vec::new();
        let mut offs = vec![0u32];
        let mut endpoints = Vec::new();
        let mut weights = Vec::new();

        if push {
            // Iterate sources ascending; collect their edges into the range.
            for s in 0..n as VId {
                let mut count = 0u32;
                for (&t, &w) in g.out_neighbors(s).iter().zip(g.out_weights(s)) {
                    if range.contains(&(t as usize)) {
                        endpoints.push(t);
                        weights.push(w);
                        count += 1;
                    }
                }
                if count > 0 {
                    ids.push(s);
                    degs.push(g.out_degree(s) as u32);
                    offs.push(endpoints.len() as u32);
                }
            }
        } else {
            // Iterate targets ascending; collect their in-edges from the
            // range.
            for t in 0..n as VId {
                let mut count = 0u32;
                for (&s, &w) in g.in_neighbors(t).iter().zip(g.in_weights(t)) {
                    if range.contains(&(s as usize)) {
                        endpoints.push(s);
                        weights.push(w);
                        count += 1;
                    }
                }
                if count > 0 {
                    ids.push(t);
                    degs.push(g.out_degree(t) as u32);
                    offs.push(endpoints.len() as u32);
                }
            }
        }

        let dir = if push { "push" } else { "pull" };
        let pol = || {
            if numa_aware {
                AllocPolicy::OnNode(node)
            } else {
                AllocPolicy::Interleaved
            }
        };
        let agent_idx = {
            let mut idx = vec![0u32; n];
            for (slot, &v) in ids.iter().enumerate() {
                idx[v as usize] = slot as u32 + 1;
            }
            machine.alloc_array_with(&format!("agents/{dir}_idx"), n, pol(), |i| idx[i])
        };
        // Allocation order matters for bit-identical costs: the cost model
        // folds per-thread times in allocation-id order, so the arrays must
        // be allocated in the same sequence the pre-sharding layout used
        // (id, deg, off, endpoints, weights).
        let agent_id =
            machine.alloc_array_with(&format!("agents/{dir}_id"), ids.len(), pol(), |i| ids[i]);
        let agent_deg =
            machine.alloc_array_with(&format!("agents/{dir}_deg"), degs.len(), pol(), |i| degs[i]);
        let agent_off =
            machine.alloc_array_with(&format!("agents/{dir}_off"), offs.len(), pol(), |i| offs[i]);
        let endpoint = if polymer_numa::compressed_topology() {
            // Delta/varint-encode each agent's list, anchored at the agent's
            // own vertex id (lists are in grouped input order, so deltas are
            // small for locality-friendly ids).
            let mut coffs = vec![0u64];
            let mut bytes = Vec::new();
            for (slot, &v) in ids.iter().enumerate() {
                let lo = offs[slot] as usize;
                let hi = offs[slot + 1] as usize;
                polymer_graph::encode_list(v, &endpoints[lo..hi], &mut bytes);
                coffs.push(bytes.len() as u64);
            }
            EndpointStore::Compressed {
                lists: CompressedLists::from_encoded(
                    machine,
                    &format!("topo/{dir}_edges"),
                    coffs,
                    bytes,
                    pol(),
                    pol(),
                ),
                edges: endpoints.len(),
            }
        } else {
            EndpointStore::Raw(machine.alloc_array_with(
                &format!("topo/{dir}_edges"),
                endpoints.len(),
                pol(),
                |i| endpoints[i],
            ))
        };
        let slices = slice_by_edges(&offs, threads_per_node);
        DirLayout {
            agent_id,
            agent_deg,
            agent_off,
            agent_idx,
            endpoint,
            weight: with_weights.then(|| {
                machine.alloc_array_with(&format!("topo/{dir}_w"), weights.len(), pol(), |i| {
                    weights[i]
                })
            }),
            slices,
        }
    }

    /// Number of nodes in the layout.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: usize) -> usize {
        // Ranges are few (≤ 16); partition_point is a handful of compares.
        self.bounds.partition_point(|&end| end <= v)
    }

    /// The vertex ranges, for building chunked placements.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        self.nodes.iter().map(|nl| nl.range.clone()).collect()
    }

    /// `ChunkedElems` placement matching the vertex ranges (for the
    /// contiguous-virtual application data), or interleaved when placement
    /// awareness is disabled.
    pub fn chunked_policy(&self) -> AllocPolicy {
        if !self.numa_aware {
            return AllocPolicy::Interleaved;
        }
        AllocPolicy::ChunkedElems(
            self.nodes
                .iter()
                .enumerate()
                .map(|(i, nl)| (nl.range.len(), i))
                .collect(),
        )
    }

    /// Placement for a per-node runtime-state partition.
    pub fn state_policy(&self, node: usize) -> AllocPolicy {
        if self.numa_aware {
            AllocPolicy::OnNode(node)
        } else {
            AllocPolicy::Centralized
        }
    }
}

/// Split `0..agents` into per-thread slices with (nearly) equal edge counts,
/// using the agent offset array.
fn slice_by_edges(offs: &[u32], parts: usize) -> Vec<Range<usize>> {
    let agents = offs.len() - 1;
    let total = *offs.last().unwrap() as usize;
    let mut cuts = vec![0usize];
    let mut a = 0usize;
    for p in 1..parts {
        let target = p * total / parts;
        while a < agents && (offs[a] as usize) < target {
            a += 1;
        }
        cuts.push(a);
    }
    cuts.push(agents);
    (0..parts).map(|p| cuts[p]..cuts[p + 1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::{gen, EdgeList};
    use polymer_numa::MachineSpec;

    fn build(g: &Graph, balanced: bool, with_pull: bool) -> (Machine, PolymerLayout) {
        let m = Machine::new(MachineSpec::test2());
        let l = PolymerLayout::build(&m, g, &[2, 2], balanced, with_pull, false);
        (m, l)
    }

    #[test]
    fn every_edge_lands_exactly_once_per_direction() {
        let el = gen::rmat(8, 2_000, gen::RMAT_GRAPH500, 3);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, true, true);
        let push_edges: usize = l.nodes.iter().map(|nl| nl.push.endpoint.len()).sum();
        let pull_edges: usize = l
            .nodes
            .iter()
            .map(|nl| nl.pull.as_ref().unwrap().endpoint.len())
            .sum();
        assert_eq!(push_edges, g.num_edges());
        assert_eq!(pull_edges, g.num_edges());
    }

    #[test]
    fn push_endpoints_are_owned_by_their_node() {
        let el = gen::uniform(200, 1_000, 5);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, false, false);
        for nl in &l.nodes {
            for t in nl.push.endpoint_values() {
                assert!(nl.range.contains(&(t as usize)));
            }
        }
    }

    #[test]
    fn pull_endpoints_are_owned_by_their_node() {
        let el = gen::uniform(200, 1_000, 5);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, false, true);
        for nl in &l.nodes {
            for s in nl.pull.as_ref().unwrap().endpoint_values() {
                assert!(nl.range.contains(&(s as usize)));
            }
        }
    }

    #[test]
    fn agents_ascend_and_index_back() {
        let el = gen::rmat(8, 2_000, gen::RMAT_GRAPH500, 4);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, true, false);
        for nl in &l.nodes {
            let ids = nl.push.agent_id.raw();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "agents must ascend");
            for (slot, &v) in ids.iter().enumerate() {
                assert_eq!(nl.push.agent_idx.raw()[v as usize], slot as u32 + 1);
            }
        }
    }

    #[test]
    fn agent_degrees_match_graph() {
        let el = gen::uniform(100, 600, 9);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, false, false);
        for nl in &l.nodes {
            for (slot, &s) in nl.push.agent_id.raw().iter().enumerate() {
                assert_eq!(nl.push.agent_deg.raw()[slot] as usize, g.out_degree(s));
            }
        }
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let el = gen::uniform(100, 400, 2);
        let g = Graph::from_edges(&el);
        let (_m, l) = build(&g, true, false);
        for (node, nl) in l.nodes.iter().enumerate() {
            for v in nl.range.clone() {
                assert_eq!(l.owner(v), node);
            }
        }
    }

    #[test]
    fn balanced_partitioning_evens_edges() {
        // Skewed graph: a few hubs hold most edges.
        let el = gen::powerlaw_zipf(2_000, 2.0, 8.0, 1);
        let g = Graph::from_edges(&el);
        let (_m, bal) = build(&g, true, false);
        let (_m2, unbal) = build(&g, false, false);
        let spread = |l: &PolymerLayout| {
            let counts: Vec<usize> = l.nodes.iter().map(|nl| nl.push.endpoint.len()).collect();
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap() as f64;
            max / min.max(1.0)
        };
        assert!(spread(&bal) < spread(&unbal) + 1e-9);
    }

    #[test]
    fn agents_are_tagged_for_memory_accounting() {
        let el = gen::uniform(100, 400, 2);
        let g = Graph::from_edges(&el);
        let (m, _l) = build(&g, true, true);
        assert!(m.tag_usage("agents").live > 0);
        assert!(m.tag_usage("topo").live > 0);
    }

    #[test]
    fn slices_cover_agents() {
        let offs = vec![0u32, 10, 10, 40, 45, 100];
        let slices = slice_by_edges(&offs, 2);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].start, 0);
        assert_eq!(slices[1].end, 5);
        assert_eq!(slices[0].end, slices[1].start);
    }

    #[test]
    fn large_graph_partition_cuts_are_page_aligned() {
        let el = gen::powerlaw_zipf(20_000, 2.0, 6.0, 9);
        let g = Graph::from_edges(&el);
        let m = Machine::new(MachineSpec::test2());
        let l = PolymerLayout::build(&m, &g, &[1, 1], true, false, false);
        for nl in &l.nodes[..l.nodes.len() - 1] {
            assert_eq!(nl.range.end % 1024, 0, "cut {} not aligned", nl.range.end);
        }
        // Cover exactly despite rounding.
        assert_eq!(l.nodes.last().unwrap().range.end, 20_000);
        assert_eq!(l.nodes[0].range.start, 0);
    }

    #[test]
    fn oblivious_placement_interleaves_everything() {
        let el = gen::uniform(200, 800, 4);
        let g = Graph::from_edges(&el);
        let m = Machine::new(MachineSpec::test2());
        let l = PolymerLayout::build_with_placement(&m, &g, &[2, 2], true, false, false, false);
        assert!(matches!(l.chunked_policy(), AllocPolicy::Interleaved));
        assert!(matches!(l.state_policy(1), AllocPolicy::Centralized));
        let aware = PolymerLayout::build(&m, &g, &[2, 2], true, false, false);
        assert!(matches!(aware.state_policy(1), AllocPolicy::OnNode(1)));
    }

    #[test]
    fn isolated_vertices_have_no_agents() {
        let g = Graph::from_edges(&EdgeList::from_pairs(10, [(0, 1)]));
        let (_m, l) = build(&g, false, true);
        let total_agents: usize = l.nodes.iter().map(|nl| nl.push.agent_id.len()).sum();
        assert_eq!(total_agents, 1);
        assert_eq!(l.out_deg.raw()[0], 1);
        assert_eq!(l.out_deg.raw()[1], 0);
    }
}
