//! # polymer-core — the Polymer engine (the paper's primary contribution)
//!
//! A NUMA-aware graph-analytics engine implementing Sections 4 and 5 of
//! *NUMA-Aware Graph-Structured Analytics* (PPoPP'15):
//!
//! * **NUMA-aware partitioning and agents** ([`layout`]): vertices are split
//!   into per-node ranges (edge-oriented balanced by default); in push mode
//!   every node co-locates the edges *targeting* its vertices, with
//!   lightweight immutable replicas ("agents") of the remote source
//!   vertices' topology metadata; pull mode co-locates edges with their
//!   sources symmetrically.
//! * **Differential allocation** (Table 1): topology and agents live in
//!   discrete node-local allocations; application data (`curr`/`next`) is
//!   one contiguous virtual array whose physical page ranges are distributed
//!   to the owning nodes; runtime states are allocated per node each
//!   iteration and linked through a lock-less lookup table.
//! * **Factored computation** ([`engine`]): each node performs *part of the
//!   computation for all vertices* instead of all computation for part of
//!   the vertices — turning Ligra's `RAND|W|G` scatter into `SEQ|R|G` reads
//!   plus `RAND|W|L` writes (push), and its `RAND|R|G` gather into
//!   `RAND|R|L` reads plus `SEQ|W|G` writes (pull), which is exactly the
//!   pattern the machine measurements favor.
//! * **The three optimizations** of Section 5: a hierarchical
//!   sense-reversing barrier, edge-oriented balanced partitioning, and
//!   adaptive runtime states — each independently toggleable for the
//!   paper's ablation experiments (Figure 10(b), Table 6).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod layout;

pub use engine::{PolymerConfig, PolymerEngine};
pub use layout::{NodeLayout, PolymerLayout};
