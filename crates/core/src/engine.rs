//! The Polymer execution engine (paper Sections 4.3 and 5).

use polymer_api::{
    atomic_combine, catch_engine_faults, charged_values_restore, charged_values_snapshot,
    check_divergence, even_chunks, validate_run_config, DirectionPolicy, Engine, EngineKind,
    ExecProfile, FrontierInit, IterationDriver, Program, RecoverySession, RunResult,
};
use polymer_faults::{PolymerError, PolymerResult};
use polymer_graph::{Graph, VId};
use polymer_numa::{AccessCtx, BarrierKind, Machine};
use polymer_sync::{
    should_densify, DenseBitmap, FrontierRepr, FrontierSnapshot, LookupTable, ThreadQueues,
};

use crate::layout::PolymerLayout;

/// Engine configuration: the paper's three Section 5 optimizations, each
/// independently toggleable for the ablation experiments.
#[derive(Clone, Copy, Debug)]
pub struct PolymerConfig {
    /// Edge-oriented balanced partitioning (Table 6(b), Figure 11).
    pub balanced_partitioning: bool,
    /// Adaptive runtime states — sparse queues when the frontier is small
    /// (Table 6(a)). When off, states are always dense bitmaps.
    pub adaptive_states: bool,
    /// Barrier family (Figure 10: `SenseNuma` is the NUMA-aware barrier;
    /// `Pthread` is the w/o-optimization baseline).
    pub barrier: BarrierKind,
    /// NUMA-aware data placement. When off, partitioning and agents remain
    /// (computation is still factored) but every allocation is interleaved
    /// and runtime states centralized — isolating the placement
    /// contribution (extension ablation beyond the paper's Table 6).
    pub numa_aware_placement: bool,
}

impl Default for PolymerConfig {
    fn default() -> Self {
        PolymerConfig {
            balanced_partitioning: true,
            adaptive_states: true,
            barrier: BarrierKind::SenseNuma,
            numa_aware_placement: true,
        }
    }
}

/// The Polymer engine.
#[derive(Clone, Debug, Default)]
pub struct PolymerEngine {
    /// Configuration (defaults enable every optimization).
    pub config: PolymerConfig,
}

impl PolymerEngine {
    /// An engine with every optimization enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: PolymerConfig) -> Self {
        PolymerEngine { config }
    }

    /// Disable edge-oriented balanced partitioning.
    pub fn without_balanced_partitioning(mut self) -> Self {
        self.config.balanced_partitioning = false;
        self
    }

    /// Disable adaptive runtime states (always-dense bitmaps).
    pub fn without_adaptive_states(mut self) -> Self {
        self.config.adaptive_states = false;
        self
    }

    /// Use a different barrier family.
    pub fn with_barrier(mut self, kind: BarrierKind) -> Self {
        self.config.barrier = kind;
        self
    }

    /// Disable NUMA-aware placement (interleaved allocations, centralized
    /// states) while keeping the factored computation.
    pub fn without_numa_placement(mut self) -> Self {
        self.config.numa_aware_placement = false;
        self
    }
}

/// Polymer's distributed frontier: the shared [`FrontierRepr`] switcher
/// with per-node dense bitmaps linked through the lock-less lookup table as
/// its dense store.
type PFrontier = FrontierRepr<LookupTable<DenseBitmap>>;

/// Build the dense representation from items (distributed allocation, one
/// partition per node via the lookup table).
fn densify_distributed(
    machine: &Machine,
    layout: &PolymerLayout,
    items: &[VId],
) -> LookupTable<DenseBitmap> {
    let table = LookupTable::new(layout.num_nodes());
    for (node, nl) in layout.nodes.iter().enumerate() {
        table.install(
            node,
            DenseBitmap::new(
                machine,
                "stat/frontier",
                nl.range.len(),
                layout.state_policy(node),
            ),
        );
    }
    for &v in items {
        let owner = layout.owner(v as usize);
        table
            .get(owner)
            .unwrap()
            .set_unaccounted(v as usize - layout.nodes[owner].range.start);
    }
    table
}

/// Accounted membership test against the distributed dense frontier.
#[inline]
fn test_dense(
    table: &LookupTable<DenseBitmap>,
    layout: &PolymerLayout,
    ctx: &mut AccessCtx,
    v: usize,
) -> bool {
    let owner = layout.owner(v);
    let bits = table.get(owner).expect("frontier partition installed");
    bits.test(ctx, v - layout.nodes[owner].range.start)
}

/// Iterate `0..len` starting at `pivot` and wrapping (the paper's *rolling
/// order*: each node starts with its own vertices to spread cross-node
/// traffic).
fn rolling(len: usize, pivot: usize) -> impl Iterator<Item = usize> {
    (pivot..len).chain(0..pivot)
}

impl Engine for PolymerEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Polymer
    }

    fn try_run_rec<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        g: &Graph,
        prog: &P,
        traced: bool,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>> {
        validate_run_config(threads, g, prog)?;
        catch_engine_faults(|| self.run_inner(machine, threads, g, prog, traced, recovery))
    }

    fn exec_profile(&self) -> ExecProfile {
        ExecProfile {
            direction: DirectionPolicy::Hybrid,
            adaptive_frontier: self.config.adaptive_states,
        }
    }
}

impl PolymerEngine {
    fn run_inner<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        g: &Graph,
        prog: &P,
        traced: bool,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>> {
        let n = g.num_vertices();
        let m = g.num_edges();
        let identity = prog.next_identity();
        let sc = prog.scatter_cycles();

        let mut driver = IterationDriver::new(machine, threads, self.config.barrier, traced, n);
        let spanned = driver.sim().num_sockets();
        let tpn: Vec<usize> = (0..spanned)
            .map(|node| driver.sim().threads_on_node(node).len())
            .collect();
        // Thread index within its node (threads are bound node-major).
        let tin: Vec<usize> = (0..threads)
            .map(|t| {
                let sim = driver.sim();
                t - sim.threads_on_node(sim.node_of_thread(t))[0]
            })
            .collect();

        // Both edge directions are always materialized (the real system
        // keeps them for runtime mode switching; Table 5's memory accounting
        // includes both). `prefer_push` only pins the execution mode.
        let with_pull = true;
        let use_pull_allowed = !prog.prefer_push();
        let layout = PolymerLayout::build_with_placement(
            machine,
            g,
            &tpn,
            self.config.balanced_partitioning,
            with_pull,
            prog.uses_weights(),
            self.config.numa_aware_placement,
        );

        // Application data: contiguous virtual, physically chunked by owner.
        let curr =
            machine.alloc_atomic_with::<P::Val>("data/curr", n, layout.chunked_policy(), |v| {
                prog.init(v as VId, g)
            });
        let next =
            machine
                .alloc_atomic_with::<P::Val>("data/next", n, layout.chunked_policy(), |_| identity);

        let mut frontier = match recovery.resume() {
            Some(ck) => {
                if ck.values.len() != n {
                    return Err(PolymerError::InvalidConfig(format!(
                        "resume checkpoint has {} values for a {n}-vertex graph",
                        ck.values.len()
                    )));
                }
                // Restore the checkpointed vertex state through a charged
                // "restore" sweep and continue the global iteration count.
                charged_values_restore(driver.sim(), threads, &curr, &ck.values);
                driver.resume_at(ck.iteration);
                if ck.frontier.dense {
                    PFrontier::dense(
                        densify_distributed(machine, &layout, &ck.frontier.vertices),
                        ck.frontier.vertices.len(),
                        ck.frontier.out_degree,
                    )
                } else {
                    PFrontier::sparse(ck.frontier.vertices.clone())
                }
            }
            None => match prog.initial_frontier(g) {
                FrontierInit::All => {
                    let items: Vec<VId> = (0..n as VId).collect();
                    PFrontier::dense(densify_distributed(machine, &layout, &items), n, m as u64)
                }
                // The source is validated by `validate_run_config`.
                FrontierInit::Single(s) => {
                    if self.config.adaptive_states {
                        PFrontier::sparse(vec![s])
                    } else {
                        PFrontier::dense(
                            densify_distributed(machine, &layout, &[s]),
                            1,
                            g.out_degree(s) as u64,
                        )
                    }
                }
            },
        };

        let queues = ThreadQueues::new(machine, threads);
        driver.run_recoverable(
            prog.max_iters(),
            &mut frontier,
            recovery,
            |f| !f.is_empty(),
            |sim, iters, frontier| {
                // The frontier knows its exact total out-degree.
                let frontier_degree = frontier.out_degree(|v| g.out_degree(v) as u64);
                let use_pull = use_pull_allowed
                    && should_densify(frontier.len() as u64, frontier_degree, m as u64);

                // Per-iteration runtime states: distributed allocation, linked
                // through the lock-less lookup table (Section 4.2).
                let updated: LookupTable<DenseBitmap> = LookupTable::new(spanned);
                for (node, nl) in layout.nodes.iter().enumerate() {
                    updated.install(
                        node,
                        DenseBitmap::new(
                            machine,
                            "stat/updated",
                            nl.range.len(),
                            layout.state_policy(node),
                        ),
                    );
                }

                // --- Scatter / gather phase -------------------------------
                if use_pull {
                    // Pull: each node reads its local sources and writes the
                    // global next array sequentially by target.
                    let taken = std::mem::replace(frontier, PFrontier::sparse(Vec::new()));
                    let fr = match taken {
                        f @ FrontierRepr::Dense { .. } => f,
                        FrontierRepr::Sparse(items) => {
                            let count = items.len();
                            PFrontier::dense(
                                densify_distributed(machine, &layout, &items),
                                count,
                                frontier_degree,
                            )
                        }
                    };
                    let table = fr.as_dense().expect("dense after conversion");
                    // Pull agents fold over *local* sources but target vertices
                    // owned by any node, so the combine and updated-bit writes
                    // cross shard boundaries: log them in the compute half and
                    // replay serially in the publish half.
                    sim.run_phase_split(
                        "gather-pull",
                        |tid, ctx| {
                            let node = ctx.node();
                            let nl = &layout.nodes[node];
                            let dir = nl.pull.as_ref().expect("pull layout built");
                            let my = &dir.slices[tin[tid]];
                            let mut log: Vec<(usize, P::Val)> = Vec::new();
                            if my.is_empty() {
                                return log;
                            }
                            // Rolling order: start at the first agent the node
                            // owns.
                            let pivot = dir
                                .agent_id
                                .raw()
                                .partition_point(|&t| (t as usize) < nl.range.start)
                                .clamp(my.start, my.end)
                                - my.start;
                            let own_bits = table.get(node).unwrap();
                            for off in rolling(my.len(), pivot) {
                                let a = my.start + off;
                                // Agent id / offset pair reads stay scalar: the
                                // offsets re-read the previous agent's end, and
                                // the rolling order wraps once mid-scan.
                                let t = dir.agent_id.get(ctx, a) as usize;
                                let mut acc = identity;
                                let mut any = false;
                                // Source endpoints are scanned unconditionally —
                                // bulk stream. Everything inside the frontier
                                // test (weight, value, degree, bitmap word) is
                                // gated or vertex-indexed (random) and stays
                                // scalar.
                                for (e, s) in dir.agent_edges_indexed(ctx, a, t as VId) {
                                    let s = s as usize;
                                    // Sources are local to this node by layout.
                                    if own_bits.test(ctx, s - nl.range.start) {
                                        let w = match &dir.weight {
                                            Some(ws) => ws.get(ctx, e),
                                            None => 1,
                                        };
                                        let sv = curr.load(ctx, s);
                                        let deg = layout.out_deg.get(ctx, s);
                                        acc = prog.fold(acc, prog.scatter(s as VId, sv, w, deg));
                                        ctx.charge_cycles(sc);
                                        any = true;
                                    }
                                }
                                if any {
                                    log.push((t, acc));
                                }
                            }
                            log
                        },
                        |_tid, ctx, log| {
                            for (t, acc) in log {
                                atomic_combine(prog, &next, ctx, t, acc);
                                let owner = layout.owner(t);
                                updated
                                    .get(owner)
                                    .unwrap()
                                    .set(ctx, t - layout.nodes[owner].range.start);
                            }
                        },
                    );
                    drop(fr);
                } else {
                    match &*frontier {
                        FrontierRepr::Dense { repr: table, .. } => {
                            // Dense push: every node scans its agents, testing
                            // the (distributed) frontier bitmap per source.
                            // Push targets are node-local by construction and
                            // queue pushes go to the running thread's own
                            // queue, so the whole phase body is shard-pure:
                            // nothing it writes is visible outside its shard
                            // during the phase.
                            sim.run_phase_split(
                                "scatter-push",
                                |tid, ctx| {
                                    let node = ctx.node();
                                    let nl = &layout.nodes[node];
                                    let dir = &nl.push;
                                    let my = &dir.slices[tin[tid]];
                                    // Agent ids are scanned unconditionally in
                                    // slice order — bulk stream. Everything
                                    // below the frontier test only happens for
                                    // active agents and stays scalar.
                                    let id_it = dir.agent_id.iter_seq(ctx, my.clone());
                                    for (a, sid) in my.clone().zip(id_it) {
                                        let s = sid as usize;
                                        if !test_dense(table, &layout, ctx, s) {
                                            continue;
                                        }
                                        let deg = dir.agent_deg.get(ctx, a);
                                        // Source value is vertex-indexed —
                                        // scalar.
                                        let sv = curr.load(ctx, s);
                                        // Every out-edge of an active agent is
                                        // consumed — the edge-aligned arrays
                                        // stream in bulk. Combine targets /
                                        // updated bits / queue pushes are
                                        // destination-indexed (random) and stay
                                        // scalar.
                                        let (dst_it, mut w_it) = dir.agent_edges(ctx, a, sid);
                                        for t in dst_it {
                                            let w = match &mut w_it {
                                                Some(it) => {
                                                    it.next().expect("weight stream aligned")
                                                }
                                                None => 1,
                                            };
                                            let t = t as usize;
                                            atomic_combine(
                                                prog,
                                                &next,
                                                ctx,
                                                t,
                                                prog.scatter(s as VId, sv, w, deg),
                                            );
                                            ctx.charge_cycles(sc);
                                            if updated
                                                .get(node)
                                                .unwrap()
                                                .set(ctx, t - nl.range.start)
                                            {
                                                queues.push(ctx, t as VId);
                                            }
                                        }
                                    }
                                },
                                |_tid, _ctx, ()| {},
                            );
                        }
                        FrontierRepr::Sparse(items) => {
                            // Sparse push: every node routes each active vertex
                            // through its local agent index.
                            let per_node_chunks: Vec<Vec<std::ops::Range<usize>>> = (0..spanned)
                                .map(|node| even_chunks(items.len(), tpn[node]))
                                .collect();
                            // Shard-pure for the same reason as the dense
                            // variant: push targets are node-local, queue
                            // pushes are own-thread.
                            sim.run_phase_split(
                                "scatter-push-sparse",
                                |tid, ctx| {
                                    let node = ctx.node();
                                    let nl = &layout.nodes[node];
                                    let dir = &nl.push;
                                    let my = per_node_chunks[node][tin[tid]].clone();
                                    for &s in &items[my] {
                                        let slot = dir.agent_idx.get(ctx, s as usize);
                                        if slot == 0 {
                                            continue;
                                        }
                                        let a = (slot - 1) as usize;
                                        let deg = dir.agent_deg.get(ctx, a);
                                        // Source value is vertex-indexed —
                                        // scalar.
                                        let sv = curr.load(ctx, s as usize);
                                        // Every out-edge of an active agent is
                                        // consumed — the edge-aligned arrays
                                        // stream in bulk; destination-indexed
                                        // accesses stay scalar.
                                        let (dst_it, mut w_it) = dir.agent_edges(ctx, a, s);
                                        for t in dst_it {
                                            let w = match &mut w_it {
                                                Some(it) => {
                                                    it.next().expect("weight stream aligned")
                                                }
                                                None => 1,
                                            };
                                            let t = t as usize;
                                            atomic_combine(
                                                prog,
                                                &next,
                                                ctx,
                                                t,
                                                prog.scatter(s, sv, w, deg),
                                            );
                                            ctx.charge_cycles(sc);
                                            if updated
                                                .get(node)
                                                .unwrap()
                                                .set(ctx, t - nl.range.start)
                                            {
                                                queues.push(ctx, t as VId);
                                            }
                                        }
                                    }
                                },
                                |_tid, _ctx, ()| {},
                            );
                        }
                    }
                }
                sim.charge_barrier();

                // --- Apply phase ------------------------------------------
                let mut alive_count = vec![0u64; threads];
                let mut alive_degree = vec![0u64; threads];
                if use_pull {
                    // Scan each node's own updated bitmap. Every access is
                    // node-local (the bitmap, and `curr`/`next`/`out_deg` at
                    // owned vertices), so the body is shard-pure; only the
                    // host-side alive tallies travel through the payload.
                    let alive_count = &mut alive_count;
                    let alive_degree = &mut alive_degree;
                    sim.run_phase_split(
                        "apply",
                        |tid, ctx| {
                            let node = ctx.node();
                            let nl = &layout.nodes[node];
                            let bits = updated.get(node).unwrap();
                            let words = even_chunks(bits.num_words(), tpn[node]);
                            let wr = words[tin[tid]].clone();
                            let (mut cnt, mut deg) = (0u64, 0u64);
                            // The updated bitmap's words are scanned
                            // sequentially — bulk stream. The per-bit value
                            // accesses below are vertex-indexed within the
                            // word and stay scalar.
                            let word_stream = bits.words_seq(ctx, wr.clone());
                            for (w, mut word) in wr.clone().zip(word_stream) {
                                while word != 0 {
                                    let b = word.trailing_zeros() as usize;
                                    word &= word - 1;
                                    let t = nl.range.start + w * 64 + b;
                                    let acc = next.load(ctx, t);
                                    let cv = curr.load(ctx, t);
                                    let (val, alive) = prog.apply(t as VId, acc, cv);
                                    curr.store(ctx, t, val);
                                    next.store(ctx, t, identity);
                                    if alive {
                                        queues.push(ctx, t as VId);
                                        cnt += 1;
                                        deg += layout.out_deg.get(ctx, t) as u64;
                                    }
                                }
                            }
                            (cnt, deg)
                        },
                        |tid, _ctx, (cnt, deg)| {
                            alive_count[tid] = cnt;
                            alive_degree[tid] = deg;
                        },
                    );
                } else {
                    // Queue-based apply: each node's threads produced exactly the
                    // targets it owns (push processes local targets).
                    let mut per_node_items: Vec<Vec<VId>> = vec![Vec::new(); spanned];
                    for t in 0..threads {
                        per_node_items[sim.node_of_thread(t)].extend(queues.drain_thread(t));
                    }
                    let per_node_chunks: Vec<Vec<std::ops::Range<usize>>> = (0..spanned)
                        .map(|node| even_chunks(per_node_items[node].len(), tpn[node]))
                        .collect();
                    let alive_count = &mut alive_count;
                    let alive_degree = &mut alive_degree;
                    // Queue apply touches only node-owned vertices (push
                    // produced local targets) — shard-pure like the pull
                    // variant.
                    sim.run_phase_split(
                        "apply",
                        |tid, ctx| {
                            let node = ctx.node();
                            let my = per_node_chunks[node][tin[tid]].clone();
                            let (mut cnt, mut deg) = (0u64, 0u64);
                            for &t in &per_node_items[node][my] {
                                let ti = t as usize;
                                let acc = next.load(ctx, ti);
                                let cv = curr.load(ctx, ti);
                                let (val, alive) = prog.apply(t, acc, cv);
                                curr.store(ctx, ti, val);
                                next.store(ctx, ti, identity);
                                if alive {
                                    queues.push(ctx, t);
                                    cnt += 1;
                                    deg += layout.out_deg.get(ctx, ti) as u64;
                                }
                            }
                            (cnt, deg)
                        },
                        |tid, _ctx, (cnt, deg)| {
                            alive_count[tid] = cnt;
                            alive_degree[tid] = deg;
                        },
                    );
                }
                sim.charge_barrier();

                // --- Next frontier ----------------------------------------
                let alive: u64 = alive_count.iter().sum();
                let degree: u64 = alive_degree.iter().sum();
                let items = queues.drain_merged();
                debug_assert_eq!(items.len() as u64, alive);
                *frontier = PFrontier::rebuild(
                    items,
                    degree,
                    m as u64,
                    self.config.adaptive_states,
                    true,
                    |items| densify_distributed(machine, &layout, items),
                );
                check_divergence(&curr, iters)?;
                Ok(())
            },
            |sim, frontier| {
                let values = charged_values_snapshot(sim, threads, &curr);
                // The distributed dense store snapshots as a global
                // ascending vertex list (node partitions are contiguous
                // ranges, scanned in node order); sparse frontiers keep
                // their live member order, which scatter order depends on.
                let snap = match frontier {
                    FrontierRepr::Dense { repr, degree, .. } => {
                        let mut items: Vec<VId> = Vec::new();
                        for (node, nl) in layout.nodes.iter().enumerate() {
                            if let Some(bits) = repr.get(node) {
                                items.extend(bits.iter_set().map(|b| (nl.range.start + b) as VId));
                            }
                        }
                        FrontierSnapshot::dense(items, *degree)
                    }
                    FrontierRepr::Sparse(items) => {
                        let degree = items.iter().map(|&v| g.out_degree(v) as u64).sum();
                        FrontierSnapshot::sparse(items.clone(), degree)
                    }
                };
                (values, snap)
            },
        )?;

        Ok(driver.finish(curr.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_algos::{run_reference, Bfs, ConnectedComponents, PageRank, SpMV, Sssp};
    use polymer_graph::gen;
    use polymer_numa::MachineSpec;

    fn check_exact<P: Program>(g: &Graph, prog: &P, engine: &PolymerEngine)
    where
        P::Val: Eq,
    {
        let m = Machine::new(MachineSpec::test2());
        let got = engine.run(&m, 4, g, prog);
        let (want, _) = run_reference(g, prog);
        assert_eq!(got.values, want);
    }

    #[test]
    fn bfs_matches_reference() {
        let el = gen::rmat(10, 8_000, gen::RMAT_GRAPH500, 11);
        let g = Graph::from_edges(&el);
        check_exact(&g, &Bfs::new(0), &PolymerEngine::new());
    }

    #[test]
    fn bfs_matches_without_optimizations() {
        let el = gen::rmat(9, 4_000, gen::RMAT_GRAPH500, 21);
        let g = Graph::from_edges(&el);
        check_exact(
            &g,
            &Bfs::new(0),
            &PolymerEngine::new()
                .without_adaptive_states()
                .without_balanced_partitioning()
                .with_barrier(BarrierKind::Pthread),
        );
    }

    #[test]
    fn sssp_matches_reference_on_road() {
        let el = gen::road_grid(16, 16, 0.6, 3);
        let g = Graph::from_edges(&el);
        check_exact(&g, &Sssp::new(0), &PolymerEngine::new());
    }

    #[test]
    fn cc_matches_reference() {
        let mut el = gen::uniform(300, 500, 7);
        el.symmetrize();
        let g = Graph::from_edges(&el);
        check_exact(&g, &ConnectedComponents::new(), &PolymerEngine::new());
    }

    #[test]
    fn pagerank_close_to_reference() {
        let el = gen::rmat(9, 4_000, gen::RMAT_GRAPH500, 5);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m = Machine::new(MachineSpec::test2());
        let got = PolymerEngine::new().run(&m, 4, &g, &prog);
        let (want, _) = run_reference(&g, &prog);
        let err = polymer_algos::reference::max_rel_error(&got.values, &want);
        assert!(err < 1e-9, "max rel error {err}");
    }

    #[test]
    fn spmv_close_to_reference() {
        let el = gen::uniform(200, 2_000, 9);
        let g = Graph::from_edges(&el);
        let prog = SpMV::new();
        let m = Machine::new(MachineSpec::test2());
        let got = PolymerEngine::new().run(&m, 2, &g, &prog);
        let (want, _) = run_reference(&g, &prog);
        let err = polymer_algos::reference::max_rel_error(&got.values, &want);
        assert!(err < 1e-9, "max rel error {err}");
    }

    #[test]
    fn agents_show_up_in_memory_report() {
        let el = gen::rmat(10, 8_000, gen::RMAT_GRAPH500, 2);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m = Machine::new(MachineSpec::intel80());
        let r = PolymerEngine::new().run(&m, 80, &g, &prog);
        assert!(r.memory.tag_peak("agents") > 0);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.sockets, 8);
    }

    #[test]
    fn placement_ablation_preserves_results_and_costs_locality() {
        let el = gen::rmat(11, 32_000, gen::RMAT_GRAPH500, 17);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m1 = Machine::new(MachineSpec::intel80());
        let aware = PolymerEngine::new().run(&m1, 80, &g, &prog);
        let m2 = Machine::new(MachineSpec::intel80());
        let oblivious = PolymerEngine::new()
            .without_numa_placement()
            .run(&m2, 80, &g, &prog);
        let err = polymer_algos::reference::max_rel_error(&aware.values, &oblivious.values);
        assert!(err < 1e-9, "placement must not change results: {err}");
        assert!(
            oblivious.remote_report().access_rate_remote
                > 2.0 * aware.remote_report().access_rate_remote,
            "oblivious placement must raise the remote rate ({} vs {})",
            oblivious.remote_report().access_rate_remote,
            aware.remote_report().access_rate_remote
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let el = gen::uniform(50, 100, 3);
        let g = Graph::from_edges(&el);
        let m = Machine::new(MachineSpec::test2());
        let engine = PolymerEngine::new();
        let err = engine
            .try_run(&m, 0, &g, &Bfs::new(0))
            .map(|r| r.iterations)
            .unwrap_err();
        assert!(matches!(err, polymer_numa::PolymerError::InvalidConfig(_)));
        let err = engine
            .try_run(&m, 4, &g, &Bfs::new(999))
            .map(|r| r.iterations)
            .unwrap_err();
        assert!(matches!(err, polymer_numa::PolymerError::InvalidConfig(_)));
    }

    #[test]
    fn remote_rate_lower_than_ligra() {
        // Table 4's core claim: co-location + factored computation cuts the
        // remote access rate well below the NUMA-oblivious baseline.
        let el = gen::rmat(11, 32_000, gen::RMAT_GRAPH500, 6);
        let g = Graph::from_edges(&el);
        let prog = PageRank::new(g.num_vertices());
        let m1 = Machine::new(MachineSpec::intel80());
        let poly = PolymerEngine::new().run(&m1, 80, &g, &prog);
        let m2 = Machine::new(MachineSpec::intel80());
        let ligra = polymer_ligra::LigraEngine::new().run(&m2, 80, &g, &prog);
        let pr = poly.remote_report().access_rate_remote;
        let lr = ligra.remote_report().access_rate_remote;
        assert!(pr < 0.75 * lr, "polymer {pr:.3} vs ligra {lr:.3}");
        // And the simulated runtime should be lower too.
        assert!(
            poly.seconds() < ligra.seconds(),
            "polymer {} vs ligra {}",
            poly.seconds(),
            ligra.seconds()
        );
    }
}
