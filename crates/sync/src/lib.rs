//! # polymer-sync — synchronization substrate of the Polymer reproduction
//!
//! Real, thread-safe implementations of the synchronization machinery from
//! Section 5 of the paper:
//!
//! * [`barrier`] — the three barrier families compared in Figure 10(a): a
//!   Mutex+Condvar barrier (the `pthread_barrier` analogue that traps into
//!   the kernel), a flat sense-reversing user-level barrier built on
//!   fetch-and-add (Mellor-Crummey & Scott), and Polymer's hierarchical
//!   NUMA-aware barrier that synchronizes within a socket group first and
//!   then across group leaders.
//! * [`lookup`] — the lock-less tree-structured lookup table (router array)
//!   Polymer uses to collect per-node runtime-state partitions without
//!   contention.
//! * [`bitmap`] — NUMA-placed atomic bitmaps for dense runtime states,
//!   accounted through the machine model.
//! * [`frontier`] — the adaptive runtime-state representation (dense bitmap
//!   ↔ sparse vertex queues) with Ligra's switching threshold.
//!
//! All types here are genuinely `Sync` and are stress-tested under real
//! multithreading (crossbeam scoped threads), independent of the simulator.

#![deny(unsafe_code)]

pub mod barrier;
pub mod bitmap;
pub mod frontier;
pub mod lookup;

pub use barrier::{CondvarBarrier, HierBarrier, SenseBarrier};
pub use bitmap::DenseBitmap;
pub use frontier::{
    should_densify, Frontier, FrontierRepr, FrontierSnapshot, ThreadQueues, DENSITY_DENOMINATOR,
};
pub use lookup::LookupTable;
