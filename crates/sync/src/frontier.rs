//! Adaptive runtime states: dense bitmap ↔ sparse vertex queues.
//!
//! Most graph algorithms converge asymmetrically (paper Section 5, "Adaptive
//! Data Structures"): early iterations have many active vertices (a bitmap
//! is compact and contention-free to set), late iterations have few (bitmap
//! scans waste a full pass over `V/64` words — the paper measures 92 ms per
//! iteration for X-Stream's dense states on roadUS vs 0.032 ms for
//! Polymer's queues). [`FrontierRepr`] holds either representation over any
//! dense backing store (a flat [`DenseBitmap`] for Ligra, a per-node
//! partitioned table for Polymer); [`should_densify`] is Ligra's switching
//! rule (total active degree vs. `|E| / 20`); [`ThreadQueues`] are the
//! per-thread contention-free queues the sparse representation is built
//! from.
//!
//! Dense frontiers carry their **exact** total out-degree, recorded when the
//! representation is built: the engines feed the apply phase's per-thread
//! degree sums into [`FrontierRepr::rebuild`], so the next iteration's
//! direction choice uses real numbers instead of the "dense frontiers are
//! near-full" `|E|·count/|V|` estimate.

use parking_lot::Mutex;
use polymer_numa::{AccessCtx, AllocPolicy, Machine, NumaAtomicArray};
use serde::{Deserialize, Serialize};

use crate::bitmap::DenseBitmap;

/// Ligra's density threshold denominator: switch to the dense representation
/// when `active + Σ out-degree(active) > |E| / DENSITY_DENOMINATOR`.
pub const DENSITY_DENOMINATOR: u64 = 20;

/// Ligra's representation-switching rule.
///
/// The threshold is clamped to ≥ 1: plain `num_edges / 20` is integer
/// division, so any graph with fewer than 20 edges would get a threshold of
/// 0 and *every* non-empty frontier would densify — the opposite of what
/// the rule intends for tiny active sets.
#[inline]
pub fn should_densify(active: u64, active_degree_sum: u64, num_edges: u64) -> bool {
    active + active_degree_sum > (num_edges / DENSITY_DENOMINATOR).max(1)
}

/// An active-vertex set in either dense or sparse representation, generic
/// over the dense backing store `D` (a flat bitmap, a partitioned bitmap
/// table, ...). The construction/densify plumbing the engines share lives
/// here; only the engine-specific dense store (and its membership test) stays
/// with the engine.
pub enum FrontierRepr<D> {
    /// Dense: engine-specific bit store; `count` caches the population
    /// count and `degree` the exact total out-degree of the members.
    Dense {
        /// The dense store (one bit per vertex, in engine-specific shape).
        repr: D,
        /// Number of active vertices.
        count: usize,
        /// Exact `Σ out-degree(active)`, recorded at construction.
        degree: u64,
    },
    /// Sparse: explicit vertex ids (unsorted, duplicate-free by
    /// construction).
    Sparse(Vec<u32>),
}

impl<D> FrontierRepr<D> {
    /// A sparse frontier from a vertex list.
    pub fn sparse(items: Vec<u32>) -> Self {
        FrontierRepr::Sparse(items)
    }

    /// A dense frontier from an existing store, its population count, and
    /// the members' exact total out-degree.
    pub fn dense(repr: D, count: usize, degree: u64) -> Self {
        FrontierRepr::Dense {
            repr,
            count,
            degree,
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            FrontierRepr::Dense { count, .. } => *count,
            FrontierRepr::Sparse(v) => v.len(),
        }
    }

    /// True when no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, FrontierRepr::Dense { .. })
    }

    /// The sparse vertex list, if sparse.
    pub fn as_sparse(&self) -> Option<&[u32]> {
        match self {
            FrontierRepr::Sparse(v) => Some(v),
            FrontierRepr::Dense { .. } => None,
        }
    }

    /// The dense store, if dense.
    pub fn as_dense(&self) -> Option<&D> {
        match self {
            FrontierRepr::Dense { repr, .. } => Some(repr),
            FrontierRepr::Sparse(_) => None,
        }
    }

    /// Exact total out-degree of the active set: the recorded sum for dense
    /// frontiers, a sum over `degree_of` for sparse ones. This is the input
    /// to the hybrid engines' direction switch.
    pub fn out_degree(&self, mut degree_of: impl FnMut(u32) -> u64) -> u64 {
        match self {
            FrontierRepr::Dense { degree, .. } => *degree,
            FrontierRepr::Sparse(items) => items.iter().map(|&v| degree_of(v)).sum(),
        }
    }

    /// Pick the next iteration's representation from the apply phase's
    /// output (`items` + their exact summed out-`degree`), applying Ligra's
    /// switching rule. `allow_sparse` is false for always-dense
    /// configurations (Polymer's w/o-adaptive-states ablation);
    /// `allow_dense` is false for push-pinned configurations (Ligra's
    /// `force_push`). `make_dense` builds the engine's dense store from the
    /// item list.
    pub fn rebuild(
        items: Vec<u32>,
        degree: u64,
        num_edges: u64,
        allow_sparse: bool,
        allow_dense: bool,
        make_dense: impl FnOnce(&[u32]) -> D,
    ) -> Self {
        let densify = should_densify(items.len() as u64, degree, num_edges);
        if allow_dense && (densify || !allow_sparse) {
            let count = items.len();
            FrontierRepr::Dense {
                repr: make_dense(&items),
                count,
                degree,
            }
        } else {
            FrontierRepr::Sparse(items)
        }
    }
}

/// A canonical, engine-neutral image of an active-vertex set, used by
/// iteration checkpoints (`Checkpoint<V>` in `polymer-api`).
///
/// The snapshot records enough to rebuild the frontier *exactly* — members,
/// recorded total out-degree, and which representation was live — because a
/// resumed run must replay the identical scatter order: for floating-point
/// programs the combine order is the summation order, so a frontier restored
/// with reordered members (or flipped dense↔sparse) would produce
/// bit-different values than the uninterrupted run.
///
/// `tags` carries optional per-member auxiliary state for engines whose
/// frontier is more than a vertex set (Galois stores its priority-bucket
/// keys here); set-shaped engines leave it `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierSnapshot {
    /// Active vertex ids, in the frontier's live order (ascending for dense
    /// representations, queue order for sparse ones). May contain
    /// duplicates for engines whose worklist is a multiset.
    pub vertices: Vec<u32>,
    /// Exact recorded `Σ out-degree(active)`.
    pub out_degree: u64,
    /// True when the frontier was in its dense representation.
    pub dense: bool,
    /// Optional per-member tags, aligned with `vertices` (e.g. Galois
    /// bucket priorities).
    pub tags: Option<Vec<u64>>,
}

impl FrontierSnapshot {
    /// A sparse-representation snapshot from a member list (live order).
    pub fn sparse(vertices: Vec<u32>, out_degree: u64) -> Self {
        FrontierSnapshot {
            vertices,
            out_degree,
            dense: false,
            tags: None,
        }
    }

    /// A dense-representation snapshot from an ascending member list.
    pub fn dense(vertices: Vec<u32>, out_degree: u64) -> Self {
        FrontierSnapshot {
            vertices,
            out_degree,
            dense: true,
            tags: None,
        }
    }

    /// Attach per-member tags (must align with `vertices`).
    pub fn with_tags(mut self, tags: Vec<u64>) -> Self {
        debug_assert_eq!(tags.len(), self.vertices.len());
        self.tags = Some(tags);
        self
    }

    /// Number of recorded members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when no vertex was active.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Checked dense-index → vertex-id conversion. Vertex ids are `u32`
/// workspace-wide; a dense-repr bit index past `u32::MAX` means the caller
/// built a bitmap over more than 2^32 vertices, and silently truncating the
/// id would corrupt the frontier. Engines wrap their bodies in
/// panic-catching guards (`catch_engine_faults` in `polymer-api`), so this
/// surfaces as a typed `EnginePanicked` error rather than silent wrong
/// answers.
#[inline]
fn checked_vid(v: usize) -> u32 {
    u32::try_from(v).expect("dense frontier index exceeds the u32 vertex-id space")
}

/// The flat-bitmap frontier of the NUMA-oblivious engines.
pub type Frontier = FrontierRepr<DenseBitmap>;

impl Frontier {
    /// A dense frontier with every vertex in `0..n` active. `total_degree`
    /// is the graph's edge count (`Σ out-degree(v) = |E|`).
    pub fn all(
        machine: &Machine,
        name: &str,
        n: usize,
        policy: AllocPolicy,
        total_degree: u64,
    ) -> Self {
        let bits = DenseBitmap::new(machine, name, n, policy);
        for v in 0..n {
            bits.set_unaccounted(v);
        }
        Frontier::dense(bits, n, total_degree)
    }

    /// Convert to the dense representation (no-op if already dense);
    /// `degree` is the frontier's exact total out-degree (the engines have
    /// it in hand from the direction switch). The conversion itself models
    /// the construction of the new state array and is unaccounted, as the
    /// paper's switch cost is dominated by the scan it avoids.
    pub fn into_dense(
        self,
        machine: &Machine,
        name: &str,
        n: usize,
        policy: AllocPolicy,
        degree: u64,
    ) -> Self {
        match self {
            f @ FrontierRepr::Dense { .. } => f,
            FrontierRepr::Sparse(items) => {
                let bits = DenseBitmap::new(machine, name, n, policy);
                for &v in &items {
                    bits.set_unaccounted(v as usize);
                }
                Frontier::dense(bits, items.len(), degree)
            }
        }
    }

    /// Convert to the sparse representation (no-op if already sparse).
    pub fn into_sparse(self) -> Self {
        match self {
            f @ FrontierRepr::Sparse(_) => f,
            FrontierRepr::Dense { repr, .. } => {
                FrontierRepr::Sparse(repr.iter_set().map(checked_vid).collect())
            }
        }
    }

    /// Unaccounted membership test in either representation.
    pub fn contains_unaccounted(&self, v: u32) -> bool {
        match self {
            FrontierRepr::Dense { repr, .. } => repr.test_unaccounted(v as usize),
            FrontierRepr::Sparse(items) => items.contains(&v),
        }
    }

    /// Capture this frontier as a [`FrontierSnapshot`], preserving the live
    /// representation and member order. `degree_of` supplies per-vertex
    /// out-degrees for sparse frontiers (dense ones carry their recorded
    /// sum). Unaccounted, like the other representation-maintenance
    /// operations (`into_sparse`, `drain_merged`); checkpoint *value* sweeps
    /// are what the engines charge.
    pub fn to_snapshot(&self, degree_of: impl FnMut(u32) -> u64) -> FrontierSnapshot {
        match self {
            FrontierRepr::Dense { repr, degree, .. } => {
                FrontierSnapshot::dense(repr.iter_set().map(checked_vid).collect(), *degree)
            }
            FrontierRepr::Sparse(items) => {
                let mut degree_of = degree_of;
                let degree = items.iter().map(|&v| degree_of(v)).sum();
                FrontierSnapshot::sparse(items.clone(), degree)
            }
        }
    }

    /// Rebuild a frontier from a snapshot, restoring the recorded
    /// representation exactly (see [`FrontierSnapshot`] on why the
    /// representation must round-trip).
    pub fn from_snapshot(
        machine: &Machine,
        name: &str,
        n: usize,
        policy: AllocPolicy,
        snap: &FrontierSnapshot,
    ) -> Self {
        if snap.dense {
            let bits = DenseBitmap::new(machine, name, n, policy);
            for &v in &snap.vertices {
                bits.set_unaccounted(v as usize);
            }
            Frontier::dense(bits, snap.vertices.len(), snap.out_degree)
        } else {
            Frontier::sparse(snap.vertices.clone())
        }
    }

    /// All active vertices, ascending, unaccounted (verification only).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        match self {
            FrontierRepr::Dense { repr, .. } => repr.iter_set().map(checked_vid).collect(),
            FrontierRepr::Sparse(items) => {
                let mut v = items.clone();
                v.sort_unstable();
                v
            }
        }
    }
}

/// Per-thread active-vertex queues: each simulated thread appends to its own
/// queue without contention (paper Section 5: "each thread on different
/// cores will allocate a private queue and append active vertex ID to it").
///
/// The queue payload lives on the host; each push additionally writes
/// through a small per-thread NUMA-placed scratch ring so the (sequential,
/// local) append traffic is charged by the machine model.
pub struct ThreadQueues {
    queues: Vec<Mutex<Vec<u32>>>,
    scratch: Vec<NumaAtomicArray<u32>>,
}

const SCRATCH_RING: usize = 64;

impl ThreadQueues {
    /// Queues for `threads` simulated threads bound node-major to the
    /// machine's cores (thread `t` on core `t`). Scratch rings are placed on
    /// each thread's home node.
    pub fn new(machine: &Machine, threads: usize) -> Self {
        let topo = machine.topology();
        ThreadQueues {
            queues: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            scratch: (0..threads)
                .map(|t| {
                    machine.alloc_atomic::<u32>(
                        "stat/queue",
                        SCRATCH_RING,
                        AllocPolicy::OnNode(topo.node_of_core(t)),
                    )
                })
                .collect(),
        }
    }

    /// Number of queues.
    pub fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// Append `v` to the calling thread's queue (thread id from `ctx`),
    /// charging one local sequential write.
    pub fn push(&self, ctx: &mut AccessCtx, v: u32) {
        let t = ctx.tid();
        let mut q = self.queues[t].lock();
        let pos = q.len() % SCRATCH_RING;
        q.push(v);
        drop(q);
        self.scratch[t].store(ctx, pos, v);
    }

    /// Total queued entries across threads.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// Drain all queues into one list (thread-id order) and clear them.
    pub fn drain_merged(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total_len());
        for q in &self.queues {
            out.append(&mut q.lock());
        }
        out
    }

    /// Drain one thread's queue.
    pub fn drain_thread(&self, tid: usize) -> Vec<u32> {
        std::mem::take(&mut self.queues[tid].lock())
    }

    /// Clear all queues.
    pub fn clear(&self) {
        for q in &self.queues {
            q.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_numa::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::test2())
    }

    #[test]
    fn densify_threshold_matches_ligra() {
        // |E| = 2000 -> threshold 100.
        assert!(!should_densify(10, 80, 2000));
        assert!(should_densify(10, 95, 2000));
        assert!(should_densify(200, 0, 2000));
    }

    #[test]
    fn densify_threshold_clamped_on_tiny_graphs() {
        // Regression: |E| < 20 used to yield a threshold of 0 via integer
        // division, so any non-empty frontier densified. The clamped
        // threshold is 1: a lone degree-0 vertex stays sparse.
        assert!(!should_densify(1, 0, 10));
        assert!(!should_densify(0, 0, 0));
        // Boundary: |E| = 19 (threshold 1) vs |E| = 20 (threshold 1) vs
        // |E| = 40 (threshold 2).
        assert!(should_densify(1, 1, 19));
        assert!(should_densify(1, 1, 20));
        assert!(!should_densify(1, 1, 40));
        assert!(should_densify(2, 1, 40));
    }

    #[test]
    fn tiny_graph_rebuild_keeps_small_frontiers_sparse() {
        let m = machine();
        let mk = |items: &[u32]| {
            let bits = DenseBitmap::new(&m, "stat/f", 8, AllocPolicy::Interleaved);
            for &v in items {
                bits.set_unaccounted(v as usize);
            }
            bits
        };
        // 4-edge graph, single active vertex of degree 0: previously
        // densified (threshold 0), now stays sparse.
        let f = Frontier::rebuild(vec![2], 0, 4, true, true, mk);
        assert!(!f.is_dense());
    }

    #[test]
    fn frontier_conversions_preserve_members() {
        let m = machine();
        let f = Frontier::sparse(vec![3, 7, 100]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_dense());
        let f = f.into_dense(&m, "stat/f", 128, AllocPolicy::Interleaved, 42);
        assert!(f.is_dense());
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.out_degree(|_| unreachable!("dense degree is recorded")),
            42
        );
        assert!(f.contains_unaccounted(7));
        assert!(!f.contains_unaccounted(8));
        let f = f.into_sparse();
        assert_eq!(f.to_sorted_vec(), vec![3, 7, 100]);
    }

    #[test]
    fn frontier_all_is_full() {
        let m = machine();
        let f = Frontier::all(&m, "stat/all", 100, AllocPolicy::Centralized, 500);
        assert_eq!(f.len(), 100);
        assert!(f.is_dense());
        assert_eq!(f.out_degree(|_| 0), 500);
        assert_eq!(f.to_sorted_vec().len(), 100);
        assert!(!f.is_empty());
    }

    #[test]
    fn empty_frontier() {
        let f = Frontier::sparse(vec![]);
        assert!(f.is_empty());
        assert_eq!(f.as_sparse().unwrap().len(), 0);
        assert!(f.as_dense().is_none());
    }

    #[test]
    fn sparse_out_degree_sums_members() {
        let f = Frontier::sparse(vec![1, 2, 3]);
        assert_eq!(f.out_degree(|v| v as u64 * 10), 60);
    }

    #[test]
    fn rebuild_follows_switching_rule() {
        let m = machine();
        let mk = |items: &[u32]| {
            let bits = DenseBitmap::new(&m, "stat/f", 64, AllocPolicy::Interleaved);
            for &v in items {
                bits.set_unaccounted(v as usize);
            }
            bits
        };
        // Below threshold (|E|/20 = 50): stays sparse.
        let f = Frontier::rebuild(vec![1, 2], 10, 1000, true, true, mk);
        assert!(!f.is_dense());
        // Above threshold: densifies, recording the exact degree.
        let f = Frontier::rebuild(vec![1, 2], 90, 1000, true, true, mk);
        assert!(f.is_dense());
        assert_eq!(f.out_degree(|_| 0), 90);
        assert_eq!(f.len(), 2);
        // Sparse disallowed (always-dense ablation): densifies regardless.
        let f = Frontier::rebuild(vec![1], 0, 1000, false, true, mk);
        assert!(f.is_dense());
        // Dense disallowed (push-pinned): stays sparse regardless.
        let f = Frontier::rebuild(vec![1, 2], 900, 1000, true, false, mk);
        assert!(!f.is_dense());
    }

    #[test]
    fn snapshot_round_trips_both_representations() {
        let m = machine();
        // Sparse: member order (not sortedness) must survive the round trip,
        // because it is the resumed run's scatter order.
        let f = Frontier::sparse(vec![9, 3, 7]);
        let snap = f.to_snapshot(|v| v as u64);
        assert!(!snap.dense);
        assert_eq!(snap.vertices, vec![9, 3, 7]);
        assert_eq!(snap.out_degree, 19);
        let back = Frontier::from_snapshot(&m, "stat/f", 16, AllocPolicy::Interleaved, &snap);
        assert!(!back.is_dense());
        assert_eq!(back.as_sparse().unwrap(), &[9, 3, 7]);

        // Dense: members and the recorded degree survive; representation is
        // restored as dense.
        let f = f.into_dense(&m, "stat/f", 16, AllocPolicy::Interleaved, 42);
        let snap = f.to_snapshot(|_| unreachable!("dense degree is recorded"));
        assert!(snap.dense);
        assert_eq!(snap.vertices, vec![3, 7, 9]);
        assert_eq!(snap.out_degree, 42);
        let back = Frontier::from_snapshot(&m, "stat/f", 16, AllocPolicy::Interleaved, &snap);
        assert!(back.is_dense());
        assert_eq!(back.len(), 3);
        assert_eq!(back.out_degree(|_| 0), 42);
        assert_eq!(back.to_sorted_vec(), vec![3, 7, 9]);
    }

    #[test]
    fn snapshot_serializes_via_vendored_serde() {
        use serde::{Deserialize, Serialize};
        let snap = FrontierSnapshot::sparse(vec![5, 1], 12).with_tags(vec![2, 3]);
        let v = snap.to_value();
        let back = FrontierSnapshot::from_value(&v).expect("snapshot deserializes");
        assert_eq!(back, snap);
    }

    #[test]
    fn thread_queues_accumulate_and_account() {
        let m = machine();
        let tq = ThreadQueues::new(&m, 2);
        let mut ctx0 = AccessCtx::new(&m, 0);
        let mut ctx1 = AccessCtx::new(&m, 1);
        for v in 0..10 {
            tq.push(&mut ctx0, v);
        }
        tq.push(&mut ctx1, 99);
        assert_eq!(tq.total_len(), 11);
        // Pushes were charged to the machine model.
        assert_eq!(ctx0.stats().total_count(), 10);
        let merged = tq.drain_merged();
        assert_eq!(merged.len(), 11);
        assert_eq!(merged[10], 99);
        assert_eq!(tq.total_len(), 0);
    }

    #[test]
    fn thread_queue_pushes_are_sequential_local() {
        let m = machine();
        let tq = ThreadQueues::new(&m, 1);
        let mut ctx = AccessCtx::new(&m, 0);
        for v in 0..20 {
            tq.push(&mut ctx, v);
        }
        let stats = ctx.take_stats();
        // All writes live on node 0 (local to core 0).
        assert_eq!(stats.remote_count(m.topology(), 0), 0);
    }
}
