//! Adaptive runtime states: dense bitmap ↔ sparse vertex queues.
//!
//! Most graph algorithms converge asymmetrically (paper Section 5, "Adaptive
//! Data Structures"): early iterations have many active vertices (a bitmap
//! is compact and contention-free to set), late iterations have few (bitmap
//! scans waste a full pass over `V/64` words — the paper measures 92 ms per
//! iteration for X-Stream's dense states on roadUS vs 0.032 ms for
//! Polymer's queues). [`Frontier`] holds either representation;
//! [`should_densify`] is Ligra's switching rule (total active degree vs.
//! `|E| / 20`); [`ThreadQueues`] are the per-thread contention-free queues
//! the sparse representation is built from.

use parking_lot::Mutex;
use polymer_numa::{AccessCtx, AllocPolicy, Machine, NumaAtomicArray};

use crate::bitmap::DenseBitmap;

/// Ligra's density threshold denominator: switch to the dense representation
/// when `active + Σ out-degree(active) > |E| / DENSITY_DENOMINATOR`.
pub const DENSITY_DENOMINATOR: u64 = 20;

/// Ligra's representation-switching rule.
#[inline]
pub fn should_densify(active: u64, active_degree_sum: u64, num_edges: u64) -> bool {
    active + active_degree_sum > num_edges / DENSITY_DENOMINATOR
}

/// An active-vertex set in either dense (bitmap) or sparse (vertex list)
/// representation.
pub enum Frontier {
    /// Dense: one bit per vertex; `count` caches the population count.
    Dense {
        /// The bitmap.
        bits: DenseBitmap,
        /// Number of set bits.
        count: usize,
    },
    /// Sparse: explicit vertex ids (unsorted, duplicate-free by
    /// construction).
    Sparse(Vec<u32>),
}

impl Frontier {
    /// A sparse frontier from a vertex list.
    pub fn sparse(items: Vec<u32>) -> Self {
        Frontier::Sparse(items)
    }

    /// A dense frontier with every vertex in `0..n` active.
    pub fn all(machine: &Machine, name: &str, n: usize, policy: AllocPolicy) -> Self {
        let bits = DenseBitmap::new(machine, name, n, policy);
        for v in 0..n {
            bits.set_unaccounted(v);
        }
        Frontier::Dense { bits, count: n }
    }

    /// A dense frontier from an existing bitmap and its population count.
    pub fn dense(bits: DenseBitmap, count: usize) -> Self {
        Frontier::Dense { bits, count }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Dense { count, .. } => *count,
            Frontier::Sparse(v) => v.len(),
        }
    }

    /// True when no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, Frontier::Dense { .. })
    }

    /// The sparse vertex list, if sparse.
    pub fn as_sparse(&self) -> Option<&[u32]> {
        match self {
            Frontier::Sparse(v) => Some(v),
            Frontier::Dense { .. } => None,
        }
    }

    /// The bitmap, if dense.
    pub fn as_dense(&self) -> Option<&DenseBitmap> {
        match self {
            Frontier::Dense { bits, .. } => Some(bits),
            Frontier::Sparse(_) => None,
        }
    }

    /// Convert to the dense representation (no-op if already dense). The
    /// conversion itself models the construction of the new state array and
    /// is unaccounted, as the paper's switch cost is dominated by the scan
    /// it avoids.
    pub fn into_dense(self, machine: &Machine, name: &str, n: usize, policy: AllocPolicy) -> Self {
        match self {
            f @ Frontier::Dense { .. } => f,
            Frontier::Sparse(items) => {
                let bits = DenseBitmap::new(machine, name, n, policy);
                for &v in &items {
                    bits.set_unaccounted(v as usize);
                }
                Frontier::Dense {
                    bits,
                    count: items.len(),
                }
            }
        }
    }

    /// Convert to the sparse representation (no-op if already sparse).
    pub fn into_sparse(self) -> Self {
        match self {
            f @ Frontier::Sparse(_) => f,
            Frontier::Dense { bits, .. } => {
                Frontier::Sparse(bits.iter_set().map(|v| v as u32).collect())
            }
        }
    }

    /// Unaccounted membership test in either representation.
    pub fn contains_unaccounted(&self, v: u32) -> bool {
        match self {
            Frontier::Dense { bits, .. } => bits.test_unaccounted(v as usize),
            Frontier::Sparse(items) => items.contains(&v),
        }
    }

    /// All active vertices, ascending, unaccounted (verification only).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        match self {
            Frontier::Dense { bits, .. } => bits.iter_set().map(|v| v as u32).collect(),
            Frontier::Sparse(items) => {
                let mut v = items.clone();
                v.sort_unstable();
                v
            }
        }
    }
}

/// Per-thread active-vertex queues: each simulated thread appends to its own
/// queue without contention (paper Section 5: "each thread on different
/// cores will allocate a private queue and append active vertex ID to it").
///
/// The queue payload lives on the host; each push additionally writes
/// through a small per-thread NUMA-placed scratch ring so the (sequential,
/// local) append traffic is charged by the machine model.
pub struct ThreadQueues {
    queues: Vec<Mutex<Vec<u32>>>,
    scratch: Vec<NumaAtomicArray<u32>>,
}

const SCRATCH_RING: usize = 64;

impl ThreadQueues {
    /// Queues for `threads` simulated threads bound node-major to the
    /// machine's cores (thread `t` on core `t`). Scratch rings are placed on
    /// each thread's home node.
    pub fn new(machine: &Machine, threads: usize) -> Self {
        let topo = machine.topology();
        ThreadQueues {
            queues: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            scratch: (0..threads)
                .map(|t| {
                    machine.alloc_atomic::<u32>(
                        "stat/queue",
                        SCRATCH_RING,
                        AllocPolicy::OnNode(topo.node_of_core(t)),
                    )
                })
                .collect(),
        }
    }

    /// Number of queues.
    pub fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// Append `v` to the calling thread's queue (thread id from `ctx`),
    /// charging one local sequential write.
    pub fn push(&self, ctx: &mut AccessCtx, v: u32) {
        let t = ctx.tid();
        let mut q = self.queues[t].lock();
        let pos = q.len() % SCRATCH_RING;
        q.push(v);
        drop(q);
        self.scratch[t].store(ctx, pos, v);
    }

    /// Total queued entries across threads.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// Drain all queues into one list (thread-id order) and clear them.
    pub fn drain_merged(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total_len());
        for q in &self.queues {
            out.append(&mut q.lock());
        }
        out
    }

    /// Drain one thread's queue.
    pub fn drain_thread(&self, tid: usize) -> Vec<u32> {
        std::mem::take(&mut self.queues[tid].lock())
    }

    /// Clear all queues.
    pub fn clear(&self) {
        for q in &self.queues {
            q.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_numa::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::test2())
    }

    #[test]
    fn densify_threshold_matches_ligra() {
        // |E| = 2000 -> threshold 100.
        assert!(!should_densify(10, 80, 2000));
        assert!(should_densify(10, 95, 2000));
        assert!(should_densify(200, 0, 2000));
    }

    #[test]
    fn frontier_conversions_preserve_members() {
        let m = machine();
        let f = Frontier::sparse(vec![3, 7, 100]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_dense());
        let f = f.into_dense(&m, "stat/f", 128, AllocPolicy::Interleaved);
        assert!(f.is_dense());
        assert_eq!(f.len(), 3);
        assert!(f.contains_unaccounted(7));
        assert!(!f.contains_unaccounted(8));
        let f = f.into_sparse();
        assert_eq!(f.to_sorted_vec(), vec![3, 7, 100]);
    }

    #[test]
    fn frontier_all_is_full() {
        let m = machine();
        let f = Frontier::all(&m, "stat/all", 100, AllocPolicy::Centralized);
        assert_eq!(f.len(), 100);
        assert!(f.is_dense());
        assert_eq!(f.to_sorted_vec().len(), 100);
        assert!(!f.is_empty());
    }

    #[test]
    fn empty_frontier() {
        let f = Frontier::sparse(vec![]);
        assert!(f.is_empty());
        assert_eq!(f.as_sparse().unwrap().len(), 0);
        assert!(f.as_dense().is_none());
    }

    #[test]
    fn thread_queues_accumulate_and_account() {
        let m = machine();
        let tq = ThreadQueues::new(&m, 2);
        let mut ctx0 = AccessCtx::new(&m, 0);
        let mut ctx1 = AccessCtx::new(&m, 1);
        for v in 0..10 {
            tq.push(&mut ctx0, v);
        }
        tq.push(&mut ctx1, 99);
        assert_eq!(tq.total_len(), 11);
        // Pushes were charged to the machine model.
        assert_eq!(ctx0.stats().total_count(), 10);
        let merged = tq.drain_merged();
        assert_eq!(merged.len(), 11);
        assert_eq!(merged[10], 99);
        assert_eq!(tq.total_len(), 0);
    }

    #[test]
    fn thread_queue_pushes_are_sequential_local() {
        let m = machine();
        let tq = ThreadQueues::new(&m, 1);
        let mut ctx = AccessCtx::new(&m, 0);
        for v in 0..20 {
            tq.push(&mut ctx, v);
        }
        let stats = ctx.take_stats();
        // All writes live on node 0 (local to core 0).
        assert_eq!(stats.remote_count(m.topology(), 0), 0);
    }
}
