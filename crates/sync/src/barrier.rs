//! The three barrier families of the paper's Figure 10(a).
//!
//! * [`CondvarBarrier`] — the `pthread_barrier` analogue: a flat barrier
//!   whose waiters block on a condition variable (trapping into the kernel).
//! * [`SenseBarrier`] — a centralized sense-reversing spin barrier built on
//!   atomic fetch-and-add (Mellor-Crummey & Scott, the paper's ref. 36); the
//!   sense is carried by a generation counter so no per-thread state is
//!   needed.
//! * [`HierBarrier`] — Polymer's NUMA-aware barrier: threads synchronize
//!   within their socket group on a per-group sense barrier; the last
//!   arriver of each group crosses a top-level sense barrier over group
//!   leaders, then releases its group. Cache-coherence traffic between
//!   sockets is thus one line per group instead of one per thread.
//!
//! Memory ordering: arrivals publish with `AcqRel` fetch-and-add, releases
//! publish the next generation with `Release`, and spinners acquire it, so
//! everything before a `wait` happens-before everything after the matching
//! release — the property the engines rely on between phases.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

/// A flat kernel-assisted barrier (Mutex + Condvar), modelling
/// `pthread_barrier`.
pub struct CondvarBarrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl CondvarBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        CondvarBarrier {
            n,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` participants have arrived. Returns `true` for
    /// exactly one participant per round (the "serial" thread).
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            true
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

/// A centralized sense-reversing spin barrier on fetch-and-add. The
/// "sense" is the generation word: a waiter records the generation at
/// arrival and spins until it changes.
pub struct SenseBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SenseBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Spin until all `n` participants have arrived. Returns `true` for the
    /// last arriver of each round. Spins briefly, then yields to the OS so
    /// oversubscribed hosts (more threads than cores) make progress.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            spin_until(|| self.generation.load(Ordering::Acquire) != gen);
            false
        }
    }
}

/// Spin-then-yield wait loop shared by the spin barriers.
#[inline]
fn spin_until(done: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !done() {
        if spins < 128 {
            std::hint::spin_loop();
            spins += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

struct Group {
    size: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    // Pad each group to its own cache line so spinning within one socket
    // group does not bounce lines of another.
    _pad: [u8; 40],
}

/// Polymer's hierarchical NUMA-aware barrier: per-group sense barriers plus
/// a top-level sense barrier across group leaders.
pub struct HierBarrier {
    groups: Vec<Group>,
    top: SenseBarrier,
}

impl HierBarrier {
    /// A barrier over groups of the given sizes (one group per NUMA node;
    /// sizes are the per-node thread counts). Empty groups are not allowed.
    pub fn new(group_sizes: &[usize]) -> Self {
        assert!(!group_sizes.is_empty(), "need at least one group");
        assert!(
            group_sizes.iter().all(|&s| s >= 1),
            "every group needs at least one participant"
        );
        HierBarrier {
            groups: group_sizes
                .iter()
                .map(|&size| Group {
                    size,
                    arrived: AtomicUsize::new(0),
                    generation: AtomicUsize::new(0),
                    _pad: [0; 40],
                })
                .collect(),
            top: SenseBarrier::new(group_sizes.len()),
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Block (spin) until every participant of every group has arrived.
    /// `group` is the caller's group index. Returns `true` for exactly one
    /// participant overall per round.
    pub fn wait(&self, group: usize) -> bool {
        let g = &self.groups[group];
        let gen = g.generation.load(Ordering::Acquire);
        if g.arrived.fetch_add(1, Ordering::AcqRel) + 1 == g.size {
            // Last arriver of the group becomes its leader and synchronizes
            // with the other leaders before releasing its group.
            let serial = self.top.wait();
            g.arrived.store(0, Ordering::Relaxed);
            g.generation.fetch_add(1, Ordering::Release);
            serial
        } else {
            spin_until(|| g.generation.load(Ordering::Acquire) != gen);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Generic stress: `threads` threads cross the barrier `rounds` times,
    /// each incrementing a per-round counter before waiting; after the wait
    /// every thread must observe the full round's increments.
    fn stress(threads: usize, rounds: usize, wait: impl Fn(usize) -> bool + Sync) {
        let counters: Vec<AtomicU64> = (0..rounds).map(|_| AtomicU64::new(0)).collect();
        let serials = AtomicU64::new(0);
        crossbeam::scope(|s| {
            for t in 0..threads {
                let counters = &counters;
                let wait = &wait;
                let serials = &serials;
                s.spawn(move |_| {
                    for (r, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        if wait(t) {
                            serials.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(
                            counters[r].load(Ordering::Relaxed),
                            threads as u64,
                            "round {r} released early"
                        );
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(serials.load(Ordering::Relaxed), rounds as u64);
    }

    #[test]
    fn sense_barrier_releases_all_rounds() {
        let b = SenseBarrier::new(4);
        stress(4, 50, |_| b.wait());
    }

    #[test]
    fn condvar_barrier_releases_all_rounds() {
        let b = CondvarBarrier::new(4);
        stress(4, 50, |_| b.wait());
    }

    #[test]
    fn hier_barrier_releases_all_rounds() {
        // 2 groups of 2 (a 2-node machine with 2 cores per node).
        let b = HierBarrier::new(&[2, 2]);
        stress(4, 50, |t| b.wait(t / 2));
    }

    #[test]
    fn hier_barrier_uneven_groups() {
        let b = HierBarrier::new(&[1, 3]);
        stress(4, 30, |t| b.wait(if t == 0 { 0 } else { 1 }));
    }

    #[test]
    fn single_thread_barriers_pass_through() {
        assert!(SenseBarrier::new(1).wait());
        assert!(CondvarBarrier::new(1).wait());
        assert!(HierBarrier::new(&[1]).wait(0));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        SenseBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_group_rejected() {
        HierBarrier::new(&[2, 0]);
    }

    #[test]
    fn exactly_one_serial_thread_per_round() {
        let b = SenseBarrier::new(3);
        let serial_count = AtomicU64::new(0);
        crossbeam::scope(|s| {
            for _ in 0..3 {
                s.spawn(|_| {
                    for _ in 0..100 {
                        if b.wait() {
                            serial_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(serial_count.load(Ordering::Relaxed), 100);
    }
}
