//! The three barrier families of the paper's Figure 10(a).
//!
//! * [`CondvarBarrier`] — the `pthread_barrier` analogue: a flat barrier
//!   whose waiters block on a condition variable (trapping into the kernel).
//! * [`SenseBarrier`] — a centralized sense-reversing spin barrier built on
//!   atomic fetch-and-add (Mellor-Crummey & Scott, the paper's ref. 36); the
//!   sense is carried by a generation counter so no per-thread state is
//!   needed.
//! * [`HierBarrier`] — Polymer's NUMA-aware barrier: threads synchronize
//!   within their socket group on a per-group sense barrier; the last
//!   arriver of each group crosses a top-level sense barrier over group
//!   leaders, then releases its group. Cache-coherence traffic between
//!   sockets is thus one line per group instead of one per thread.
//!
//! Memory ordering: arrivals publish with `AcqRel` fetch-and-add, releases
//! publish the next generation with `Release`, and spinners acquire it, so
//! everything before a `wait` happens-before everything after the matching
//! release — the property the engines rely on between phases.
//!
//! # Failure model
//!
//! The spin barriers can be **poisoned**: when a participant dies (panics)
//! or a deadline expires, [`SenseBarrier::poison`] / [`HierBarrier::poison`]
//! makes every current and future waiter return
//! [`PolymerError::BarrierPoisoned`] instead of spinning forever on a
//! generation that will never advance. The `wait_checked` / `wait_deadline`
//! variants surface this as a `Result`; the plain `wait` methods keep their
//! original infallible signature and propagate the typed error as a panic
//! payload that executors can downcast (see [`polymer_faults`]).
//! A poisoned barrier stays poisoned: its counters are no longer consistent
//! once a waiter has bailed out, so it must not be reused.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use polymer_faults::{panic_with, PolymerError, PolymerResult};

/// A flat kernel-assisted barrier (Mutex + Condvar), modelling
/// `pthread_barrier`.
pub struct CondvarBarrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl CondvarBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        CondvarBarrier {
            n,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` participants have arrived. Returns `true` for
    /// exactly one participant per round (the "serial" thread).
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            true
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

/// A centralized sense-reversing spin barrier on fetch-and-add. The
/// "sense" is the generation word: a waiter records the generation at
/// arrival and spins until it changes.
pub struct SenseBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SenseBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the barrier failed. Every current and future waiter returns
    /// [`PolymerError::BarrierPoisoned`] (or panics with it, for plain
    /// [`SenseBarrier::wait`]) instead of spinning on a generation that can
    /// no longer advance.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// True once the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Spin until all `n` participants have arrived. Returns `true` for the
    /// last arriver of each round. Spins briefly, then yields to the OS so
    /// oversubscribed hosts (more threads than cores) make progress.
    /// Panics (with a typed payload) if the barrier is poisoned.
    pub fn wait(&self) -> bool {
        self.wait_checked().unwrap_or_else(|e| panic_with(e))
    }

    /// Like [`SenseBarrier::wait`], surfacing poisoning as a typed error
    /// instead of a panic.
    pub fn wait_checked(&self) -> PolymerResult<bool> {
        self.wait_inner(None)
    }

    /// Like [`SenseBarrier::wait_checked`] with a deadline: a waiter still
    /// spinning at `deadline` poisons the barrier and returns
    /// [`PolymerError::BarrierTimeout`], so its siblings error out rather
    /// than deadlock on the missing participant.
    pub fn wait_deadline(&self, deadline: Instant) -> PolymerResult<bool> {
        self.wait_inner(Some(deadline))
    }

    fn wait_inner(&self, deadline: Option<Instant>) -> PolymerResult<bool> {
        if self.is_poisoned() {
            return Err(PolymerError::BarrierPoisoned);
        }
        let start = Instant::now();
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            Ok(true)
        } else {
            match spin_wait(
                || self.generation.load(Ordering::Acquire) != gen,
                &self.poisoned,
                deadline,
            ) {
                SpinOutcome::Done => Ok(false),
                SpinOutcome::Poisoned => Err(PolymerError::BarrierPoisoned),
                SpinOutcome::TimedOut => {
                    self.poison();
                    Err(PolymerError::BarrierTimeout {
                        waited: start.elapsed(),
                    })
                }
            }
        }
    }
}

enum SpinOutcome {
    Done,
    Poisoned,
    TimedOut,
}

/// Spin-then-yield wait loop shared by the spin barriers; bails out when the
/// poison flag rises or the optional deadline expires. The deadline is only
/// checked on the yield path — the first ~128 iterations are pure spins whose
/// elapsed time is negligible.
#[inline]
fn spin_wait(
    done: impl Fn() -> bool,
    poisoned: &AtomicBool,
    deadline: Option<Instant>,
) -> SpinOutcome {
    let mut spins = 0u32;
    loop {
        if done() {
            return SpinOutcome::Done;
        }
        if poisoned.load(Ordering::Acquire) {
            return SpinOutcome::Poisoned;
        }
        if spins < 128 {
            std::hint::spin_loop();
            spins += 1;
        } else {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return SpinOutcome::TimedOut;
                }
            }
            std::thread::yield_now();
        }
    }
}

struct Group {
    size: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    // Pad each group to its own cache line so spinning within one socket
    // group does not bounce lines of another.
    _pad: [u8; 40],
}

/// Polymer's hierarchical NUMA-aware barrier: per-group sense barriers plus
/// a top-level sense barrier across group leaders.
pub struct HierBarrier {
    groups: Vec<Group>,
    top: SenseBarrier,
    poisoned: AtomicBool,
}

impl HierBarrier {
    /// A barrier over groups of the given sizes (one group per NUMA node;
    /// sizes are the per-node thread counts). Empty groups are not allowed.
    pub fn new(group_sizes: &[usize]) -> Self {
        assert!(!group_sizes.is_empty(), "need at least one group");
        assert!(
            group_sizes.iter().all(|&s| s >= 1),
            "every group needs at least one participant"
        );
        HierBarrier {
            groups: group_sizes
                .iter()
                .map(|&size| Group {
                    size,
                    arrived: AtomicUsize::new(0),
                    generation: AtomicUsize::new(0),
                    _pad: [0; 40],
                })
                .collect(),
            top: SenseBarrier::new(group_sizes.len()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Mark the whole barrier (all groups and the top level) failed; every
    /// current and future waiter errors out instead of deadlocking.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.top.poison();
    }

    /// True once the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Block (spin) until every participant of every group has arrived.
    /// `group` is the caller's group index. Returns `true` for exactly one
    /// participant overall per round. Panics (with a typed payload) if the
    /// barrier is poisoned.
    pub fn wait(&self, group: usize) -> bool {
        self.wait_checked(group).unwrap_or_else(|e| panic_with(e))
    }

    /// Like [`HierBarrier::wait`], surfacing poisoning as a typed error
    /// instead of a panic.
    pub fn wait_checked(&self, group: usize) -> PolymerResult<bool> {
        self.wait_inner(group, None)
    }

    /// Like [`HierBarrier::wait_checked`] with a deadline: a waiter still
    /// spinning at `deadline` poisons the whole barrier and returns
    /// [`PolymerError::BarrierTimeout`], so every sibling — in its own group
    /// or another — errors out rather than deadlocks.
    pub fn wait_deadline(&self, group: usize, deadline: Instant) -> PolymerResult<bool> {
        self.wait_inner(group, Some(deadline))
    }

    fn wait_inner(&self, group: usize, deadline: Option<Instant>) -> PolymerResult<bool> {
        if self.is_poisoned() {
            return Err(PolymerError::BarrierPoisoned);
        }
        let start = Instant::now();
        let g = &self.groups[group];
        let gen = g.generation.load(Ordering::Acquire);
        if g.arrived.fetch_add(1, Ordering::AcqRel) + 1 == g.size {
            // Last arriver of the group becomes its leader and synchronizes
            // with the other leaders before releasing its group.
            let serial = match deadline {
                Some(d) => self.top.wait_deadline(d),
                None => self.top.wait_checked(),
            };
            match serial {
                Ok(serial) => {
                    g.arrived.store(0, Ordering::Relaxed);
                    g.generation.fetch_add(1, Ordering::Release);
                    Ok(serial)
                }
                Err(e) => {
                    // The leader cannot release its group anymore; poison so
                    // the group's spinners escape too.
                    self.poison();
                    Err(e)
                }
            }
        } else {
            match spin_wait(
                || g.generation.load(Ordering::Acquire) != gen,
                &self.poisoned,
                deadline,
            ) {
                SpinOutcome::Done => Ok(false),
                SpinOutcome::Poisoned => Err(PolymerError::BarrierPoisoned),
                SpinOutcome::TimedOut => {
                    self.poison();
                    Err(PolymerError::BarrierTimeout {
                        waited: start.elapsed(),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Generic stress: `threads` threads cross the barrier `rounds` times,
    /// each incrementing a per-round counter before waiting; after the wait
    /// every thread must observe the full round's increments.
    fn stress(threads: usize, rounds: usize, wait: impl Fn(usize) -> bool + Sync) {
        let counters: Vec<AtomicU64> = (0..rounds).map(|_| AtomicU64::new(0)).collect();
        let serials = AtomicU64::new(0);
        crossbeam::scope(|s| {
            for t in 0..threads {
                let counters = &counters;
                let wait = &wait;
                let serials = &serials;
                s.spawn(move |_| {
                    for (r, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        if wait(t) {
                            serials.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(
                            counters[r].load(Ordering::Relaxed),
                            threads as u64,
                            "round {r} released early"
                        );
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(serials.load(Ordering::Relaxed), rounds as u64);
    }

    #[test]
    fn sense_barrier_releases_all_rounds() {
        let b = SenseBarrier::new(4);
        stress(4, 50, |_| b.wait());
    }

    #[test]
    fn condvar_barrier_releases_all_rounds() {
        let b = CondvarBarrier::new(4);
        stress(4, 50, |_| b.wait());
    }

    #[test]
    fn hier_barrier_releases_all_rounds() {
        // 2 groups of 2 (a 2-node machine with 2 cores per node).
        let b = HierBarrier::new(&[2, 2]);
        stress(4, 50, |t| b.wait(t / 2));
    }

    #[test]
    fn hier_barrier_uneven_groups() {
        let b = HierBarrier::new(&[1, 3]);
        stress(4, 30, |t| b.wait(if t == 0 { 0 } else { 1 }));
    }

    #[test]
    fn single_thread_barriers_pass_through() {
        assert!(SenseBarrier::new(1).wait());
        assert!(CondvarBarrier::new(1).wait());
        assert!(HierBarrier::new(&[1]).wait(0));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        SenseBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_group_rejected() {
        HierBarrier::new(&[2, 0]);
    }

    #[test]
    fn poisoned_sense_barrier_rejects_waiters() {
        let b = SenseBarrier::new(2);
        b.poison();
        assert!(b.is_poisoned());
        assert!(matches!(
            b.wait_checked(),
            Err(PolymerError::BarrierPoisoned)
        ));
    }

    #[test]
    fn poison_releases_a_spinning_waiter() {
        let b = SenseBarrier::new(2);
        crossbeam::scope(|s| {
            let spinner = s.spawn(|_| b.wait_checked());
            // Never arrive; poison instead, as an executor does when a
            // sibling worker dies.
            std::thread::sleep(Duration::from_millis(20));
            b.poison();
            let got = spinner.join().unwrap();
            assert!(matches!(got, Err(PolymerError::BarrierPoisoned)));
        })
        .unwrap();
    }

    #[test]
    fn sense_barrier_deadline_times_out_and_poisons() {
        let b = SenseBarrier::new(2);
        let deadline = Instant::now() + Duration::from_millis(20);
        // Only one of two participants arrives: it must time out, not hang.
        let got = b.wait_deadline(deadline);
        assert!(matches!(got, Err(PolymerError::BarrierTimeout { .. })));
        assert!(b.is_poisoned());
        assert!(matches!(
            b.wait_checked(),
            Err(PolymerError::BarrierPoisoned)
        ));
    }

    #[test]
    fn hier_barrier_deadline_poisons_all_groups() {
        // Two groups of one: both callers go straight to the top barrier.
        // One group never arrives, so the sole arriving leader times out and
        // the poison must be visible to every group.
        let b = HierBarrier::new(&[1, 1]);
        let deadline = Instant::now() + Duration::from_millis(20);
        let got = b.wait_deadline(0, deadline);
        assert!(matches!(got, Err(PolymerError::BarrierTimeout { .. })));
        assert!(b.is_poisoned());
        assert!(matches!(
            b.wait_checked(1),
            Err(PolymerError::BarrierPoisoned)
        ));
    }

    #[test]
    fn hier_barrier_poison_releases_group_spinner() {
        // Group 0 has two participants; one arrives and spins on the group
        // generation. Poisoning must release it even though it is not
        // waiting at the top barrier.
        let b = HierBarrier::new(&[2, 1]);
        crossbeam::scope(|s| {
            let spinner = s.spawn(|_| b.wait_checked(0));
            std::thread::sleep(Duration::from_millis(20));
            b.poison();
            let got = spinner.join().unwrap();
            assert!(matches!(got, Err(PolymerError::BarrierPoisoned)));
        })
        .unwrap();
    }

    #[test]
    fn hier_barrier_group_spinner_times_out_when_leader_never_comes() {
        let b = HierBarrier::new(&[2]);
        let deadline = Instant::now() + Duration::from_millis(20);
        let got = b.wait_deadline(0, deadline);
        assert!(matches!(got, Err(PolymerError::BarrierTimeout { .. })));
        assert!(b.is_poisoned());
    }

    #[test]
    fn plain_wait_panics_with_typed_payload_when_poisoned() {
        let b = SenseBarrier::new(2);
        b.poison();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()))
            .expect_err("poisoned wait must panic");
        let err = PolymerError::from_panic(payload);
        assert!(matches!(err, PolymerError::BarrierPoisoned));
    }

    #[test]
    fn exactly_one_serial_thread_per_round() {
        let b = SenseBarrier::new(3);
        let serial_count = AtomicU64::new(0);
        crossbeam::scope(|s| {
            for _ in 0..3 {
                s.spawn(|_| {
                    for _ in 0..100 {
                        if b.wait() {
                            serial_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(serial_count.load(Ordering::Relaxed), 100);
    }
}
