//! NUMA-placed atomic bitmaps for dense runtime states.
//!
//! One bit per vertex over `u64` words stored in a
//! [`polymer_numa::NumaAtomicArray`], so every state access is classified by
//! the machine model exactly like the `Stat/curr` / `Stat/next` arrays in
//! the paper's Figures 2 and 6.

use polymer_numa::{AccessCtx, AllocPolicy, Machine, NumaAtomicArray};

/// A dense atomic bitmap over `n` vertices.
pub struct DenseBitmap {
    n: usize,
    bits: NumaAtomicArray<u64>,
}

impl DenseBitmap {
    /// An all-zero bitmap named `name` with the given placement.
    pub fn new(machine: &Machine, name: &str, n: usize, policy: AllocPolicy) -> Self {
        let words = n.div_ceil(64).max(1);
        DenseBitmap {
            n,
            bits: machine.alloc_atomic::<u64>(name, words, policy),
        }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the bitmap covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of backing words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.bits.len()
    }

    /// Atomically set bit `v`; returns `true` when the bit was newly set.
    /// Accounted as one write transaction.
    #[inline]
    pub fn set(&self, ctx: &mut AccessCtx, v: usize) -> bool {
        debug_assert!(v < self.n);
        let prev = self.bits.fetch_or(ctx, v / 64, 1u64 << (v % 64));
        prev & (1u64 << (v % 64)) == 0
    }

    /// Accounted test of bit `v`.
    #[inline]
    pub fn test(&self, ctx: &mut AccessCtx, v: usize) -> bool {
        debug_assert!(v < self.n);
        self.bits.load(ctx, v / 64) & (1u64 << (v % 64)) != 0
    }

    /// Accounted read of backing word `w` (for sequential word scans).
    #[inline]
    pub fn word(&self, ctx: &mut AccessCtx, w: usize) -> u64 {
        self.bits.load(ctx, w)
    }

    /// Accounted sequential scan of the backing words `r`, charged through
    /// the run-coalesced bulk path — bit-identical statistics to calling
    /// [`DenseBitmap::word`] once per word.
    #[inline]
    pub fn words_seq(
        &self,
        ctx: &mut AccessCtx,
        r: std::ops::Range<usize>,
    ) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter_seq(ctx, r)
    }

    /// Unaccounted set, for initialization.
    #[inline]
    pub fn set_unaccounted(&self, v: usize) {
        debug_assert!(v < self.n);
        let w = self.bits.raw_load(v / 64);
        self.bits.raw_store(v / 64, w | (1u64 << (v % 64)));
    }

    /// Unaccounted test, for verification.
    #[inline]
    pub fn test_unaccounted(&self, v: usize) -> bool {
        self.bits.raw_load(v / 64) & (1u64 << (v % 64)) != 0
    }

    /// Unaccounted read of backing word `w` (maintenance between phases).
    #[inline]
    pub fn raw_word(&self, w: usize) -> u64 {
        self.bits.raw_load(w)
    }

    /// Unaccounted overwrite of backing word `w`.
    #[inline]
    pub fn raw_store_word(&self, w: usize, bits: u64) {
        self.bits.raw_store(w, bits);
    }

    /// Unaccounted clear of every bit (buffer reuse between iterations).
    pub fn clear_unaccounted(&self) {
        for w in 0..self.bits.len() {
            self.bits.raw_store(w, 0);
        }
    }

    /// Unaccounted population count.
    pub fn count_ones(&self) -> usize {
        (0..self.bits.len())
            .map(|w| self.bits.raw_load(w).count_ones() as usize)
            .sum()
    }

    /// Unaccounted iteration over set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits.len()).flat_map(move |w| {
            let mut word = self.bits.raw_load(w);
            // Mask out bits beyond n in the last word.
            if (w + 1) * 64 > self.n {
                let valid = self.n - w * 64;
                if valid < 64 {
                    word &= (1u64 << valid) - 1;
                }
            }
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_numa::MachineSpec;

    fn setup(n: usize) -> (Machine, DenseBitmap) {
        let m = Machine::new(MachineSpec::test2());
        let b = DenseBitmap::new(&m, "stat/test", n, AllocPolicy::Interleaved);
        (m, b)
    }

    #[test]
    fn set_and_test() {
        let (m, b) = setup(200);
        let mut ctx = AccessCtx::new(&m, 0);
        assert!(b.set(&mut ctx, 5));
        assert!(!b.set(&mut ctx, 5));
        assert!(b.test(&mut ctx, 5));
        assert!(!b.test(&mut ctx, 6));
        assert!(b.set(&mut ctx, 199));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_set_ascending_and_masked() {
        let (_m, b) = setup(70);
        for v in [0, 63, 64, 69] {
            b.set_unaccounted(v);
        }
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![0, 63, 64, 69]);
    }

    #[test]
    fn word_scan_reads_words() {
        let (m, b) = setup(128);
        b.set_unaccounted(1);
        b.set_unaccounted(64);
        let mut ctx = AccessCtx::new(&m, 0);
        assert_eq!(b.word(&mut ctx, 0), 2);
        assert_eq!(b.word(&mut ctx, 1), 1);
        assert_eq!(b.num_words(), 2);
    }

    #[test]
    fn tiny_bitmap_has_one_word() {
        let (_m, b) = setup(3);
        b.set_unaccounted(2);
        assert_eq!(b.num_words(), 1);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![2]);
        assert!(b.test_unaccounted(2));
    }

    #[test]
    fn concurrent_sets_each_win_once() {
        let (m, b) = setup(64 * 64);
        // Every thread sets every bit; exactly one "newly set" per bit.
        let wins = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for core in 0..4 {
                let b = &b;
                let m = &m;
                let wins = &wins;
                s.spawn(move |_| {
                    let mut ctx = AccessCtx::new(m, core);
                    for v in 0..64 * 64 {
                        if b.set(&mut ctx, v) {
                            wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 64 * 64);
        assert_eq!(b.count_ones(), 64 * 64);
    }
}
