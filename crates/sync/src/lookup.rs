//! The lock-less tree-structured lookup table (Section 4.2).
//!
//! Polymer re-allocates runtime states every iteration; building one
//! contiguous array each time would be costly and contended. Instead each
//! NUMA node allocates its partition locally and links it into an indirect
//! *router array* — this table. Installation is a single atomic publish per
//! node (no locks, no contention between nodes); readers index the router
//! and then the partition.

use std::sync::OnceLock;

/// A fixed-width router array of independently installed partitions.
pub struct LookupTable<T> {
    slots: Vec<OnceLock<T>>,
}

impl<T> LookupTable<T> {
    /// A table with `nodes` empty slots.
    pub fn new(nodes: usize) -> Self {
        LookupTable {
            slots: (0..nodes).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Install `value` into `slot`. Lock-free; panics if the slot was
    /// already installed (each node owns exactly one slot per iteration).
    pub fn install(&self, slot: usize, value: T) {
        if self.slots[slot].set(value).is_err() {
            panic!("lookup table slot {slot} installed twice");
        }
    }

    /// The partition installed at `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.slots[slot].get()
    }

    /// True once every slot has been installed.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.get().is_some())
    }

    /// Iterate installed partitions in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_get() {
        let t: LookupTable<Vec<u32>> = LookupTable::new(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_complete());
        t.install(1, vec![10, 20]);
        assert_eq!(t.get(1), Some(&vec![10, 20]));
        assert_eq!(t.get(0), None);
        t.install(0, vec![]);
        t.install(2, vec![1]);
        assert!(t.is_complete());
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let t: LookupTable<u32> = LookupTable::new(1);
        t.install(0, 1);
        t.install(0, 2);
    }

    #[test]
    fn concurrent_install_from_many_threads() {
        let t: LookupTable<Vec<u64>> = LookupTable::new(8);
        crossbeam::scope(|s| {
            for node in 0..8usize {
                let t = &t;
                s.spawn(move |_| {
                    t.install(node, vec![node as u64; 100]);
                });
            }
        })
        .unwrap();
        assert!(t.is_complete());
        for node in 0..8 {
            assert_eq!(t.get(node).unwrap()[0], node as u64);
        }
    }
}
