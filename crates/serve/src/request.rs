//! Request and response types of the serving layer.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use polymer_api::supervisor::RecoveryReport;
use polymer_api::PolymerResult;
use polymer_graph::{BatchStats, DeltaBatch, VId};

/// One request against the resident graph: an algorithm query or an edge
/// mutation batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// BFS hop levels from `source`.
    Bfs {
        /// The source vertex.
        source: VId,
    },
    /// Shortest-path distances from `source` with delta-stepping width
    /// `delta` (the scheduling hint of asynchronous engines).
    Sssp {
        /// The source vertex.
        source: VId,
        /// Delta-stepping bucket width; requests only coalesce with equal
        /// widths.
        delta: u64,
    },
    /// PageRank over the whole graph for `iters` iterations. Whole-graph
    /// requests never coalesce — there is no per-source lane to share.
    /// Once the graph has been mutated (see [`RequestKind::Ingest`]),
    /// PageRank is served as the tolerance-converged residual fixpoint and
    /// `iters` becomes a hint only.
    PageRank {
        /// Iteration cap (static-graph mode only).
        iters: usize,
    },
    /// Apply an edge mutation batch to the resident graph. The first
    /// ingest switches the service into *mutated mode*: the resident edge
    /// set is canonicalized into a [`polymer_graph::MutableGraph`] and
    /// every later query is answered incrementally against the
    /// delta-overlay topology, warm-started from cached converged results
    /// where possible. The batch is validated at admission
    /// (out-of-range endpoints, self-loops, and zero weights are rejected
    /// with [`polymer_api::PolymerError::InvalidConfig`]).
    Ingest {
        /// The mutation batch to apply.
        batch: DeltaBatch,
    },
}

impl RequestKind {
    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Bfs { .. } => "BFS",
            RequestKind::Sssp { .. } => "SSSP",
            RequestKind::PageRank { .. } => "PageRank",
            RequestKind::Ingest { .. } => "Ingest",
        }
    }

    /// The coalescing class: requests with equal keys can share one
    /// multi-source sweep. `None` for whole-graph algorithms and for
    /// mutations.
    pub(crate) fn batch_key(&self) -> Option<BatchKey> {
        match self {
            RequestKind::Bfs { .. } => Some(BatchKey::Bfs),
            RequestKind::Sssp { delta, .. } => Some(BatchKey::Sssp { delta: *delta }),
            RequestKind::PageRank { .. } => None,
            RequestKind::Ingest { .. } => None,
        }
    }

    /// Admission-control estimate of the request's scratch footprint:
    /// two value lanes per vertex (`curr`/`next`) for queries, by value
    /// width, and the op list itself for ingests. The estimate is
    /// deliberately simple and deterministic — the budget bounds aggregate
    /// pressure, it does not meter allocations.
    pub(crate) fn scratch_bytes(&self, num_vertices: usize) -> u64 {
        let per_vertex: u64 = match self {
            RequestKind::Bfs { .. } => 2 * 4,
            RequestKind::Sssp { .. } => 2 * 8,
            RequestKind::PageRank { .. } => 2 * 8,
            RequestKind::Ingest { batch } => return 16 * batch.len() as u64,
        };
        per_vertex * num_vertices as u64
    }
}

/// The coalescing class of a request (see [`RequestKind::batch_key`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchKey {
    Bfs,
    Sssp { delta: u64 },
}

/// Final per-vertex values of a served request, by algorithm.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseValues {
    /// BFS hop levels ([`polymer_algos::UNVISITED`] where unreached).
    Levels(Vec<u32>),
    /// SSSP distances ([`polymer_algos::UNREACHED`] where unreached).
    Distances(Vec<u64>),
    /// PageRank mass per vertex.
    Ranks(Vec<f64>),
    /// Counters of an applied ingest batch (no per-vertex values).
    Ingested(BatchStats),
}

impl ResponseValues {
    /// BFS levels, if this is a BFS response.
    pub fn levels(&self) -> Option<&[u32]> {
        match self {
            ResponseValues::Levels(v) => Some(v),
            _ => None,
        }
    }

    /// SSSP distances, if this is an SSSP response.
    pub fn distances(&self) -> Option<&[u64]> {
        match self {
            ResponseValues::Distances(v) => Some(v),
            _ => None,
        }
    }

    /// PageRank values, if this is a PageRank response.
    pub fn ranks(&self) -> Option<&[f64]> {
        match self {
            ResponseValues::Ranks(v) => Some(v),
            _ => None,
        }
    }

    /// Applied-batch counters, if this is an ingest response.
    pub fn ingest_stats(&self) -> Option<&BatchStats> {
        match self {
            ResponseValues::Ingested(s) => Some(s),
            _ => None,
        }
    }

    /// Number of vertices covered (`0` for ingest responses).
    pub fn len(&self) -> usize {
        match self {
            ResponseValues::Levels(v) => v.len(),
            ResponseValues::Distances(v) => v.len(),
            ResponseValues::Ranks(v) => v.len(),
            ResponseValues::Ingested(_) => 0,
        }
    }

    /// True when no vertices are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A completed request: the answer plus everything a client or the bench
/// harness reports about how it was served.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// The request's service-assigned id — the same tag stamped on the
    /// underlying [`polymer_api::RunResult`], so results fanned out of a
    /// coalesced batch stay attributable.
    pub id: u64,
    /// Algorithm name (`"BFS"`, `"SSSP"`, `"PageRank"`).
    pub algorithm: &'static str,
    /// Final per-vertex values.
    pub values: ResponseValues,
    /// Iterations the serving sweep executed. For a coalesced batch this is
    /// the sweep's superstep count (the max over its lanes).
    pub iterations: usize,
    /// Lanes of the sweep that answered this request; `1` for a solo run.
    pub batched_lanes: usize,
    /// The request completed, but after its deadline had already passed.
    pub deadline_missed: bool,
    /// Submit-to-completion host latency (queue wait included).
    pub latency: Duration,
    /// The supervisor's recovery report, when the request ran solo under
    /// the [`polymer_api::supervisor::RunSupervisor`]; `None` for batched
    /// sweeps (their lightweight retry loop records nothing per lane).
    pub recovery: Option<RecoveryReport>,
}

/// The one-shot completion slot a worker fills and a [`Ticket`] waits on.
pub(crate) struct Slot {
    cell: Mutex<Option<PolymerResult<ServeResponse>>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            cell: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Deliver the outcome (at most once; later deliveries are ignored).
    pub(crate) fn fulfill(&self, outcome: PolymerResult<ServeResponse>) {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        if cell.is_none() {
            *cell = Some(outcome);
        }
        self.cv.notify_all();
    }

    fn take_blocking(&self) -> PolymerResult<ServeResponse> {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = cell.take() {
                return outcome;
            }
            cell = self.cv.wait(cell).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A handle to an admitted request. Dropping it abandons the answer (the
/// request still runs); [`Ticket::wait`] blocks until the worker pool
/// delivers the outcome.
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// The request's service-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes (or fails with a typed error).
    pub fn wait(self) -> PolymerResult<ServeResponse> {
        self.slot.take_blocking()
    }
}

/// Service counters, cheap enough to snapshot on every request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted past admission control.
    pub submitted: u64,
    /// Requests answered with values.
    pub completed: u64,
    /// Requests answered with a typed error after admission.
    pub failed: u64,
    /// Submissions rejected because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Submissions rejected by the aggregate memory budget.
    pub rejected_memory: u64,
    /// Admitted requests whose deadline expired while still queued.
    pub expired_in_queue: u64,
    /// Requests that completed after their deadline.
    pub deadline_missed: u64,
    /// Coalesced sweeps executed (two or more lanes).
    pub batches: u64,
    /// Requests answered by a coalesced sweep.
    pub batched_requests: u64,
    /// Largest lane count of any sweep so far.
    pub max_batch_lanes: u64,
    /// Mutation batches applied to the resident graph.
    pub ingests: u64,
    /// Threshold compactions triggered by ingests (base CSR rebuilds).
    pub compactions: u64,
    /// Queries answered by the incremental overlay engines (mutated mode),
    /// warm-started or cold; cache hits are counted separately.
    pub incremental_answers: u64,
    /// Queries answered straight from the converged-result cache without
    /// running anything (no mutation since the cached run).
    pub cache_hits: u64,
}
