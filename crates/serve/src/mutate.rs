//! Mutated-mode serving: the resident [`MutableGraph`], its placed
//! delta-overlay topology, and the converged-result cache that warm-starts
//! incremental queries.
//!
//! The service starts in *static mode*, answering queries against the
//! immutable resident [`polymer_graph::Graph`]. The first
//! [`crate::RequestKind::Ingest`] canonicalizes the resident edge set into
//! a [`MutableGraph`] (self-loops dropped, duplicate pairs collapsed —
//! exactly what the loaders do) and the service switches to mutated mode
//! permanently:
//!
//! * Ingests apply under the graph's own validation and threshold
//!   compaction; each returns its [`polymer_graph::BatchStats`].
//! * Queries run the incremental overlay engines
//!   ([`polymer_algos::bfs_overlay`] and friends) against a resident
//!   [`OverlayTopo`] placed on a persistent simulated [`Machine`]. The
//!   pair is rebuilt only when [`OverlayTopo::is_stale`] says the graph
//!   moved past it (any ingest, or a compaction's generation bump, which
//!   also re-encodes the base when compressed topology is enabled).
//! * Each query's converged values are cached per lane (algorithm ×
//!   source × parameters) together with the epoch they were computed at.
//!   A repeat query at the same epoch is a pure cache hit; a query after
//!   further ingests warm-starts from the cached values with the
//!   intervening [`AppliedBatch`]es merged via
//!   [`AppliedBatch::merged_with`]. Entries older than the retained batch
//!   window fall back to a cold overlay run.
//!
//! Everything here is called with the service's mutation mutex held, so
//! mutated-mode requests serialize on the resident overlay — the price of
//! answering against a single coherent graph version.

use std::collections::HashMap;

use polymer_algos::{bfs_overlay, pagerank_overlay, sssp_overlay, WarmStart, DEFAULT_PR_TOL};
use polymer_api::{OverlayTopo, PolymerResult};
use polymer_graph::{AppliedBatch, BatchStats, DeltaBatch, DeltaError, Graph, MutableGraph, VId};
use polymer_numa::{AllocPolicy, Machine, MachineSpec};

use crate::request::{RequestKind, ResponseValues};

/// Damping factor of served PageRank (the paper's 0.85).
const PR_DAMPING: f64 = 0.85;

/// Applied batches retained for warm-start merging; cached results older
/// than this window are recomputed cold.
const BATCH_WINDOW: usize = 32;

/// How a mutated-mode query was answered (drives the service counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AnswerPath {
    /// Served straight from the cache (no mutation since that run).
    CacheHit,
    /// Incremental overlay run, warm-started from a cached prior.
    Warm,
    /// Incremental overlay run from scratch (no usable prior).
    Cold,
}

/// One converged result per serving lane.
struct CacheEntry {
    /// `MutableGraph::epoch` when this result was computed.
    epoch: u64,
    /// Iteration counter of the run (warm-starts resume after it).
    iterations: usize,
    values: ResponseValues,
}

/// The cache lane of a query request.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum CacheKey {
    Bfs { source: VId },
    Sssp { source: VId, delta: u64 },
    PageRank,
}

impl CacheKey {
    fn of(kind: &RequestKind) -> Option<CacheKey> {
        match *kind {
            RequestKind::Bfs { source } => Some(CacheKey::Bfs { source }),
            RequestKind::Sssp { source, delta } => Some(CacheKey::Sssp { source, delta }),
            RequestKind::PageRank { .. } => Some(CacheKey::PageRank),
            RequestKind::Ingest { .. } => None,
        }
    }
}

/// The resident placed topology: a persistent simulated machine plus the
/// overlay CSR/CSC placed into it, kept until the graph moves past them.
struct Resident {
    machine: Machine,
    topo: OverlayTopo,
}

/// Mutation-mode state: the live graph, its placed topology, the retained
/// batch window, and the converged-result cache.
pub(crate) struct MutState {
    mg: MutableGraph,
    resident: Option<Resident>,
    batches: Vec<AppliedBatch>,
    cache: HashMap<CacheKey, CacheEntry>,
}

impl MutState {
    /// Enter mutated mode over the resident graph (canonicalizing its edge
    /// set), with an optional compaction-fraction override.
    pub(crate) fn new(g: &Graph, compaction_fraction: Option<f64>) -> MutState {
        let mut mg = MutableGraph::from_graph(g);
        if let Some(f) = compaction_fraction {
            mg = mg.with_compaction_fraction(f);
        }
        MutState {
            mg,
            resident: None,
            batches: Vec::new(),
            cache: HashMap::new(),
        }
    }

    /// Apply one mutation batch; the returned stats include whether the
    /// application crossed the compaction threshold.
    pub(crate) fn ingest(&mut self, batch: &DeltaBatch) -> Result<BatchStats, DeltaError> {
        let applied = self.mg.apply(batch)?;
        let stats = applied.stats;
        self.batches.push(applied);
        if self.batches.len() > BATCH_WINDOW {
            let drop = self.batches.len() - BATCH_WINDOW;
            self.batches.drain(..drop);
        }
        Ok(stats)
    }

    /// Answer one query incrementally. Returns the values, the run's
    /// iteration count, and which path served it.
    pub(crate) fn answer(
        &mut self,
        kind: &RequestKind,
        spec: &MachineSpec,
        threads: usize,
    ) -> PolymerResult<(ResponseValues, usize, AnswerPath)> {
        let key = CacheKey::of(kind).expect("ingests are not answered here");
        let epoch = self.mg.epoch();

        if let Some(e) = self.cache.get(&key) {
            if e.epoch == epoch {
                return Ok((e.values.clone(), e.iterations, AnswerPath::CacheHit));
            }
        }

        // (Re)place the topology if the graph moved past the resident one.
        let stale = match &self.resident {
            Some(r) => r.topo.is_stale(&self.mg),
            None => true,
        };
        if stale {
            let machine = Machine::new(spec.clone());
            let topo = OverlayTopo::build(&machine, &self.mg, true, |_| AllocPolicy::Interleaved);
            self.resident = Some(Resident { machine, topo });
        }
        let r = self.resident.as_ref().expect("freshly ensured");

        // A cached prior is usable when every batch since it is retained:
        // epochs advance by one per apply, so the merged window must span
        // (prior.epoch, epoch] exactly.
        let merged = self.cache.get(&key).and_then(|e| {
            let since: Vec<&AppliedBatch> =
                self.batches.iter().filter(|b| b.epoch > e.epoch).collect();
            if since.len() as u64 != epoch - e.epoch {
                return None;
            }
            let mut it = since.into_iter();
            let first = it.next()?.clone();
            Some(it.fold(first, |acc, b| acc.merged_with(b)))
        });

        let path = if merged.is_some() {
            AnswerPath::Warm
        } else {
            AnswerPath::Cold
        };
        let (values, iterations) = match (key.clone(), &merged) {
            (CacheKey::Bfs { source }, m) => {
                let prior = self.cache.get(&key);
                let warm = m.as_ref().map(|batch| WarmStart {
                    values: prior
                        .and_then(|e| e.values.levels())
                        .expect("warm implies cached levels"),
                    iterations: prior.expect("warm implies entry").iterations,
                    batch,
                });
                let run = bfs_overlay(&r.machine, threads, &r.topo, source, warm, false)?;
                (ResponseValues::Levels(run.values), run.iterations)
            }
            (CacheKey::Sssp { source, .. }, m) => {
                let prior = self.cache.get(&key);
                let warm = m.as_ref().map(|batch| WarmStart {
                    values: prior
                        .and_then(|e| e.values.distances())
                        .expect("warm implies cached distances"),
                    iterations: prior.expect("warm implies entry").iterations,
                    batch,
                });
                let run = sssp_overlay(&r.machine, threads, &r.topo, source, warm, false)?;
                (ResponseValues::Distances(run.values), run.iterations)
            }
            (CacheKey::PageRank, m) => {
                let prior = self.cache.get(&key);
                let warm = m.as_ref().map(|batch| WarmStart {
                    values: prior
                        .and_then(|e| e.values.ranks())
                        .expect("warm implies cached ranks"),
                    iterations: prior.expect("warm implies entry").iterations,
                    batch,
                });
                let run = pagerank_overlay(
                    &r.machine,
                    threads,
                    &r.topo,
                    PR_DAMPING,
                    DEFAULT_PR_TOL,
                    warm,
                    false,
                )?;
                (ResponseValues::Ranks(run.values), run.iterations)
            }
        };
        self.cache.insert(
            key,
            CacheEntry {
                epoch,
                iterations,
                values: values.clone(),
            },
        );
        Ok((values, iterations, path))
    }
}
