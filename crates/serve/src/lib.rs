//! # polymer-serve — resident-graph request serving
//!
//! The batch benchmarks load a graph, run one algorithm, and exit. This
//! crate keeps the expensive part — the CSR and its NUMA placement —
//! **resident**: a [`GraphService`] loads the graph once and serves
//! concurrent algorithm requests from a bounded queue over a worker pool,
//! the serving analogue of the paper's repeated-analytics setting.
//!
//! The serving contract, end to end:
//!
//! * **Admission control.** [`GraphService::submit`] either admits a
//!   request or rejects it *now* with a typed error: queue at capacity →
//!   [`PolymerError::QueueFull`]; aggregate scratch estimate past the
//!   configured budget → [`PolymerError::MemoryBudgetExceeded`] (both
//!   retryable: back off and resubmit); invalid for the resident graph →
//!   [`PolymerError::InvalidConfig`]; stopped service →
//!   [`PolymerError::ServiceStopped`]. Admitted requests pledge their
//!   scratch estimate until completion.
//!
//! * **Coalescing.** A dispatching worker takes the queue head plus every
//!   queued request in the same batching class (BFS with BFS, SSSP with
//!   equal Δ) and answers them with **one** multi-source sweep
//!   ([`polymer_algos::run_multi_source`]): one adjacency walk per
//!   iteration, amortized across up to [`polymer_algos::MAX_LANES`] lanes.
//!   These programs are integer min-combine fixed points, so every lane is
//!   bit-identical to the request run alone — batching changes latency,
//!   never answers. Whole-graph requests (PageRank) never coalesce.
//!
//! * **Supervision.** Solo requests run under the full
//!   [`polymer_api::supervisor::RunSupervisor`] — checkpoint-resume,
//!   retry/backoff, and the RealThreads → halved-groups → Simulated
//!   degrade ladder. Batched sweeps compute on host memory (immune to the
//!   simulated machine's injected faults) and run under a lightweight
//!   retry loop reusing the same
//!   [`polymer_api::supervisor::RetryPolicy`].
//!
//! * **Deadlines.** A request may carry a budget measured from submission
//!   (queue wait counts). Expired before dispatch → typed
//!   [`PolymerError::DeadlineExceeded`], never run. Still live at dispatch
//!   → the remaining budget tightens the supervisor via
//!   [`polymer_api::supervisor::SupervisorConfig::with_deadline`].
//!   Completed but late → the answer is delivered with
//!   [`ServeResponse::deadline_missed`] set, and counted in
//!   [`ServeStats::deadline_missed`].
//!
//! * **Continuous ingest.** [`RequestKind::Ingest`] applies an edge
//!   mutation batch to the resident graph through the same queue and
//!   admission machinery (batches are validated at admission). The first
//!   ingest canonicalizes the resident edge set into a
//!   [`polymer_graph::MutableGraph`] and switches the service to *mutated
//!   mode*: later queries are answered by the incremental overlay engines
//!   ([`polymer_algos::bfs_overlay`] and friends) against a resident
//!   delta-overlay topology, warm-started from a per-lane cache of
//!   converged results (a repeat query with no intervening mutation is a
//!   pure cache hit). Coalescing is disabled in mutated mode — the
//!   multi-source sweep reads the pre-mutation graph — and mutated-mode
//!   PageRank serves the tolerance-converged residual fixpoint rather
//!   than an iteration-capped sweep. `docs/INCREMENTAL.md` covers the
//!   delta model and warm-start semantics.
//!
//! * **Shutdown.** [`GraphService::stop`] (also on drop) fails queued
//!   requests with [`PolymerError::ServiceStopped`], lets in-flight runs
//!   deliver, and joins the pool.
//!
//! Every response is stamped with its request id (the
//! [`polymer_api::RunResult::tag`] mechanism), so results fanned out of a
//! coalesced sweep stay attributable. `docs/SERVING.md` walks through the
//! design; `bench_serve` measures sustained throughput and latency
//! percentiles under an open-loop arrival process.
//!
//! ```
//! use polymer_graph::{gen, Graph};
//! use polymer_serve::{GraphService, RequestKind, ServeConfig};
//!
//! let g = Graph::from_edges(&gen::rmat(6, 512, gen::RMAT_GRAPH500, 1));
//! let svc = GraphService::new(g, ServeConfig::default()).unwrap();
//! let ticket = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.values.levels().unwrap()[0], 0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod mutate;
mod request;
mod service;

pub use polymer_faults::{PolymerError, PolymerResult};
pub use request::{RequestKind, ResponseValues, ServeResponse, ServeStats, Ticket};
pub use service::{GraphService, ServeConfig};
