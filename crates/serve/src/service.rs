//! The resident-graph service: admission, coalescing, and the worker pool.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use polymer_algos::{run_multi_source, Bfs, MultiSource, PageRank, SingleSource, Sssp, MAX_LANES};
use polymer_api::supervisor::{RunSupervisor, SupervisorConfig};
use polymer_api::{Backend, PolymerError, PolymerResult, RunResult};
use polymer_core::PolymerEngine;
use polymer_graph::Graph;
use polymer_numa::{Machine, MachineSpec};

use crate::mutate::{AnswerPath, MutState};
use crate::request::{
    BatchKey, RequestKind, ResponseValues, ServeResponse, ServeStats, Slot, Ticket,
};

/// Everything a [`GraphService`] is configured with.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission bound on queued (not yet dispatched) requests.
    pub queue_capacity: usize,
    /// Worker threads dispatching requests; each runs one request or one
    /// coalesced batch at a time.
    pub workers: usize,
    /// Execution threads each dispatched run uses.
    pub threads_per_request: usize,
    /// Aggregate scratch-byte budget across admitted, unfinished requests.
    /// Each request pledges a deterministic estimate of twice its value
    /// width per vertex (the `curr`/`next` lanes) until it completes.
    pub memory_budget_bytes: u64,
    /// Cap on lanes per coalesced sweep (clamped to
    /// [`polymer_algos::MAX_LANES`]).
    pub max_batch_lanes: usize,
    /// Backend solo requests run on (batched sweeps always compute on host
    /// memory, like the real-thread backend).
    pub backend: Backend,
    /// Machine topology for every run.
    pub spec: MachineSpec,
    /// Supervision template: retry/backoff/degrade policy for solo runs;
    /// batched sweeps reuse its [`polymer_api::supervisor::RetryPolicy`].
    /// A request deadline tightens a clone of this per request via
    /// [`SupervisorConfig::with_deadline`].
    pub supervisor: SupervisorConfig,
    /// Deadline applied to requests submitted without one.
    pub default_deadline: Option<Duration>,
    /// Compaction-threshold override for mutated mode (`None` keeps
    /// [`polymer_graph::DEFAULT_COMPACTION_FRACTION`]); pending overlay
    /// entries past this fraction of the base edge count trigger a base
    /// CSR rebuild on ingest.
    pub compaction_fraction: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 2,
            threads_per_request: 4,
            memory_budget_bytes: 1 << 30,
            max_batch_lanes: MAX_LANES,
            backend: Backend::real_threads(),
            spec: MachineSpec::test2(),
            supervisor: SupervisorConfig::default(),
            default_deadline: None,
            compaction_fraction: None,
        }
    }
}

/// An admitted request waiting in the service queue.
struct Pending {
    id: u64,
    kind: RequestKind,
    submitted: Instant,
    deadline: Option<Duration>,
    scratch: u64,
    slot: Arc<Slot>,
}

/// Mutable service state, behind one mutex.
struct State {
    queue: VecDeque<Pending>,
    stopped: bool,
    paused: bool,
    /// Set by the first successful ingest; from then on queries dispatch
    /// through the incremental path and coalescing is disabled (the static
    /// multi-source sweep reads the pre-mutation resident graph).
    mutated: bool,
    in_use_bytes: u64,
    next_id: u64,
    stats: ServeStats,
}

struct Inner {
    graph: Arc<Graph>,
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Mutated-mode state (`None` until the first ingest). Held across the
    /// whole apply/answer, so mutated-mode requests serialize on it.
    mut_state: Mutex<Option<MutState>>,
    cv: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A long-lived graph-analytics service: the graph is loaded once, its CSR
/// and placement stay resident, and concurrent algorithm requests are
/// admitted into a bounded queue and dispatched by a worker pool. See the
/// crate docs for the full serving contract (admission, coalescing,
/// deadlines, shutdown).
pub struct GraphService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl GraphService {
    /// Start a service over `graph`. Spawns `cfg.workers` dispatcher
    /// threads immediately; they idle until requests arrive.
    pub fn new(graph: Graph, mut cfg: ServeConfig) -> PolymerResult<GraphService> {
        if cfg.workers == 0 {
            return Err(PolymerError::InvalidConfig(
                "serve workers must be >= 1".to_string(),
            ));
        }
        if cfg.queue_capacity == 0 {
            return Err(PolymerError::InvalidConfig(
                "serve queue capacity must be >= 1".to_string(),
            ));
        }
        if cfg.threads_per_request == 0 {
            return Err(PolymerError::InvalidConfig(
                "serve threads per request must be >= 1".to_string(),
            ));
        }
        if cfg.max_batch_lanes == 0 {
            return Err(PolymerError::InvalidConfig(
                "serve max batch lanes must be >= 1".to_string(),
            ));
        }
        cfg.max_batch_lanes = cfg.max_batch_lanes.min(MAX_LANES);
        let inner = Arc::new(Inner {
            graph: Arc::new(graph),
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                stopped: false,
                paused: false,
                mutated: false,
                in_use_bytes: 0,
                next_id: 0,
                stats: ServeStats::default(),
            }),
            mut_state: Mutex::new(None),
            cv: Condvar::new(),
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(GraphService {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The resident graph.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// Submit a request under the configured default deadline.
    pub fn submit(&self, kind: RequestKind) -> PolymerResult<Ticket> {
        self.submit_with_deadline(kind, self.inner.cfg.default_deadline)
    }

    /// Submit a request with an explicit deadline budget (measured from
    /// now: queue wait counts against it). Admission control runs here —
    /// the call returns a typed error without queueing when the service is
    /// stopped, the queue is full, the memory budget would be exceeded, or
    /// the request itself is invalid for the resident graph.
    pub fn submit_with_deadline(
        &self,
        kind: RequestKind,
        deadline: Option<Duration>,
    ) -> PolymerResult<Ticket> {
        let n = self.inner.graph.num_vertices();
        let source = match kind {
            RequestKind::Bfs { source } => Some(source),
            RequestKind::Sssp { source, .. } => Some(source),
            RequestKind::PageRank { .. } | RequestKind::Ingest { .. } => None,
        };
        if let Some(s) = source {
            if s as usize >= n {
                return Err(PolymerError::InvalidConfig(format!(
                    "source vertex {s} out of range (graph has {n} vertices)"
                )));
            }
        }
        if let RequestKind::Ingest { batch } = &kind {
            batch
                .validate(n)
                .map_err(|e| PolymerError::InvalidConfig(format!("ingest batch: {e}")))?;
        }
        let scratch = kind.scratch_bytes(n);
        let mut st = self.inner.lock();
        if st.stopped {
            return Err(PolymerError::ServiceStopped);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            st.stats.rejected_queue_full += 1;
            return Err(PolymerError::QueueFull {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let budget = self.inner.cfg.memory_budget_bytes;
        if st.in_use_bytes.saturating_add(scratch) > budget {
            st.stats.rejected_memory += 1;
            return Err(PolymerError::MemoryBudgetExceeded {
                requested_bytes: scratch,
                in_use_bytes: st.in_use_bytes,
                budget_bytes: budget,
            });
        }
        st.in_use_bytes += scratch;
        let id = st.next_id;
        st.next_id += 1;
        st.stats.submitted += 1;
        let slot = Slot::new();
        st.queue.push_back(Pending {
            id,
            kind,
            submitted: Instant::now(),
            deadline,
            scratch,
            slot: Arc::clone(&slot),
        });
        drop(st);
        self.inner.cv.notify_one();
        Ok(Ticket { id, slot })
    }

    /// Hold dispatch: queued requests stay queued (admission still runs).
    /// Tests use this to fill the queue deterministically and to force
    /// coalescing; a paused service still accepts and rejects submissions.
    pub fn pause(&self) {
        self.inner.lock().paused = true;
    }

    /// Resume dispatch after [`GraphService::pause`].
    pub fn resume(&self) {
        self.inner.lock().paused = false;
        self.inner.cv.notify_all();
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.lock().stats.clone()
    }

    /// Stop the service: requests still queued (and later submissions) get
    /// [`PolymerError::ServiceStopped`]; in-flight runs finish and deliver.
    /// Blocks until every worker has exited. Idempotent; also runs on drop.
    pub fn stop(&self) {
        {
            let mut st = self.inner.lock();
            st.stopped = true;
            st.paused = false;
        }
        self.inner.cv.notify_all();
        let handles = {
            let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *workers)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for GraphService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One dispatcher thread: wait for work, take the head request plus every
/// queued request in the same coalescing class, run, deliver, repeat.
fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut st = inner.lock();
            loop {
                if st.stopped {
                    while let Some(p) = st.queue.pop_front() {
                        st.in_use_bytes -= p.scratch;
                        st.stats.failed += 1;
                        p.slot.fulfill(Err(PolymerError::ServiceStopped));
                    }
                    return;
                }
                if !st.paused && !st.queue.is_empty() {
                    break;
                }
                st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            take_batch(&mut st, inner.cfg.max_batch_lanes)
        };
        process(inner, batch);
    }
}

/// Pop the head request and coalesce every queued request with the same
/// [`BatchKey`] behind it, up to `max_lanes`. Whole-graph requests (no
/// key) dispatch alone, and once the graph has been mutated nothing
/// coalesces — the multi-source sweep reads the pre-mutation resident
/// graph, so every query must go through the incremental path. FIFO order
/// is preserved for everything left.
fn take_batch(st: &mut State, max_lanes: usize) -> Vec<Pending> {
    let head = st.queue.pop_front().expect("caller checked non-empty");
    let key = if st.mutated {
        None
    } else {
        head.kind.batch_key()
    };
    let mut batch = vec![head];
    if let Some(key) = key {
        let mut i = 0;
        while i < st.queue.len() && batch.len() < max_lanes {
            if st.queue[i].kind.batch_key() == Some(key) {
                batch.push(st.queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
    }
    batch
}

/// Dispatch one batch: expire dead requests, then run the rest — solo
/// under the full supervisor, or as one coalesced multi-source sweep.
fn process(inner: &Inner, batch: Vec<Pending>) {
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        match p.deadline {
            Some(d) if p.submitted.elapsed() >= d => {
                finish(
                    inner,
                    &p,
                    Err(PolymerError::DeadlineExceeded { deadline: d }),
                );
                let mut st = inner.lock();
                st.stats.expired_in_queue += 1;
            }
            _ => live.push(p),
        }
    }
    match live.len() {
        0 => {}
        1 => dispatch_one(inner, live.into_iter().next().expect("len checked")),
        _ => run_batched(inner, live),
    }
}

/// Route a solo request: ingests mutate the resident state; queries run
/// incrementally once the graph has been mutated, and under the full
/// static-graph supervisor before that.
fn dispatch_one(inner: &Inner, p: Pending) {
    if matches!(p.kind, RequestKind::Ingest { .. }) {
        run_ingest(inner, p);
    } else if inner.lock().mutated {
        run_incremental(inner, p);
    } else {
        run_solo(inner, p);
    }
}

/// Apply an ingest batch to the mutated-mode state (created lazily from
/// the resident graph on the first ingest) and answer with its stats.
fn run_ingest(inner: &Inner, p: Pending) {
    let RequestKind::Ingest { batch } = &p.kind else {
        unreachable!("caller matched Ingest");
    };
    let mut guard = inner.mut_state.lock().unwrap_or_else(|e| e.into_inner());
    let ms =
        guard.get_or_insert_with(|| MutState::new(&inner.graph, inner.cfg.compaction_fraction));
    let outcome = match ms.ingest(batch) {
        Ok(stats) => {
            {
                let mut st = inner.lock();
                st.mutated = true;
                st.stats.ingests += 1;
                if stats.compacted {
                    st.stats.compactions += 1;
                }
            }
            Ok(ServeResponse {
                id: p.id,
                algorithm: p.kind.name(),
                values: ResponseValues::Ingested(stats),
                iterations: 0,
                batched_lanes: 1,
                deadline_missed: missed(&p),
                latency: p.submitted.elapsed(),
                recovery: None,
            })
        }
        // Validation ran at admission; an error here means the graph
        // changed shape underneath the queue, which it cannot.
        Err(e) => Err(PolymerError::InvalidConfig(format!("ingest batch: {e}"))),
    };
    drop(guard);
    finish(inner, &p, outcome);
}

/// Answer a query in mutated mode: cache hit, warm-started incremental
/// repair, or cold overlay run (see [`crate::mutate`]).
fn run_incremental(inner: &Inner, p: Pending) {
    let mut guard = inner.mut_state.lock().unwrap_or_else(|e| e.into_inner());
    let ms = guard.as_mut().expect("mutated flag implies state");
    let outcome = ms
        .answer(&p.kind, &inner.cfg.spec, inner.cfg.threads_per_request)
        .map(|(values, iterations, path)| {
            {
                let mut st = inner.lock();
                match path {
                    AnswerPath::CacheHit => st.stats.cache_hits += 1,
                    AnswerPath::Warm | AnswerPath::Cold => st.stats.incremental_answers += 1,
                }
            }
            ServeResponse {
                id: p.id,
                algorithm: p.kind.name(),
                values,
                iterations,
                batched_lanes: 1,
                deadline_missed: missed(&p),
                latency: p.submitted.elapsed(),
                recovery: None,
            }
        });
    drop(guard);
    finish(inner, &p, outcome);
}

/// Deliver `outcome` for `p` and release its admission pledge.
fn finish(inner: &Inner, p: &Pending, outcome: PolymerResult<ServeResponse>) {
    {
        let mut st = inner.lock();
        st.in_use_bytes -= p.scratch;
        match &outcome {
            Ok(r) => {
                st.stats.completed += 1;
                if r.deadline_missed {
                    st.stats.deadline_missed += 1;
                }
            }
            Err(_) => st.stats.failed += 1,
        }
    }
    p.slot.fulfill(outcome);
}

/// True when the request completed after its deadline had passed.
fn missed(p: &Pending) -> bool {
    p.deadline.is_some_and(|d| p.submitted.elapsed() > d)
}

/// Run one request under the full [`RunSupervisor`] (checkpoint-resume and
/// the degrade ladder included) on the configured backend.
fn run_solo(inner: &Inner, p: Pending) {
    let mut cfg = inner.cfg.supervisor.clone();
    if let Some(d) = p.deadline {
        // The queue already consumed part of the budget; the supervisor
        // gets only what remains (expiry at zero was handled upstream).
        cfg = cfg.with_deadline(d.saturating_sub(p.submitted.elapsed()));
    }
    let sup = RunSupervisor::new(cfg);
    let engine = PolymerEngine::new();
    let threads = inner.cfg.threads_per_request;
    let (backend, spec) = (&inner.cfg.backend, &inner.cfg.spec);
    let g = &inner.graph;
    let outcome = match p.kind {
        RequestKind::Bfs { source } => {
            let prog = Bfs::new(source);
            let (res, _) = sup.run_reported(&engine, backend, spec, threads, g, &prog);
            res.map(|run| solo_response(&p, run.with_tag(p.id), ResponseValues::Levels))
        }
        RequestKind::Sssp { source, delta } => {
            let prog = Sssp::new(source).with_delta(delta);
            let (res, _) = sup.run_reported(&engine, backend, spec, threads, g, &prog);
            res.map(|run| solo_response(&p, run.with_tag(p.id), ResponseValues::Distances))
        }
        RequestKind::PageRank { iters } => {
            let prog = PageRank::new(g.num_vertices()).with_iters(iters);
            let (res, _) = sup.run_reported(&engine, backend, spec, threads, g, &prog);
            res.map(|run| solo_response(&p, run.with_tag(p.id), ResponseValues::Ranks))
        }
        RequestKind::Ingest { .. } => unreachable!("ingests dispatch through run_ingest"),
    };
    finish(inner, &p, outcome);
}

/// Package a supervised solo run for its request.
fn solo_response<V>(
    p: &Pending,
    run: RunResult<V>,
    wrap: impl FnOnce(Vec<V>) -> ResponseValues,
) -> ServeResponse {
    ServeResponse {
        id: p.id,
        algorithm: p.kind.name(),
        values: wrap(run.values),
        iterations: run.iterations,
        batched_lanes: 1,
        deadline_missed: missed(p),
        latency: p.submitted.elapsed(),
        recovery: run.recovery,
    }
}

/// Run a coalesced batch (two or more same-class requests) as one
/// multi-source sweep, then fan the lanes back out to their requests.
///
/// The sweep computes on host memory and is immune to the simulated
/// machine's injected faults, so instead of the full engine supervisor it
/// runs under a lightweight retry loop that reuses the supervisor's
/// [`polymer_api::supervisor::RetryPolicy`] (attempt cap, backoff ladder)
/// and respects the tightest live deadline in the batch between attempts.
fn run_batched(inner: &Inner, batch: Vec<Pending>) {
    let sources: Vec<u32> = batch
        .iter()
        .map(|p| match p.kind {
            RequestKind::Bfs { source } => source,
            RequestKind::Sssp { source, .. } => source,
            RequestKind::PageRank { .. } | RequestKind::Ingest { .. } => {
                unreachable!("keyless requests never coalesce")
            }
        })
        .collect();
    {
        let mut st = inner.lock();
        st.stats.batches += 1;
        st.stats.batched_requests += batch.len() as u64;
        st.stats.max_batch_lanes = st.stats.max_batch_lanes.max(batch.len() as u64);
    }
    match batch[0]
        .kind
        .batch_key()
        .expect("batched requests have a key")
    {
        BatchKey::Bfs => {
            let sweep = sweep_with_retry(
                inner,
                &batch,
                &Bfs::new(0),
                &sources,
                ResponseValues::Levels,
            );
            deliver_lanes(inner, batch, sweep);
        }
        BatchKey::Sssp { delta } => {
            let template = Sssp::new(0).with_delta(delta);
            let sweep = sweep_with_retry(
                inner,
                &batch,
                &template,
                &sources,
                ResponseValues::Distances,
            );
            deliver_lanes(inner, batch, sweep);
        }
    }
}

/// Execute the sweep under the retry ladder; on success return each lane's
/// packaged values and the sweep's iteration count.
fn sweep_with_retry<P: SingleSource>(
    inner: &Inner,
    batch: &[Pending],
    template: &P,
    sources: &[u32],
    wrap: impl Fn(Vec<P::Val>) -> ResponseValues,
) -> PolymerResult<(Vec<ResponseValues>, usize)> {
    let ms = MultiSource::from_sources(template, sources)?;
    let retry = &inner.cfg.supervisor.retry;
    let deadline_left = |b: &[Pending]| -> Option<Duration> {
        b.iter()
            .filter_map(|p| p.deadline.map(|d| d.saturating_sub(p.submitted.elapsed())))
            .min()
    };
    let mut failures = 0usize;
    loop {
        let machine = Machine::new(inner.cfg.spec.clone());
        match run_multi_source(&machine, inner.cfg.threads_per_request, &inner.graph, &ms) {
            Ok(res) => {
                let lanes = (0..res.lanes).map(|l| wrap(res.lane_values(l))).collect();
                return Ok((lanes, res.run.iterations));
            }
            Err(e) if e.is_retryable() && failures + 1 < retry.max_attempts.max(1) => {
                failures += 1;
                let backoff = retry.backoff_after(failures);
                if let Some(left) = deadline_left(batch) {
                    if left <= backoff {
                        return Err(e);
                    }
                }
                if inner.cfg.supervisor.sleep_on_backoff && !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fan a sweep's outcome back out: each request gets its own lane's values
/// (or a clone of the common error).
fn deliver_lanes(
    inner: &Inner,
    batch: Vec<Pending>,
    sweep: PolymerResult<(Vec<ResponseValues>, usize)>,
) {
    match sweep {
        Ok((lanes, iterations)) => {
            let k = batch.len();
            for (p, values) in batch.iter().zip(lanes) {
                let response = ServeResponse {
                    id: p.id,
                    algorithm: p.kind.name(),
                    values,
                    iterations,
                    batched_lanes: k,
                    deadline_missed: missed(p),
                    latency: p.submitted.elapsed(),
                    recovery: None,
                };
                finish(inner, p, Ok(response));
            }
        }
        Err(e) => {
            for p in &batch {
                finish(inner, p, Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_algos::run_reference;
    use polymer_graph::gen;
    use polymer_graph::{DeltaBatch, MutableGraph};

    fn graph() -> Graph {
        Graph::from_edges(&gen::rmat(7, 1 << 10, gen::RMAT_GRAPH500, 5))
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            threads_per_request: 2,
            backend: Backend::Simulated,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_bfs_end_to_end() {
        let g = graph();
        let (want, _) = run_reference(&g, &Bfs::new(3));
        let svc = GraphService::new(g, quick_cfg()).unwrap();
        let t = svc.submit(RequestKind::Bfs { source: 3 }).unwrap();
        let r = t.wait().unwrap();
        assert_eq!(r.algorithm, "BFS");
        assert_eq!(r.values.levels().unwrap(), &want[..]);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn rejects_out_of_range_source_at_admission() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        let err = svc
            .submit(RequestKind::Bfs { source: 1 << 20 })
            .map(|t| t.id())
            .unwrap_err();
        assert_eq!(err.code(), "invalid-config");
        assert_eq!(svc.stats().submitted, 0);
    }

    #[test]
    fn queue_full_is_typed_and_retryable() {
        let cfg = ServeConfig {
            queue_capacity: 2,
            ..quick_cfg()
        };
        let svc = GraphService::new(graph(), cfg).unwrap();
        svc.pause();
        let _t1 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        let _t2 = svc.submit(RequestKind::Bfs { source: 1 }).unwrap();
        let err = svc
            .submit(RequestKind::Bfs { source: 2 })
            .map(|t| t.id())
            .unwrap_err();
        assert_eq!(err, PolymerError::QueueFull { capacity: 2 });
        assert!(err.is_retryable());
        assert_eq!(svc.stats().rejected_queue_full, 1);
        svc.resume();
    }

    #[test]
    fn memory_budget_rejects_then_readmits_after_drain() {
        let g = graph();
        let n = g.num_vertices();
        let one_bfs = RequestKind::Bfs { source: 0 }.scratch_bytes(n);
        let cfg = ServeConfig {
            memory_budget_bytes: one_bfs,
            ..quick_cfg()
        };
        let svc = GraphService::new(g, cfg).unwrap();
        svc.pause();
        let t1 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        let err = svc
            .submit(RequestKind::Bfs { source: 1 })
            .map(|t| t.id())
            .unwrap_err();
        match err {
            PolymerError::MemoryBudgetExceeded {
                requested_bytes,
                in_use_bytes,
                budget_bytes,
            } => {
                assert_eq!(requested_bytes, one_bfs);
                assert_eq!(in_use_bytes, one_bfs);
                assert_eq!(budget_bytes, one_bfs);
            }
            other => panic!("unexpected: {other:?}"),
        }
        svc.resume();
        t1.wait().unwrap();
        // The pledge is released on completion; the same request fits again.
        svc.submit(RequestKind::Bfs { source: 1 })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(svc.stats().rejected_memory, 1);
    }

    #[test]
    fn paused_queue_coalesces_same_algorithm_requests() {
        let g = graph();
        let sources = [0u32, 9, 17, 4];
        let oracle: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| run_reference(&g, &Bfs::new(s)).0)
            .collect();
        let svc = GraphService::new(g, quick_cfg()).unwrap();
        svc.pause();
        let tickets: Vec<Ticket> = sources
            .iter()
            .map(|&s| svc.submit(RequestKind::Bfs { source: s }).unwrap())
            .collect();
        assert_eq!(svc.queue_len(), sources.len());
        svc.resume();
        for (t, want) in tickets.into_iter().zip(&oracle) {
            let r = t.wait().unwrap();
            assert_eq!(r.batched_lanes, sources.len());
            assert_eq!(r.values.levels().unwrap(), &want[..]);
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_requests, sources.len() as u64);
        assert_eq!(stats.max_batch_lanes, sources.len() as u64);
    }

    #[test]
    fn mixed_kinds_do_not_coalesce_across_algorithms() {
        let g = graph();
        let svc = GraphService::new(g, quick_cfg()).unwrap();
        svc.pause();
        let tb = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        let ts = svc
            .submit(RequestKind::Sssp {
                source: 0,
                delta: 100,
            })
            .unwrap();
        let tb2 = svc.submit(RequestKind::Bfs { source: 5 }).unwrap();
        svc.resume();
        let rb = tb.wait().unwrap();
        let rs = ts.wait().unwrap();
        let rb2 = tb2.wait().unwrap();
        // The two BFS requests coalesce around the SSSP; SSSP runs alone.
        assert_eq!(rb.batched_lanes, 2);
        assert_eq!(rb2.batched_lanes, 2);
        assert_eq!(rs.batched_lanes, 1);
        assert!(rs.values.distances().is_some());
    }

    #[test]
    fn expired_deadline_rejects_without_running() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        svc.pause();
        let deadline = Duration::from_millis(20);
        let t = svc
            .submit_with_deadline(RequestKind::Bfs { source: 0 }, Some(deadline))
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        svc.resume();
        let err = match t.wait() {
            Err(e) => e,
            Ok(_) => panic!("expired request must not produce values"),
        };
        assert_eq!(err, PolymerError::DeadlineExceeded { deadline });
        assert!(!err.is_retryable());
        let stats = svc.stats();
        assert_eq!(stats.expired_in_queue, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn stop_fails_queued_requests_and_later_submissions() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        svc.pause();
        let t = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        svc.stop();
        let err = match t.wait() {
            Err(e) => e,
            Ok(_) => panic!("queued request must not run after stop"),
        };
        assert_eq!(err, PolymerError::ServiceStopped);
        let err = svc
            .submit(RequestKind::Bfs { source: 0 })
            .map(|t| t.id())
            .unwrap_err();
        assert_eq!(err, PolymerError::ServiceStopped);
    }

    #[test]
    fn ingest_switches_to_incremental_with_cache_and_warm_start() {
        let g = graph();
        let n = g.num_vertices() as u32;
        let svc = GraphService::new(g.clone(), quick_cfg()).unwrap();

        // Static-mode query first, so the service has served both modes.
        svc.submit(RequestKind::Bfs { source: 0 })
            .unwrap()
            .wait()
            .unwrap();

        let mut b1 = DeltaBatch::new();
        b1.insert(1, n - 3, 7).insert(2, n - 2, 3).delete(0, 1);
        let r = svc
            .submit(RequestKind::Ingest { batch: b1.clone() })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.algorithm, "Ingest");
        let applied = r.values.ingest_stats().unwrap();
        assert_eq!(applied.inserted, 2);

        // Mirror the service's mutation to get the oracle graph.
        let mut mirror = MutableGraph::from_graph(&g);
        mirror.apply(&b1).unwrap();
        let (want, _) = run_reference(
            &Graph::from_edges(&mirror.snapshot_edge_list()),
            &Bfs::new(0),
        );

        // Cold incremental answer, then a pure cache hit.
        let r1 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        assert_eq!(r1.wait().unwrap().values.levels().unwrap(), &want[..]);
        let r2 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        assert_eq!(r2.wait().unwrap().values.levels().unwrap(), &want[..]);

        // Second ingest, then the same query warm-starts from the cache.
        let mut b2 = DeltaBatch::new();
        b2.insert(5, n - 1, 2).delete(1, n - 3);
        svc.submit(RequestKind::Ingest { batch: b2.clone() })
            .unwrap()
            .wait()
            .unwrap();
        mirror.apply(&b2).unwrap();
        let (want, _) = run_reference(
            &Graph::from_edges(&mirror.snapshot_edge_list()),
            &Bfs::new(0),
        );
        let r3 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        assert_eq!(r3.wait().unwrap().values.levels().unwrap(), &want[..]);

        let stats = svc.stats();
        assert_eq!(stats.ingests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.incremental_answers, 2, "cold + warm");
        assert_eq!(stats.compactions, 0);
    }

    #[test]
    fn sssp_and_pagerank_serve_incrementally_after_ingest() {
        let g = graph();
        let svc = GraphService::new(g.clone(), quick_cfg()).unwrap();
        let mut b = DeltaBatch::new();
        b.insert(3, 77, 4).insert(9, 50, 2).delete(0, 2);
        svc.submit(RequestKind::Ingest { batch: b.clone() })
            .unwrap()
            .wait()
            .unwrap();
        let mut mirror = MutableGraph::from_graph(&g);
        mirror.apply(&b).unwrap();
        let g2 = Graph::from_edges(&mirror.snapshot_edge_list());

        let r = svc
            .submit(RequestKind::Sssp {
                source: 3,
                delta: 100,
            })
            .unwrap()
            .wait()
            .unwrap();
        let (want, _) = run_reference(&g2, &Sssp::new(3));
        assert_eq!(r.values.distances().unwrap(), &want[..]);

        let r = svc
            .submit(RequestKind::PageRank { iters: 5 })
            .unwrap()
            .wait()
            .unwrap();
        let (want, _) =
            polymer_algos::pagerank_host(&mirror, 0.85, polymer_algos::DEFAULT_PR_TOL, None);
        let err = polymer_algos::reference::max_rel_error(r.values.ranks().unwrap(), &want);
        assert!(err < 1e-6, "served PR off by {err}");
    }

    #[test]
    fn ingest_batches_are_validated_at_admission() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        let mut self_loop = DeltaBatch::new();
        self_loop.insert(4, 4, 1);
        let mut zero_w = DeltaBatch::new();
        zero_w.insert(0, 1, 0);
        let mut oob = DeltaBatch::new();
        oob.insert(0, 1 << 20, 1);
        for bad in [self_loop, zero_w, oob] {
            let err = svc
                .submit(RequestKind::Ingest { batch: bad })
                .map(|t| t.id())
                .unwrap_err();
            assert_eq!(err.code(), "invalid-config");
        }
        assert_eq!(svc.stats().submitted, 0);
        assert_eq!(svc.stats().ingests, 0);
    }

    #[test]
    fn threshold_compaction_is_counted_and_queries_survive_it() {
        let g = graph();
        let cfg = ServeConfig {
            compaction_fraction: Some(1e-4),
            ..quick_cfg()
        };
        let svc = GraphService::new(g.clone(), cfg).unwrap();
        let n = g.num_vertices() as u32;
        let mut b = DeltaBatch::new();
        for i in 0..8u32 {
            b.insert(i, n - 1 - i, 1 + i);
        }
        let r = svc
            .submit(RequestKind::Ingest { batch: b.clone() })
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.values.ingest_stats().unwrap().compacted);
        assert_eq!(svc.stats().compactions, 1);

        let mut mirror = MutableGraph::from_graph(&g).with_compaction_fraction(1e-4);
        mirror.apply(&b).unwrap();
        let (want, _) = run_reference(
            &Graph::from_edges(&mirror.snapshot_edge_list()),
            &Bfs::new(0),
        );
        let r = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        assert_eq!(r.wait().unwrap().values.levels().unwrap(), &want[..]);
    }

    #[test]
    fn coalescing_is_disabled_once_mutated() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        let mut b = DeltaBatch::new();
        b.insert(0, 99, 1);
        svc.submit(RequestKind::Ingest { batch: b })
            .unwrap()
            .wait()
            .unwrap();
        svc.pause();
        let t1 = svc.submit(RequestKind::Bfs { source: 0 }).unwrap();
        let t2 = svc.submit(RequestKind::Bfs { source: 5 }).unwrap();
        svc.resume();
        assert_eq!(t1.wait().unwrap().batched_lanes, 1);
        assert_eq!(t2.wait().unwrap().batched_lanes, 1);
        let stats = svc.stats();
        assert_eq!(stats.batches, 0, "no coalesced sweep after mutation");
        assert_eq!(stats.incremental_answers, 2);
    }

    #[test]
    fn responses_carry_request_ids_and_latency() {
        let svc = GraphService::new(graph(), quick_cfg()).unwrap();
        let t = svc.submit(RequestKind::PageRank { iters: 3 }).unwrap();
        let id = t.id();
        let r = t.wait().unwrap();
        assert_eq!(r.id, id);
        assert_eq!(r.algorithm, "PageRank");
        assert!(r.values.ranks().is_some());
        assert!(r.latency > Duration::ZERO);
        assert!(!r.deadline_missed);
    }
}
