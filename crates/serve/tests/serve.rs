//! Integration tests of the serving layer: concurrent mixed-algorithm
//! load end-to-end, and the batching conformance contract — a coalesced
//! multi-source sweep must be bit-identical to per-source runs, on both
//! backends.

use std::sync::Arc;

use polymer_algos::{run_reference, Bfs, PageRank, Sssp};
use polymer_api::Backend;
use polymer_graph::{gen, Graph};
use polymer_serve::{GraphService, RequestKind, ServeConfig};

fn graph() -> Graph {
    Graph::from_edges(&gen::rmat(8, 1 << 11, gen::RMAT_GRAPH500, 17))
}

fn cfg_on(backend: Backend) -> ServeConfig {
    ServeConfig {
        workers: 3,
        threads_per_request: 2,
        backend,
        ..ServeConfig::default()
    }
}

/// Concurrent clients submit a mix of BFS, SSSP, and PageRank; every
/// response must match the sequential oracle and carry its own id.
#[test]
fn mixed_algorithm_requests_from_concurrent_clients() {
    let g = graph();
    let bfs_want = run_reference(&g, &Bfs::new(7)).0;
    let sssp_want = run_reference(&g, &Sssp::new(11)).0;
    let svc = Arc::new(GraphService::new(g, cfg_on(Backend::Simulated)).unwrap());

    let mut clients = Vec::new();
    for round in 0..4u32 {
        let svc = Arc::clone(&svc);
        let bfs_want = bfs_want.clone();
        let sssp_want = sssp_want.clone();
        clients.push(std::thread::spawn(move || {
            let tb = svc.submit(RequestKind::Bfs { source: 7 }).unwrap();
            let ts = svc
                .submit(RequestKind::Sssp {
                    source: 11,
                    delta: 100,
                })
                .unwrap();
            let tp = svc.submit(RequestKind::PageRank { iters: 3 }).unwrap();
            let (bid, sid, pid) = (tb.id(), ts.id(), tp.id());
            let rb = tb.wait().unwrap();
            let rs = ts.wait().unwrap();
            let rp = tp.wait().unwrap();
            assert_eq!(rb.values.levels().unwrap(), &bfs_want[..], "round {round}");
            assert_eq!(
                rs.values.distances().unwrap(),
                &sssp_want[..],
                "round {round}"
            );
            assert!(rp.values.ranks().unwrap().iter().all(|r| r.is_finite()));
            assert_eq!((rb.id, rs.id, rp.id), (bid, sid, pid));
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
}

/// The conformance contract: coalesced BFS and SSSP answers are
/// bit-identical to the same requests served one at a time, on both the
/// simulated and the real-thread backend (solo runs take the backend's
/// engine path; the sweep is backend-independent host compute — all of it
/// must agree with the oracle exactly).
#[test]
fn batched_answers_are_bit_identical_to_per_source_runs_on_both_backends() {
    let g = graph();
    let bfs_sources = [0u32, 3, 100, 3, 29];
    let sssp_sources = [1u32, 64, 9];

    for backend in [Backend::Simulated, Backend::real_threads()] {
        // Per-source: serialize submissions so nothing can coalesce.
        let svc = GraphService::new(graph(), cfg_on(backend.clone())).unwrap();
        let mut solo_bfs = Vec::new();
        for &s in &bfs_sources {
            let r = svc
                .submit(RequestKind::Bfs { source: s })
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.batched_lanes, 1);
            solo_bfs.push(r.values.levels().unwrap().to_vec());
        }
        let mut solo_sssp = Vec::new();
        for &s in &sssp_sources {
            let r = svc
                .submit(RequestKind::Sssp {
                    source: s,
                    delta: 100,
                })
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.batched_lanes, 1);
            solo_sssp.push(r.values.distances().unwrap().to_vec());
        }

        // Batched: pause, enqueue everything, resume — one sweep per class.
        svc.pause();
        let bfs_tickets: Vec<_> = bfs_sources
            .iter()
            .map(|&s| svc.submit(RequestKind::Bfs { source: s }).unwrap())
            .collect();
        let sssp_tickets: Vec<_> = sssp_sources
            .iter()
            .map(|&s| {
                svc.submit(RequestKind::Sssp {
                    source: s,
                    delta: 100,
                })
                .unwrap()
            })
            .collect();
        svc.resume();

        for ((t, solo), &s) in bfs_tickets.into_iter().zip(&solo_bfs).zip(&bfs_sources) {
            let r = t.wait().unwrap();
            assert_eq!(r.batched_lanes, bfs_sources.len());
            assert_eq!(
                r.values.levels().unwrap(),
                &solo[..],
                "BFS source {s} diverged from its per-source run"
            );
            let (oracle, _) = run_reference(&g, &Bfs::new(s));
            assert_eq!(r.values.levels().unwrap(), &oracle[..]);
        }
        for ((t, solo), &s) in sssp_tickets.into_iter().zip(&solo_sssp).zip(&sssp_sources) {
            let r = t.wait().unwrap();
            assert_eq!(r.batched_lanes, sssp_sources.len());
            assert_eq!(
                r.values.distances().unwrap(),
                &solo[..],
                "SSSP source {s} diverged from its per-source run"
            );
            let (oracle, _) = run_reference(&g, &Sssp::new(s));
            assert_eq!(r.values.distances().unwrap(), &oracle[..]);
        }
        let stats = svc.stats();
        assert!(stats.batches >= 2, "both classes must have coalesced");
        assert_eq!(stats.failed, 0);
    }
}

/// PageRank answers served solo match a direct engine run (ranks are
/// float-valued, so the service must take the exact same engine path).
#[test]
fn pagerank_served_matches_direct_engine_run() {
    use polymer_api::Engine;
    use polymer_core::PolymerEngine;
    use polymer_numa::{Machine, MachineSpec};

    let g = graph();
    let prog = PageRank::new(g.num_vertices()).with_iters(4);
    let machine = Machine::new(MachineSpec::test2());
    let direct = PolymerEngine::new().run(&machine, 2, &g, &prog);

    let svc = GraphService::new(graph(), cfg_on(Backend::Simulated)).unwrap();
    let served = svc
        .submit(RequestKind::PageRank { iters: 4 })
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(served.values.ranks().unwrap(), &direct.values[..]);
    assert_eq!(served.iterations, direct.iterations);
}
