//! # polymer-graph — graph substrate for the Polymer reproduction
//!
//! Host-side graph data structures and tooling shared by every engine:
//!
//! * [`EdgeList`] — the construction-stage representation; generators and
//!   I/O produce it.
//! * [`Graph`] — immutable CSR (out-edges) + CSC (in-edges) with per-vertex
//!   degrees, exactly the topology layout of the paper's Figure 1. Engines
//!   copy it into their own NUMA placements.
//! * [`gen`] — workload generators reproducing the paper's Table 2 graph
//!   families: R-MAT (Graph500 parameters), Zipf power-law (PowerGraph's
//!   method, constant 2.0), a road-network grid (high diameter, avg degree
//!   ≈ 2.4), and uniform random graphs.
//! * [`partition`] — vertex-balanced and edge-oriented balanced partitioning
//!   (paper Section 5, "Balanced Partitioning").
//! * [`io`] — plain-text and binary edge-list readers/writers.
//! * [`datasets`] — the scaled-down named datasets used by the experiment
//!   harness, with the scale factors recorded in `EXPERIMENTS.md`.
//! * [`builder`] — the single canonicalization + CSR-assembly pipeline
//!   shared by loaders and the compaction rebuild.
//! * [`delta`] / [`mutable`] — batched edge mutations ([`DeltaBatch`]),
//!   the applied overlay ([`DeltaLog`]), and the merged live view
//!   ([`MutableGraph`]) with threshold-triggered compaction
//!   (`docs/INCREMENTAL.md`).

#![deny(unsafe_code)]

pub mod builder;
pub mod compress;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod edgelist;
pub mod gen;
pub mod io;
pub mod mutable;
pub mod partition;
pub mod stats;
pub mod types;

pub use builder::GraphBuilder;
pub use compress::{decode_list, encode_list, CompressedAdjacency, DeltaDecoder};
pub use csr::Graph;
pub use datasets::{dataset, DatasetId};
pub use delta::{AppliedBatch, BatchStats, DeltaBatch, DeltaError, DeltaLog};
pub use edgelist::EdgeList;
pub use mutable::{MergedEdges, MutableGraph, DEFAULT_COMPACTION_FRACTION};
pub use partition::{edge_balanced_ranges, vertex_balanced_ranges, PartitionStats};
pub use stats::GraphStats;
pub use types::{Edge, VId, Weight};
