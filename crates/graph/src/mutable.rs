//! A mutable view over the resident CSR: base [`Graph`] plus a
//! [`DeltaLog`] overlay, with threshold-triggered compaction.
//!
//! The base graph stays immutable (engines keep NUMA-placed copies of it);
//! mutations accumulate in per-vertex overlay lists — sorted inserts and
//! sorted tombstones over base edges — so merged adjacency iteration is an
//! O(degree) three-way merge. When the overlay grows past a configurable
//! fraction of the base edge count, [`MutableGraph::apply`] compacts:
//! the live edge set is materialized (already in canonical order) and
//! reassembled through [`GraphBuilder::assemble`], the same code path the
//! initial loaders use, so a compacted graph is bit-identical to one built
//! from scratch — the `incremental` proptest suite pins this.
//!
//! The struct tracks two monotone counters consumers key caches on:
//! `epoch` bumps on every applied batch; `generation` bumps on every
//! compaction (i.e. whenever the base CSR itself is replaced and any
//! placed or compressed copy of it is stale).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::delta::{AppliedBatch, BatchStats, DeltaBatch, DeltaError, DeltaLog};
use crate::edgelist::EdgeList;
use crate::types::{Edge, VId, Weight};

/// Default compaction threshold: compact when overlay mutations exceed this
/// fraction of the base edge count.
pub const DEFAULT_COMPACTION_FRACTION: f64 = 0.125;

/// A base CSR plus a delta overlay, presenting the merged live graph.
#[derive(Clone, Debug)]
pub struct MutableGraph {
    base: Graph,
    log: DeltaLog,
    epoch: u64,
    generation: u64,
    compaction_fraction: f64,
    compactions: usize,
}

/// Outcome of inserting one edge; `Updated` carries the replaced weight.
enum Inserted {
    New,
    Updated(Weight),
    Unchanged,
}

impl MutableGraph {
    /// Build from an edge list, canonicalizing it first (the live graph is
    /// a set of canonical edges; see `docs/INCREMENTAL.md`).
    pub fn from_edge_list(el: EdgeList) -> Self {
        let base = GraphBuilder::build_canonical(el);
        let n = base.num_vertices();
        MutableGraph {
            base,
            log: DeltaLog::new(n),
            epoch: 0,
            generation: 0,
            compaction_fraction: DEFAULT_COMPACTION_FRACTION,
            compactions: 0,
        }
    }

    /// Build from an existing graph. If the graph is already canonical its
    /// CSR is adopted unchanged (bit-identical base); otherwise the edge
    /// set is canonicalized and reassembled, which drops self-loops and
    /// collapses duplicate pairs.
    pub fn from_graph(g: &Graph) -> Self {
        let base = if graph_is_canonical(g) {
            g.clone()
        } else {
            let mut el = EdgeList::new(g.num_vertices());
            el.edges = g
                .iter_edges()
                .map(|(s, d, w)| Edge::weighted(s, d, w))
                .collect();
            GraphBuilder::build_canonical(el)
        };
        let n = base.num_vertices();
        MutableGraph {
            base,
            log: DeltaLog::new(n),
            epoch: 0,
            generation: 0,
            compaction_fraction: DEFAULT_COMPACTION_FRACTION,
            compactions: 0,
        }
    }

    /// Override the compaction threshold fraction (`f64::INFINITY` disables
    /// auto-compaction; tests use small fractions to force it).
    pub fn with_compaction_fraction(mut self, fraction: f64) -> Self {
        self.compaction_fraction = fraction;
        self
    }

    /// The immutable base CSR the overlay applies to.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The current overlay.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Monotone batch counter: bumps on every [`MutableGraph::apply`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monotone compaction counter: bumps whenever the base CSR is
    /// replaced, invalidating placed/compressed copies of it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of compactions performed.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of live edges (base minus tombstones plus overlay inserts).
    pub fn num_live_edges(&self) -> usize {
        self.base.num_edges() - self.log.tombstones + self.log.inserts
    }

    /// Live out-degree of `v`.
    pub fn live_out_degree(&self, v: VId) -> usize {
        self.base.out_degree(v) - self.log.tombstones_out(v).len() + self.log.inserts_out(v).len()
    }

    /// Live in-degree of `v`.
    pub fn live_in_degree(&self, v: VId) -> usize {
        self.base.in_degree(v) - self.log.tombstones_in(v).len() + self.log.inserts_in(v).len()
    }

    /// Weight of the live edge `(src, dst)`, or `None` if not live.
    pub fn weight(&self, src: VId, dst: VId) -> Option<Weight> {
        if let Ok(i) = self
            .log
            .inserts_out(src)
            .binary_search_by_key(&dst, |p| p.0)
        {
            return Some(self.log.inserts_out(src)[i].1);
        }
        let w = self.base_weight(src, dst)?;
        match self.log.tombstones_out(src).binary_search(&dst) {
            Ok(_) => None,
            Err(_) => Some(w),
        }
    }

    /// Merged live out-edges of `v` as `(dst, weight)`, sorted by `dst`.
    pub fn out_edges(&self, v: VId) -> MergedEdges<'_> {
        MergedEdges::new(
            self.base.out_neighbors(v),
            self.base.out_weights(v),
            self.log.tombstones_out(v),
            self.log.inserts_out(v),
        )
    }

    /// Merged live in-edges of `v` as `(src, weight)`, sorted by `src`.
    pub fn in_edges(&self, v: VId) -> MergedEdges<'_> {
        MergedEdges::new(
            self.base.in_neighbors(v),
            self.base.in_weights(v),
            self.log.tombstones_in(v),
            self.log.inserts_in(v),
        )
    }

    /// The live edge set as a canonical [`EdgeList`] (sorted, no
    /// duplicates, no self-loops) — what a from-scratch build would load.
    pub fn snapshot_edge_list(&self) -> EdgeList {
        let mut el = EdgeList::new(self.num_vertices());
        el.edges.reserve(self.num_live_edges());
        for v in 0..self.num_vertices() as VId {
            for (d, w) in self.out_edges(v) {
                el.edges.push(Edge::weighted(v, d, w));
            }
        }
        el
    }

    /// Validate and apply one batch: deletes first, then inserts, with
    /// within-batch duplicates collapsed ([`DeltaBatch::normalize`]). On
    /// success returns the effective mutations (repair engines seed from
    /// them) and bumps the epoch; if the overlay crossed the compaction
    /// threshold the base is rebuilt and the generation bumps too.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<AppliedBatch, DeltaError> {
        batch.validate(self.num_vertices())?;
        let mut b = batch.clone();
        b.normalize();
        self.epoch += 1;
        let mut stats = BatchStats::default();
        let mut deletes = Vec::new();
        for &(s, d) in &b.deletes {
            match self.remove_live(s, d) {
                Some(w) => {
                    stats.deleted += 1;
                    deletes.push(Edge::weighted(s, d, w));
                }
                None => stats.missing += 1,
            }
        }
        let mut inserts = Vec::with_capacity(b.inserts.len());
        let mut reweighted = Vec::new();
        for e in &b.inserts {
            match self.insert_live(e.src, e.dst, e.weight) {
                Inserted::New => {
                    stats.inserted += 1;
                    inserts.push(*e);
                }
                Inserted::Updated(old) => {
                    stats.updated += 1;
                    inserts.push(*e);
                    reweighted.push(Edge::weighted(e.src, e.dst, old));
                }
                Inserted::Unchanged => stats.updated += 1,
            }
        }
        stats.compacted = self.maybe_compact();
        Ok(AppliedBatch {
            epoch: self.epoch,
            inserts,
            deletes,
            reweighted,
            stats,
        })
    }

    /// Rebuild the base CSR from the live edge set through the shared
    /// [`GraphBuilder`] path, clear the overlay, and bump the generation.
    /// No-op when the overlay is empty.
    pub fn compact(&mut self) {
        if self.log.is_empty() {
            return;
        }
        let el = self.snapshot_edge_list();
        debug_assert!(GraphBuilder::is_canonical(&el));
        self.base = GraphBuilder::assemble(&el);
        self.log = DeltaLog::new(self.base.num_vertices());
        self.generation += 1;
        self.compactions += 1;
    }

    fn maybe_compact(&mut self) -> bool {
        let pending = self.log.inserts + self.log.tombstones;
        if pending == 0 {
            return false;
        }
        let threshold = (self.base.num_edges() as f64 * self.compaction_fraction).max(1.0);
        if (pending as f64) > threshold {
            self.compact();
            true
        } else {
            false
        }
    }

    fn base_weight(&self, src: VId, dst: VId) -> Option<Weight> {
        let i = self.base.out_neighbors(src).binary_search(&dst).ok()?;
        Some(self.base.out_weights(src)[i])
    }

    fn remove_live(&mut self, s: VId, d: VId) -> Option<Weight> {
        if let Ok(i) = self.log.ins_out[s as usize].binary_search_by_key(&d, |p| p.0) {
            let w = self.log.ins_out[s as usize][i].1;
            self.log.ins_out[s as usize].remove(i);
            let j = self.log.ins_in[d as usize]
                .binary_search_by_key(&s, |p| p.0)
                .expect("overlay in/out mirrors desynced");
            self.log.ins_in[d as usize].remove(j);
            self.log.inserts -= 1;
            return Some(w);
        }
        let w = self.base_weight(s, d)?;
        match self.log.del_out[s as usize].binary_search(&d) {
            Ok(_) => None, // already tombstoned: not live
            Err(pos) => {
                self.log.del_out[s as usize].insert(pos, d);
                let p = self.log.del_in[d as usize]
                    .binary_search(&s)
                    .expect_err("tombstone in/out mirrors desynced");
                self.log.del_in[d as usize].insert(p, s);
                self.log.tombstones += 1;
                Some(w)
            }
        }
    }

    fn insert_live(&mut self, s: VId, d: VId, w: Weight) -> Inserted {
        if let Ok(i) = self.log.ins_out[s as usize].binary_search_by_key(&d, |p| p.0) {
            let old = self.log.ins_out[s as usize][i].1;
            if old == w {
                return Inserted::Unchanged;
            }
            self.log.ins_out[s as usize][i].1 = w;
            let j = self.log.ins_in[d as usize]
                .binary_search_by_key(&s, |p| p.0)
                .expect("overlay in/out mirrors desynced");
            self.log.ins_in[d as usize][j].1 = w;
            return Inserted::Updated(old);
        }
        match self.base_weight(s, d) {
            Some(bw) => match self.log.del_out[s as usize].binary_search(&d) {
                // Tombstoned base edge re-inserted: the pair was dead, so
                // this is a fresh overlay insert (the tombstone stays —
                // the base slot remains masked).
                Ok(_) => {
                    self.add_overlay(s, d, w);
                    Inserted::New
                }
                Err(pos) => {
                    if bw == w {
                        // Idempotent upsert: already live with this weight.
                        return Inserted::Unchanged;
                    }
                    // Live base edge re-weighted: tombstone the base slot
                    // and carry the new weight in the overlay, so weight
                    // updates and fresh inserts look identical downstream.
                    self.log.del_out[s as usize].insert(pos, d);
                    let p = self.log.del_in[d as usize]
                        .binary_search(&s)
                        .expect_err("tombstone in/out mirrors desynced");
                    self.log.del_in[d as usize].insert(p, s);
                    self.log.tombstones += 1;
                    self.add_overlay(s, d, w);
                    Inserted::Updated(bw)
                }
            },
            None => {
                self.add_overlay(s, d, w);
                Inserted::New
            }
        }
    }

    fn add_overlay(&mut self, s: VId, d: VId, w: Weight) {
        let pos = self.log.ins_out[s as usize]
            .binary_search_by_key(&d, |p| p.0)
            .expect_err("overlay insert already present");
        self.log.ins_out[s as usize].insert(pos, (d, w));
        let p = self.log.ins_in[d as usize]
            .binary_search_by_key(&s, |p| p.0)
            .expect_err("overlay insert already present");
        self.log.ins_in[d as usize].insert(p, (s, w));
        self.log.inserts += 1;
    }
}

/// Whether every adjacency list of `g` is strictly increasing with no
/// self-loops — i.e. `g` was built from a canonical edge list.
fn graph_is_canonical(g: &Graph) -> bool {
    (0..g.num_vertices() as VId).all(|v| {
        let ns = g.out_neighbors(v);
        ns.iter().all(|&d| d != v) && ns.windows(2).all(|w| w[0] < w[1])
    })
}

/// Sorted three-way merge over one vertex's adjacency: base entries minus
/// tombstones, interleaved with overlay inserts. Yields `(neighbor,
/// weight)` in strictly increasing neighbor order.
pub struct MergedEdges<'a> {
    base_ids: &'a [VId],
    base_ws: &'a [Weight],
    dead: &'a [VId],
    ins: &'a [(VId, Weight)],
    bi: usize,
    di: usize,
    ii: usize,
}

impl<'a> MergedEdges<'a> {
    fn new(
        base_ids: &'a [VId],
        base_ws: &'a [Weight],
        dead: &'a [VId],
        ins: &'a [(VId, Weight)],
    ) -> Self {
        MergedEdges {
            base_ids,
            base_ws,
            dead,
            ins,
            bi: 0,
            di: 0,
            ii: 0,
        }
    }
}

impl Iterator for MergedEdges<'_> {
    type Item = (VId, Weight);

    fn next(&mut self) -> Option<(VId, Weight)> {
        // Skip tombstoned base entries (both lists sorted; every tombstone
        // names an existing base entry).
        while self.bi < self.base_ids.len()
            && self.di < self.dead.len()
            && self.base_ids[self.bi] >= self.dead[self.di]
        {
            if self.base_ids[self.bi] == self.dead[self.di] {
                self.bi += 1;
            }
            self.di += 1;
        }
        let b = (self.bi < self.base_ids.len()).then(|| self.base_ids[self.bi]);
        let i = (self.ii < self.ins.len()).then(|| self.ins[self.ii].0);
        match (b, i) {
            (None, None) => None,
            (Some(_), None) => {
                let out = (self.base_ids[self.bi], self.base_ws[self.bi]);
                self.bi += 1;
                Some(out)
            }
            (None, Some(_)) => {
                let out = self.ins[self.ii];
                self.ii += 1;
                Some(out)
            }
            (Some(bv), Some(iv)) => {
                if bv < iv {
                    let out = (self.base_ids[self.bi], self.base_ws[self.bi]);
                    self.bi += 1;
                    Some(out)
                } else {
                    // Equal cannot happen (a live base entry is never
                    // shadowed by an overlay insert); prefer the overlay
                    // defensively.
                    let out = self.ins[self.ii];
                    self.ii += 1;
                    if bv == iv {
                        self.bi += 1;
                    }
                    Some(out)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MutableGraph {
        // 0 -> 1 -> 2 -> 3, 0 -> 2 (weights = 10*src + dst)
        let mut el = EdgeList::new(5);
        for (s, d) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
            el.push(Edge::weighted(s, d, 10 * s + d));
        }
        MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY)
    }

    #[test]
    fn insert_delete_update_roundtrip() {
        let mut g = small();
        assert_eq!(g.num_live_edges(), 4);
        let mut b = DeltaBatch::new();
        b.insert(3, 4, 34)
            .delete(0, 2)
            .insert(1, 2, 99)
            .delete(4, 0);
        let applied = g.apply(&b).unwrap();
        assert_eq!(applied.stats.inserted, 1); // (3,4)
        assert_eq!(applied.stats.updated, 1); // (1,2) reweighted
        assert_eq!(applied.stats.deleted, 1); // (0,2)
        assert_eq!(applied.stats.missing, 1); // (4,0) never existed
        assert_eq!(applied.reweighted, vec![Edge::weighted(1, 2, 12)]);
        assert_eq!(g.num_live_edges(), 4);
        assert_eq!(g.weight(1, 2), Some(99));
        assert_eq!(g.weight(0, 2), None);
        assert_eq!(g.weight(3, 4), Some(34));
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 1)]);
        let in2: Vec<_> = g.in_edges(2).collect();
        assert_eq!(in2, vec![(1, 99)]);
        assert_eq!(g.live_out_degree(0), 1);
        assert_eq!(g.live_in_degree(2), 1);
        assert_eq!(g.epoch(), 1);
        assert_eq!(g.generation(), 0);
    }

    #[test]
    fn delete_then_reinsert_is_new() {
        let mut g = small();
        let mut b = DeltaBatch::new();
        b.delete(0, 1);
        g.apply(&b).unwrap();
        assert_eq!(g.weight(0, 1), None);
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 77);
        let applied = g.apply(&b).unwrap();
        assert_eq!(applied.stats.inserted, 1);
        assert_eq!(g.weight(0, 1), Some(77));
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 77), (2, 2)]);
    }

    #[test]
    fn idempotent_upsert_leaves_log_empty() {
        let mut g = small();
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 1); // weight already 1
        let applied = g.apply(&b).unwrap();
        assert_eq!(applied.stats.updated, 1);
        assert!(applied.is_noop(), "idempotent upsert changes nothing");
        assert!(g.log().is_empty());
    }

    #[test]
    fn compaction_matches_scratch_build() {
        let mut g = small();
        let mut b = DeltaBatch::new();
        b.insert(4, 0, 40).delete(1, 2).insert(0, 3, 3);
        g.apply(&b).unwrap();
        let snapshot = g.snapshot_edge_list();
        g.compact();
        assert_eq!(g.generation(), 1);
        assert!(g.log().is_empty());
        assert_eq!(*g.base(), GraphBuilder::build_canonical(snapshot));
        // Live view unchanged by compaction.
        assert_eq!(g.weight(4, 0), Some(40));
        assert_eq!(g.weight(1, 2), None);
    }

    #[test]
    fn threshold_triggers_auto_compaction() {
        let mut el = EdgeList::new(8);
        for v in 0..7 {
            el.push(Edge::new(v, v + 1));
        }
        let mut g = MutableGraph::from_edge_list(el).with_compaction_fraction(0.25);
        let mut b = DeltaBatch::new();
        b.insert(7, 0, 1).insert(0, 7, 1).insert(2, 0, 1);
        let applied = g.apply(&b).unwrap();
        // 3 overlay edges > 0.25 * 7 → compacted.
        assert!(applied.stats.compacted);
        assert_eq!(g.generation(), 1);
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.num_live_edges(), 10);
    }

    #[test]
    fn from_graph_adopts_canonical_base() {
        let el = EdgeList::from_pairs(4, [(0, 1), (0, 2), (2, 3)]);
        let g = Graph::from_edges(&el);
        let mg = MutableGraph::from_graph(&g);
        assert_eq!(*mg.base(), g);
        // Non-canonical input (duplicate + self-loop) gets canonicalized.
        let el2 = EdgeList::from_pairs(4, [(0, 1), (1, 1), (0, 1), (2, 3)]);
        let g2 = Graph::from_edges(&el2);
        let mg2 = MutableGraph::from_graph(&g2);
        assert_eq!(mg2.num_live_edges(), 2);
    }

    #[test]
    fn empty_batch_bumps_epoch_only() {
        let mut g = small();
        let applied = g.apply(&DeltaBatch::new()).unwrap();
        assert!(applied.is_noop());
        assert_eq!(g.epoch(), 1);
        assert_eq!(g.num_live_edges(), 4);
    }
}
