//! Edge-list I/O: a human-readable text format and a compact binary format.
//!
//! Text format: one `src dst [weight]` triple per line; blank lines and lines
//! starting with `#` or `%` are ignored (SNAP/DIMACS-style). Binary format:
//! a magic header, vertex/edge counts, then `(u32 src, u32 dst, u32 weight)`
//! triples in little-endian order.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::types::{Edge, VId};

const MAGIC: &[u8; 8] = b"PLYMRGR1";

/// Parse the text edge-list format from a reader.
pub fn read_text(r: impl Read) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_v: u64 = 0;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = |m: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {m}: {t:?}", lineno + 1),
            )
        };
        let src: VId = it
            .next()
            .ok_or_else(|| bad("missing source"))?
            .parse()
            .map_err(|_| bad("bad source"))?;
        let dst: VId = it
            .next()
            .ok_or_else(|| bad("missing target"))?
            .parse()
            .map_err(|_| bad("bad target"))?;
        let weight = match it.next() {
            Some(w) => w.parse().map_err(|_| bad("bad weight"))?,
            None => 1,
        };
        max_v = max_v.max(src as u64).max(dst as u64);
        edges.push(Edge { src, dst, weight });
    }
    let num_vertices = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    Ok(EdgeList {
        num_vertices,
        edges,
    })
}

/// Write the text format.
pub fn write_text(el: &EdgeList, w: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# polymer edge list: {} vertices, {} edges", el.num_vertices, el.num_edges())?;
    for e in &el.edges {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()
}

/// Read the binary format.
pub fn read_binary(mut r: impl Read) -> io::Result<EdgeList> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a polymer binary edge list (bad magic)",
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(m);
    let mut rec = [0u8; 12];
    for _ in 0..m {
        r.read_exact(&mut rec)?;
        let src = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let dst = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let weight = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        if src as usize >= n || dst as usize >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge ({src}, {dst}) out of range for {n} vertices"),
            ));
        }
        edges.push(Edge { src, dst, weight });
    }
    Ok(EdgeList {
        num_vertices: n,
        edges,
    })
}

/// Write the binary format.
pub fn write_binary(el: &EdgeList, w: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(el.num_vertices as u64).to_le_bytes())?;
    w.write_all(&(el.num_edges() as u64).to_le_bytes())?;
    for e in &el.edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()
}

/// Load an edge list from a path, choosing the format by extension
/// (`.bin` → binary, anything else → text).
pub fn load(path: impl AsRef<Path>) -> io::Result<EdgeList> {
    let path = path.as_ref();
    let f = File::open(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        read_binary(f)
    } else {
        read_text(f)
    }
}

/// Save an edge list to a path, choosing the format by extension.
pub fn save(el: &EdgeList, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let f = File::create(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        write_binary(el, f)
    } else {
        write_text(el, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList {
            num_vertices: 5,
            edges: vec![
                Edge::weighted(0, 1, 10),
                Edge::weighted(1, 2, 20),
                Edge::weighted(4, 0, 1),
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_text(&el, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn text_parses_comments_defaults_and_errors() {
        let ok = read_text("# comment\n% other\n\n0 1\n2 3 7\n".as_bytes()).unwrap();
        assert_eq!(ok.num_vertices, 4);
        assert_eq!(ok.edges[0].weight, 1);
        assert_eq!(ok.edges[1].weight, 7);

        let err = read_text("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_text("a b\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad source"));
        let err = read_text("0 1 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad weight"));
    }

    #[test]
    fn binary_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_garbage() {
        let err = read_binary(&b"NOTMAGIC"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        // Truncated file.
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_edges() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir();
        let el = sample();
        for name in ["polymer_io_test.txt", "polymer_io_test.bin"] {
            let p = dir.join(name);
            save(&el, &p).unwrap();
            let back = load(&p).unwrap();
            assert_eq!(back, el);
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn empty_text_gives_empty_list() {
        let el = read_text("# nothing\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 0);
        assert_eq!(el.num_edges(), 0);
    }
}
