//! Edge-list I/O: a human-readable text format and a compact binary format.
//!
//! Text format: one `src dst [weight]` triple per line; blank lines and lines
//! starting with `#` or `%` are ignored (SNAP/DIMACS-style). Binary format:
//! a magic header, vertex/edge counts, then `(u32 src, u32 dst, u32 weight)`
//! triples in little-endian order.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::types::{Edge, VId};

const MAGIC: &[u8; 8] = b"PLYMRGR1";

/// Parse the text edge-list format from a reader.
pub fn read_text(r: impl Read) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_v: u64 = 0;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = |m: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {m}: {t:?}", lineno + 1),
            )
        };
        let src: VId = it
            .next()
            .ok_or_else(|| bad("missing source"))?
            .parse()
            .map_err(|_| bad("bad source"))?;
        let dst: VId = it
            .next()
            .ok_or_else(|| bad("missing target"))?
            .parse()
            .map_err(|_| bad("bad target"))?;
        let weight = match it.next() {
            Some(w) => w.parse().map_err(|_| bad("bad weight"))?,
            None => 1,
        };
        max_v = max_v.max(src as u64).max(dst as u64);
        edges.push(Edge { src, dst, weight });
    }
    let num_vertices = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    Ok(EdgeList {
        num_vertices,
        edges,
    })
}

/// Write the text format.
pub fn write_text(el: &EdgeList, w: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# polymer edge list: {} vertices, {} edges",
        el.num_vertices,
        el.num_edges()
    )?;
    for e in &el.edges {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()
}

/// Preallocation ceiling for binary edge reads: a forged header claiming
/// trillions of edges must not turn into a giant `Vec::with_capacity` before
/// the stream proves it actually holds that many records.
const PREALLOC_EDGE_CAP: usize = 1 << 20;

/// Read the binary format.
///
/// Header counts are validated before anything is allocated: the vertex
/// count must fit the 32-bit id space, and the edge count only seeds a
/// capped preallocation — a header claiming more edges than the stream holds
/// ends in `UnexpectedEof` after reading what is there, never in an
/// out-of-memory abort. Use [`read_binary_sized`] when the source's byte
/// length is known to reject inconsistent headers up front.
pub fn read_binary(r: impl Read) -> io::Result<EdgeList> {
    read_binary_impl(r, None)
}

/// Like [`read_binary`] for sources of known byte length (a file, a slice):
/// a header whose edge count is inconsistent with `byte_len` is rejected
/// before any edge data is read.
pub fn read_binary_sized(r: impl Read, byte_len: u64) -> io::Result<EdgeList> {
    read_binary_impl(r, Some(byte_len))
}

fn read_binary_impl(mut r: impl Read, byte_len: Option<u64>) -> io::Result<EdgeList> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a polymer binary edge list (bad magic)",
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8);
    if n > u32::MAX as u64 + 1 {
        return Err(bad(format!("vertex count {n} exceeds the 32-bit id space")));
    }
    if let Some(len) = byte_len {
        // Header (8 magic + 8 n + 8 m) plus 12 bytes per edge.
        let expected = m.checked_mul(12).and_then(|b| b.checked_add(24));
        if expected != Some(len) {
            return Err(bad(format!(
                "edge count {m} inconsistent with byte length {len}"
            )));
        }
    }
    let n = n as usize;
    let mut edges = Vec::with_capacity((m as usize).min(PREALLOC_EDGE_CAP));
    let mut rec = [0u8; 12];
    for _ in 0..m {
        r.read_exact(&mut rec)?;
        let src = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let dst = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let weight = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        if src as usize >= n || dst as usize >= n {
            return Err(bad(format!(
                "edge ({src}, {dst}) out of range for {n} vertices"
            )));
        }
        edges.push(Edge { src, dst, weight });
    }
    Ok(EdgeList {
        num_vertices: n,
        edges,
    })
}

/// Write the binary format.
pub fn write_binary(el: &EdgeList, w: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(el.num_vertices as u64).to_le_bytes())?;
    w.write_all(&(el.num_edges() as u64).to_le_bytes())?;
    for e in &el.edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()
}

/// Load an edge list from a path, choosing the format by extension
/// (`.bin` → binary, anything else → text).
pub fn load(path: impl AsRef<Path>) -> io::Result<EdgeList> {
    let path = path.as_ref();
    let f = File::open(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        // The file length is known, so an inconsistent header is rejected
        // before any edge data is read.
        let len = f.metadata()?.len();
        read_binary_sized(f, len)
    } else {
        read_text(f)
    }
}

/// Save an edge list to a path, choosing the format by extension.
pub fn save(el: &EdgeList, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let f = File::create(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        write_binary(el, f)
    } else {
        write_text(el, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList {
            num_vertices: 5,
            edges: vec![
                Edge::weighted(0, 1, 10),
                Edge::weighted(1, 2, 20),
                Edge::weighted(4, 0, 1),
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_text(&el, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn text_parses_comments_defaults_and_errors() {
        let ok = read_text("# comment\n% other\n\n0 1\n2 3 7\n".as_bytes()).unwrap();
        assert_eq!(ok.num_vertices, 4);
        assert_eq!(ok.edges[0].weight, 1);
        assert_eq!(ok.edges[1].weight, 7);

        let err = read_text("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_text("a b\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad source"));
        let err = read_text("0 1 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad weight"));
    }

    #[test]
    fn binary_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_garbage() {
        let err = read_binary(&b"NOTMAGIC"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        // Truncated file.
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_edges() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn forged_huge_edge_count_does_not_preallocate() {
        // Header claims ~10^12 edges with no data behind it: the reader must
        // fail with a clean EOF (after its capped preallocation), not abort
        // trying to reserve terabytes.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&100u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // With a known byte length the inconsistency is caught up front.
        let err = read_binary_sized(&buf[..], buf.len() as u64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn vertex_count_beyond_u32_id_space_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(1u64 << 33).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("32-bit"));
    }

    #[test]
    fn sized_read_accepts_exact_and_rejects_mismatched_lengths() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary_sized(&buf[..], buf.len() as u64).unwrap();
        assert_eq!(back, el);
        let err = read_binary_sized(&buf[..], buf.len() as u64 - 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn injected_short_read_surfaces_as_clean_io_error() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let plan = polymer_faults::FaultPlan::new().short_read_after(30);
        let r = polymer_faults::ShortReader::from_plan(&buf[..], &plan);
        let err = read_binary(r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn load_rejects_truncated_binary_file() {
        let dir = std::env::temp_dir();
        let p = dir.join("polymer_io_truncated.bin");
        save(&sample(), &p).unwrap();
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 5]).unwrap();
        let err = load(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir();
        let el = sample();
        for name in ["polymer_io_test.txt", "polymer_io_test.bin"] {
            let p = dir.join(name);
            save(&el, &p).unwrap();
            let back = load(&p).unwrap();
            assert_eq!(back, el);
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn empty_text_gives_empty_list() {
        let el = read_text("# nothing\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices, 0);
        assert_eq!(el.num_edges(), 0);
    }
}
