//! The single shared graph-construction pipeline: canonicalization, degree
//! counting, and CSR/CSC assembly.
//!
//! Before this module existed the repo had two construction paths that could
//! drift: [`crate::Graph::from_edges`] (counting-sort assembly used by every
//! loader) and [`crate::EdgeList::dedup`] (canonicalization used by
//! `symmetrize`). Extracting them here surfaced one real inconsistency:
//! `dedup` sorted with `sort_unstable_by_key` while documenting that the
//! *first* weight among duplicate `(src, dst)` pairs survives — an unstable
//! sort makes the survivor arbitrary. [`GraphBuilder::canonicalize`] uses a
//! stable sort so the documented first-in-input weight genuinely wins, and
//! both the initial loaders and the [`crate::MutableGraph`] compaction
//! rebuild go through the same code, so they can never disagree again.

use crate::csr::Graph;
use crate::edgelist::EdgeList;
use crate::types::Edge;

/// Shared construction pipeline for every path that turns edges into a
/// [`Graph`]: initial loaders ([`Graph::from_edges`]), symmetrization
/// ([`EdgeList::dedup`] / [`EdgeList::symmetrize`]), and the
/// [`crate::MutableGraph`] compaction rebuild.
pub struct GraphBuilder;

impl GraphBuilder {
    /// Canonicalize an edge list in place: drop self-loops, sort by
    /// `(src, dst)`, and collapse duplicate pairs keeping the first-in-input
    /// weight. The sort is stable, so "first" means genuinely first in the
    /// original order — the former `sort_unstable_by_key` in
    /// `EdgeList::dedup` left the surviving weight arbitrary among
    /// duplicates.
    pub fn canonicalize(edges: &mut Vec<Edge>) {
        edges.retain(|e| e.src != e.dst);
        edges.sort_by_key(|e| ((e.src as u64) << 32) | e.dst as u64);
        edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Whether `el` is in canonical form: no self-loops, strictly increasing
    /// `(src, dst)` keys (sorted and duplicate-free).
    pub fn is_canonical(el: &EdgeList) -> bool {
        el.edges.iter().all(|e| e.src != e.dst)
            && el.edges.windows(2).all(|w| key(&w[0]) < key(&w[1]))
    }

    /// Counting-sort CSR+CSC assembly: O(V + E), deterministic, preserving
    /// input edge order within each adjacency list. This is the body that
    /// used to live in `Graph::from_edges`; that constructor now delegates
    /// here, as does the compaction rebuild.
    pub fn assemble(el: &EdgeList) -> Graph {
        let n = el.num_vertices;
        let m = el.edges.len();

        let mut out_off = vec![0usize; n + 1];
        let mut in_off = vec![0usize; n + 1];
        for e in &el.edges {
            out_off[e.src as usize + 1] += 1;
            in_off[e.dst as usize + 1] += 1;
        }
        for v in 0..n {
            out_off[v + 1] += out_off[v];
            in_off[v + 1] += in_off[v];
        }

        let mut out_dst = vec![0; m];
        let mut out_w = vec![0; m];
        let mut in_src = vec![0; m];
        let mut in_w = vec![0; m];
        let mut out_cur = out_off.clone();
        let mut in_cur = in_off.clone();
        for e in &el.edges {
            let o = out_cur[e.src as usize];
            out_dst[o] = e.dst;
            out_w[o] = e.weight;
            out_cur[e.src as usize] += 1;
            let i = in_cur[e.dst as usize];
            in_src[i] = e.src;
            in_w[i] = e.weight;
            in_cur[e.dst as usize] += 1;
        }

        Graph::from_parts(n, m, out_off, out_dst, out_w, in_off, in_src, in_w)
    }

    /// Canonicalize a copy of `el` and assemble. This is the reference
    /// "build from scratch" a compaction rebuild must match bit-for-bit
    /// (the `incremental` proptest suite asserts exactly that).
    pub fn build_canonical(mut el: EdgeList) -> Graph {
        Self::canonicalize(&mut el.edges);
        Self::assemble(&el)
    }
}

#[inline]
fn key(e: &Edge) -> u64 {
    ((e.src as u64) << 32) | e.dst as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_keeps_first_in_input_weight() {
        // Many duplicates of the same pair with distinct weights: the
        // stable sort must keep weight 7 (the first one pushed), no matter
        // how many decoys surround it.
        let mut edges = Vec::new();
        edges.push(Edge::weighted(0, 1, 7));
        for w in 0..64 {
            edges.push(Edge::weighted(0, 1, 100 + w));
            edges.push(Edge::weighted(1, 2, w));
        }
        GraphBuilder::canonicalize(&mut edges);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], Edge::weighted(0, 1, 7));
        assert_eq!(edges[1], Edge::weighted(1, 2, 0));
    }

    #[test]
    fn canonical_form_detected() {
        let mut el = EdgeList::from_pairs(4, [(2, 0), (0, 1), (1, 1), (0, 1)]);
        assert!(!GraphBuilder::is_canonical(&el));
        GraphBuilder::canonicalize(&mut el.edges);
        assert!(GraphBuilder::is_canonical(&el));
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn assemble_matches_from_edges() {
        let el = EdgeList::from_pairs(5, [(0, 2), (3, 1), (0, 4), (2, 2), (4, 0)]);
        assert_eq!(GraphBuilder::assemble(&el), Graph::from_edges(&el));
    }

    #[test]
    fn build_canonical_is_idempotent() {
        let el = EdgeList::from_pairs(4, [(1, 0), (0, 1), (1, 0), (2, 2)]);
        let once = GraphBuilder::build_canonical(el.clone());
        let mut canon = el;
        GraphBuilder::canonicalize(&mut canon.edges);
        let twice = GraphBuilder::build_canonical(canon);
        assert_eq!(once, twice);
    }
}
