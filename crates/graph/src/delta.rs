//! Batched, validated edge mutations and the delta log that overlays them
//! on a resident CSR.
//!
//! A [`DeltaBatch`] is the unit of ingest: a set of edge inserts and deletes
//! built by a caller, validated against the target graph's vertex range,
//! then applied atomically by [`crate::MutableGraph::apply`]. The applied
//! state accumulates in a [`DeltaLog`]: per-vertex sorted insert lists plus
//! per-vertex sorted tombstone lists over the base CSR, mirrored for both
//! edge directions so merged out- and in-adjacency iteration stays O(degree).
//!
//! Semantics (documented in `docs/INCREMENTAL.md`):
//!
//! * The live graph is a *set* of canonical edges — no self-loops, one
//!   weight per `(src, dst)` pair. Inserting an edge that is already live
//!   updates its weight; deleting an absent edge is counted, not an error.
//! * Within one batch, deletes are applied before inserts and duplicates
//!   collapse (inserts keep the last weight — latest write wins; deletes
//!   dedup). A pair both deleted and inserted in one batch therefore ends
//!   up live with the inserted weight.
//! * Self-loop inserts and out-of-range endpoints are rejected up front
//!   ([`DeltaError`]); the batch is then all-or-nothing.

use std::fmt;

use crate::types::{Edge, VId, Weight};

/// Validation failure for a [`DeltaBatch`]; the batch is rejected as a whole
/// and the target graph is left untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint is `>= num_vertices` of the target graph.
    EndpointOutOfRange {
        /// Edge source.
        src: VId,
        /// Edge destination.
        dst: VId,
        /// Vertex count of the target graph.
        num_vertices: usize,
    },
    /// A self-loop insert; the canonical edge set excludes self-loops.
    SelfLoopInsert {
        /// The offending vertex.
        vertex: VId,
    },
    /// A zero-weight insert. Live weights are strictly positive (the
    /// generators draw from `(0, 100]`), and the incremental SSSP repair
    /// proof relies on it: a zero-weight cycle would let a deleted
    /// shortest-path edge hide behind an equal-cost support chain that
    /// never terminates the suspect cascade.
    ZeroWeightInsert {
        /// Edge source.
        src: VId,
        /// Edge destination.
        dst: VId,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::EndpointOutOfRange {
                src,
                dst,
                num_vertices,
            } => write!(
                f,
                "edge ({src}, {dst}) out of range for {num_vertices} vertices"
            ),
            DeltaError::SelfLoopInsert { vertex } => {
                write!(f, "self-loop insert ({vertex}, {vertex}) rejected")
            }
            DeltaError::ZeroWeightInsert { src, dst } => {
                write!(f, "zero-weight insert ({src}, {dst}) rejected")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch of edge mutations awaiting application to a
/// [`crate::MutableGraph`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Edges to insert (or re-weight, when the pair is already live).
    pub inserts: Vec<Edge>,
    /// `(src, dst)` pairs to delete.
    pub deletes: Vec<(VId, VId)>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Queue an insert of `(src, dst)` with weight `w`.
    pub fn insert(&mut self, src: VId, dst: VId, w: Weight) -> &mut Self {
        self.inserts.push(Edge::weighted(src, dst, w));
        self
    }

    /// Queue a delete of `(src, dst)`.
    pub fn delete(&mut self, src: VId, dst: VId) -> &mut Self {
        self.deletes.push((src, dst));
        self
    }

    /// Total queued mutations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch queues nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Validate every mutation against an `n`-vertex graph: endpoints in
    /// range, no self-loop inserts, strictly positive insert weights.
    pub fn validate(&self, n: usize) -> Result<(), DeltaError> {
        for e in &self.inserts {
            if e.src == e.dst {
                return Err(DeltaError::SelfLoopInsert { vertex: e.src });
            }
            if e.weight == 0 {
                return Err(DeltaError::ZeroWeightInsert {
                    src: e.src,
                    dst: e.dst,
                });
            }
            if e.src as usize >= n || e.dst as usize >= n {
                return Err(DeltaError::EndpointOutOfRange {
                    src: e.src,
                    dst: e.dst,
                    num_vertices: n,
                });
            }
        }
        for &(s, d) in &self.deletes {
            if s as usize >= n || d as usize >= n {
                return Err(DeltaError::EndpointOutOfRange {
                    src: s,
                    dst: d,
                    num_vertices: n,
                });
            }
        }
        Ok(())
    }

    /// Collapse duplicates: deletes dedup by pair; inserts dedup by pair
    /// keeping the *last* weight (latest write wins within a batch — the
    /// opposite of load-time canonicalization, where the first of a
    /// duplicated input edge wins; a batch is a sequence of commands, not a
    /// multiset of edges). Both lists come out sorted by `(src, dst)`.
    pub fn normalize(&mut self) {
        self.deletes.sort_unstable();
        self.deletes.dedup();
        // Stable sort + keep-last: reverse first so dedup's keep-first
        // retains the final queued weight for each pair.
        self.inserts.reverse();
        self.inserts
            .sort_by_key(|e| ((e.src as u64) << 32) | e.dst as u64);
        self.inserts.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Make the batch symmetric: every insert/delete also queues its
    /// reverse. Used for the undirected (symmetrized) graphs consumed by
    /// connected components, which represent one undirected edge as a
    /// directed pair.
    pub fn symmetrize(&mut self) {
        let rev: Vec<Edge> = self.inserts.iter().map(|e| e.reversed()).collect();
        self.inserts.extend(rev);
        let rev: Vec<(VId, VId)> = self.deletes.iter().map(|&(s, d)| (d, s)).collect();
        self.deletes.extend(rev);
    }
}

/// The accumulated overlay of applied batches on top of a base CSR:
/// per-vertex sorted insert lists and tombstone lists, mirrored for the out
/// (CSR) and in (CSC) directions.
#[derive(Clone, Debug, Default)]
pub struct DeltaLog {
    /// Overlay inserts per source vertex, sorted by destination.
    pub(crate) ins_out: Vec<Vec<(VId, Weight)>>,
    /// Overlay inserts per destination vertex, sorted by source.
    pub(crate) ins_in: Vec<Vec<(VId, Weight)>>,
    /// Tombstoned base out-edges per source vertex, sorted by destination.
    pub(crate) del_out: Vec<Vec<VId>>,
    /// Tombstoned base in-edges per destination vertex, sorted by source.
    pub(crate) del_in: Vec<Vec<VId>>,
    /// Total overlay-insert edges.
    pub(crate) inserts: usize,
    /// Total tombstoned base edges.
    pub(crate) tombstones: usize,
}

impl DeltaLog {
    /// An empty log over `n` vertices.
    pub(crate) fn new(n: usize) -> Self {
        DeltaLog {
            ins_out: vec![Vec::new(); n],
            ins_in: vec![Vec::new(); n],
            del_out: vec![Vec::new(); n],
            del_in: vec![Vec::new(); n],
            inserts: 0,
            tombstones: 0,
        }
    }

    /// Overlay inserts out of `v`, sorted by destination.
    pub fn inserts_out(&self, v: VId) -> &[(VId, Weight)] {
        &self.ins_out[v as usize]
    }

    /// Overlay inserts into `v`, sorted by source.
    pub fn inserts_in(&self, v: VId) -> &[(VId, Weight)] {
        &self.ins_in[v as usize]
    }

    /// Tombstoned base out-edge destinations of `v`, sorted.
    pub fn tombstones_out(&self, v: VId) -> &[VId] {
        &self.del_out[v as usize]
    }

    /// Tombstoned base in-edge sources of `v`, sorted.
    pub fn tombstones_in(&self, v: VId) -> &[VId] {
        &self.del_in[v as usize]
    }

    /// Total overlay-insert edges.
    pub fn num_inserts(&self) -> usize {
        self.inserts
    }

    /// Total tombstoned base edges.
    pub fn num_tombstones(&self) -> usize {
        self.tombstones
    }

    /// Whether the log holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.inserts == 0 && self.tombstones == 0
    }
}

/// Counters for one applied batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Edges newly inserted (pair was not live).
    pub inserted: usize,
    /// Edges whose weight was updated (pair was already live).
    pub updated: usize,
    /// Edges deleted (pair was live).
    pub deleted: usize,
    /// Deletes of pairs that were not live (counted, not an error).
    pub missing: usize,
    /// Whether this application crossed the compaction threshold and
    /// rebuilt the base CSR.
    pub compacted: bool,
}

/// The effective outcome of one applied batch: exactly what changed, in
/// canonical `(src, dst)` order. Incremental engines seed their repair
/// frontiers from these lists.
#[derive(Clone, Debug)]
pub struct AppliedBatch {
    /// Epoch assigned to this batch (monotone per [`crate::MutableGraph`]).
    pub epoch: u64,
    /// Edges that became live or changed weight, with their new weight.
    /// Idempotent same-weight upserts are excluded (they changed nothing).
    pub inserts: Vec<Edge>,
    /// Edges that ceased to be live, with the weight they had.
    pub deletes: Vec<Edge>,
    /// Live pairs whose weight changed, carrying the *old* weight (the new
    /// one is in [`AppliedBatch::inserts`] for the same pair). Monotone
    /// repair engines seed from these like deletes: a weight increase can
    /// invalidate a shortest-path value exactly as a removal can.
    pub reweighted: Vec<Edge>,
    /// Counters for the application.
    pub stats: BatchStats,
}

impl AppliedBatch {
    /// Every vertex incident to an effective mutation, sorted and deduped.
    pub fn touched_vertices(&self) -> Vec<VId> {
        let mut vs: Vec<VId> = self
            .inserts
            .iter()
            .chain(self.deletes.iter())
            .chain(self.reweighted.iter())
            .flat_map(|e| [e.src, e.dst])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Whether the batch changed nothing (all deletes missing, every
    /// insert an idempotent upsert).
    pub fn is_noop(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.reweighted.is_empty()
    }

    /// Merge another applied batch *that happened after this one* into a
    /// combined view covering every mutation in either. Used when a query
    /// warm-starts from a result older than the latest epoch: the repair
    /// seeds must cover every intervening batch. Both lists are plain
    /// unions (later weight wins per pair) — seeds are deliberately
    /// over-approximations, because engines recompute from the *live*
    /// merged adjacency, so a stale entry costs repair work, never
    /// correctness.
    pub fn merged_with(&self, later: &AppliedBatch) -> AppliedBatch {
        fn union(later: &[Edge], earlier: &[Edge]) -> Vec<Edge> {
            let mut out: Vec<Edge> = Vec::with_capacity(later.len() + earlier.len());
            out.extend(later.iter().copied());
            out.extend(earlier.iter().copied());
            out.sort_by_key(|e| ((e.src as u64) << 32) | e.dst as u64);
            out.dedup_by_key(|e| (e.src, e.dst));
            out
        }
        AppliedBatch {
            epoch: later.epoch.max(self.epoch),
            inserts: union(&later.inserts, &self.inserts),
            deletes: union(&later.deletes, &self.deletes),
            reweighted: union(&later.reweighted, &self.reweighted),
            stats: BatchStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_batches() {
        let mut b = DeltaBatch::new();
        b.insert(0, 9, 1);
        assert!(matches!(
            b.validate(4),
            Err(DeltaError::EndpointOutOfRange { .. })
        ));
        let mut b = DeltaBatch::new();
        b.insert(2, 2, 1);
        assert_eq!(b.validate(4), Err(DeltaError::SelfLoopInsert { vertex: 2 }));
        let mut b = DeltaBatch::new();
        b.delete(0, 9);
        assert!(b.validate(4).is_err());
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 0);
        assert_eq!(
            b.validate(4),
            Err(DeltaError::ZeroWeightInsert { src: 0, dst: 1 })
        );
        let mut ok = DeltaBatch::new();
        ok.insert(0, 1, 5).delete(1, 0);
        assert_eq!(ok.validate(4), Ok(()));
    }

    #[test]
    fn normalize_keeps_last_insert_weight() {
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 5).insert(2, 3, 9).insert(0, 1, 8);
        b.delete(4, 5).delete(4, 5);
        b.normalize();
        assert_eq!(b.inserts.len(), 2);
        assert_eq!(b.inserts[0], Edge::weighted(0, 1, 8));
        assert_eq!(b.deletes, vec![(4, 5)]);
    }

    #[test]
    fn symmetrize_mirrors_both_kinds() {
        let mut b = DeltaBatch::new();
        b.insert(0, 1, 3).delete(2, 3);
        b.symmetrize();
        assert!(b.inserts.contains(&Edge::weighted(1, 0, 3)));
        assert!(b.deletes.contains(&(3, 2)));
    }

    #[test]
    fn merged_batches_respect_later_wins() {
        let first = AppliedBatch {
            epoch: 1,
            inserts: vec![Edge::weighted(0, 1, 5)],
            deletes: vec![Edge::weighted(2, 3, 1)],
            reweighted: vec![Edge::weighted(4, 5, 2)],
            stats: BatchStats::default(),
        };
        let second = AppliedBatch {
            epoch: 2,
            inserts: vec![Edge::weighted(2, 3, 7)],
            deletes: vec![Edge::weighted(0, 1, 5)],
            reweighted: vec![],
            stats: BatchStats::default(),
        };
        let m = first.merged_with(&second);
        assert_eq!(m.epoch, 2);
        // Unions: every touched pair appears in the merged seed lists, even
        // when a later batch reversed the earlier mutation — seeds are
        // over-approximations.
        assert!(m.inserts.contains(&Edge::weighted(2, 3, 7)));
        assert!(m.deletes.iter().any(|e| (e.src, e.dst) == (2, 3)));
        assert!(m.deletes.iter().any(|e| (e.src, e.dst) == (0, 1)));
        assert!(m.inserts.contains(&Edge::weighted(0, 1, 5)));
        assert_eq!(m.reweighted, vec![Edge::weighted(4, 5, 2)]);
    }
}
