//! Named, scaled-down versions of the paper's Table 2 datasets.
//!
//! The paper's graphs run to 2.14 billion edges; this reproduction runs on a
//! single host core with 16 GB of RAM, so each dataset keeps its family's
//! generative structure (degree distribution, density, diameter class) at a
//! reduced size. `scale_shift` adds to the log2 vertex count (0 = the
//! defaults below, +1 doubles, −1 halves), letting the harness and tests
//! trade fidelity for speed uniformly.
//!
//! | id          | paper graph | paper size       | default here          |
//! |-------------|-------------|------------------|-----------------------|
//! | `TwitterS`  | twitter     | 41.7 M V, 1.47 B E | 2^18 V, 4.2 M E (R-MAT, high skew) |
//! | `Rmat24S`   | rMat24      | 16.8 M V, 268 M E  | 2^17 V, 2.1 M E (R-MAT ×16 density) |
//! | `Rmat27S`   | rMat27      | 134 M V, 2.14 B E  | 2^19 V, 8.4 M E (R-MAT ×16 density) |
//! | `PowerlawS` | powerlaw    | 10 M V, 105 M E    | 2^18 V, ~2.7 M E (Zipf α = 2.0) |
//! | `RoadUsS`   | roadUS      | 23.9 M V, 58 M E   | 512×512 grid, ~630 K E, avg deg 2.4 |

use crate::edgelist::EdgeList;
use crate::gen;

/// The five datasets of the paper's Table 2, scaled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Twitter-like: large, highly skewed follower graph (R-MAT).
    TwitterS,
    /// Graph500 R-MAT, medium.
    Rmat24S,
    /// Graph500 R-MAT, large.
    Rmat27S,
    /// Zipf power-law with constant 2.0 (PowerGraph generator method).
    PowerlawS,
    /// High-diameter road network (grid), average directed degree ≈ 2.4.
    RoadUsS,
}

impl DatasetId {
    /// All datasets, in the paper's Table 2 order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::TwitterS,
        DatasetId::Rmat24S,
        DatasetId::Rmat27S,
        DatasetId::PowerlawS,
        DatasetId::RoadUsS,
    ];

    /// Short name used in reports (mirrors the paper's graph names).
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::TwitterS => "twitter",
            DatasetId::Rmat24S => "rMat24",
            DatasetId::Rmat27S => "rMat27",
            DatasetId::PowerlawS => "powerlaw",
            DatasetId::RoadUsS => "roadUS",
        }
    }

    /// True for the high-diameter road network (traversal algorithms need
    /// many iterations there).
    pub fn high_diameter(self) -> bool {
        matches!(self, DatasetId::RoadUsS)
    }
}

/// Generate a dataset at `scale_shift` relative to the defaults (see module
/// docs). Deterministic: the same id and shift always produce the same graph.
pub fn dataset(id: DatasetId, scale_shift: i32) -> EdgeList {
    let sc = |base: i32| -> u32 { (base + scale_shift).clamp(8, 27) as u32 };
    match id {
        DatasetId::TwitterS => {
            // Extra-skewed R-MAT approximating the twitter follower graph.
            let scale = sc(18);
            gen::rmat(scale, 16 << scale, (0.60, 0.19, 0.16), 0xC0FFEE)
        }
        DatasetId::Rmat24S => {
            let scale = sc(17);
            gen::rmat(scale, 16 << scale, gen::RMAT_GRAPH500, 24)
        }
        DatasetId::Rmat27S => {
            let scale = sc(19);
            gen::rmat(scale, 16 << scale, gen::RMAT_GRAPH500, 27)
        }
        DatasetId::PowerlawS => {
            let n = 1usize << sc(18);
            gen::powerlaw_zipf(n, 2.0, 10.0, 0x9E3779B9)
        }
        DatasetId::RoadUsS => {
            let side = 1usize << (sc(18) / 2);
            gen::road_grid(side, side, 0.6, 0xD1CE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;
    use crate::stats::GraphStats;

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for id in DatasetId::ALL {
            let el = dataset(id, -6);
            assert!(el.num_edges() > 0, "{:?} empty", id);
            el.validate();
        }
    }

    #[test]
    fn twitter_is_more_skewed_than_road() {
        let tw = GraphStats::compute(&Graph::from_edges(&dataset(DatasetId::TwitterS, -6)));
        let rd = GraphStats::compute(&Graph::from_edges(&dataset(DatasetId::RoadUsS, -6)));
        assert!(tw.skew() > 20.0, "twitter skew {}", tw.skew());
        assert!(rd.skew() < 3.0, "road skew {}", rd.skew());
        assert!((rd.avg_degree - 2.4).abs() < 0.4);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = dataset(DatasetId::Rmat24S, -6);
        let b = dataset(DatasetId::Rmat24S, -6);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_shift_changes_size() {
        let small = dataset(DatasetId::Rmat24S, -7);
        let big = dataset(DatasetId::Rmat24S, -5);
        assert!(big.num_vertices > 2 * small.num_vertices);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetId::TwitterS.name(), "twitter");
        assert_eq!(DatasetId::RoadUsS.name(), "roadUS");
        assert!(DatasetId::RoadUsS.high_diameter());
        assert!(!DatasetId::TwitterS.high_diameter());
    }
}
