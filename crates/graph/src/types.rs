//! Fundamental graph types.

use serde::{Deserialize, Serialize};

/// Vertex identifier. 32 bits suffice for the scaled datasets (the paper's
/// largest graph has 134 M vertices, also within `u32`).
pub type VId = u32;

/// Edge weight. The paper adds a random weight in `(0, 100]` to each edge for
/// SpMV and SSSP; unweighted algorithms ignore it.
pub type Weight = u32;

/// A directed edge with weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VId,
    /// Target vertex.
    pub dst: VId,
    /// Edge weight (1 for unweighted graphs).
    pub weight: Weight,
}

impl Edge {
    /// An unweighted (weight 1) edge.
    #[inline]
    pub fn new(src: VId, dst: VId) -> Self {
        Edge {
            src,
            dst,
            weight: 1,
        }
    }

    /// A weighted edge.
    #[inline]
    pub fn weighted(src: VId, dst: VId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }

    /// The same edge in the opposite direction.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::new(1, 2);
        assert_eq!(e.weight, 1);
        let w = Edge::weighted(1, 2, 42);
        assert_eq!(w.weight, 42);
        assert_eq!(w.reversed(), Edge::weighted(2, 1, 42));
    }
}
