//! Command-line graph generator: writes any of the supported synthetic
//! families (or a named scaled dataset) to an edge-list file.
//!
//! ```sh
//! graphgen rmat --scale 18 --edges 4000000 --seed 7 -o twitter.bin
//! graphgen powerlaw --vertices 100000 --avg-degree 10 -o pl.txt
//! graphgen road --side 512 -o road.bin
//! graphgen dataset --name twitter --shift -2 -o twitter_s.bin
//! ```

use std::collections::HashMap;
use std::process::exit;

use polymer_graph::{dataset, gen, io, DatasetId};

fn usage() -> ! {
    eprintln!(
        "usage: graphgen <rmat|powerlaw|road|uniform|dataset> [flags] -o <file>\n\
         common: --seed <u64> (default 1), -o/--out <file> (.bin = binary)\n\
         rmat:     --scale <log2 V> --edges <count>\n\
         powerlaw: --vertices <count> --avg-degree <f64> [--alpha <f64>]\n\
         road:     --side <grid side> [--p-bond <f64>]\n\
         uniform:  --vertices <count> --edges <count>\n\
         dataset:  --name <twitter|rMat24|rMat27|powerlaw|roadUS> [--shift <i32>]"
    );
    exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let family = args.next().unwrap_or_else(|| usage());
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        match key.take() {
            Some(k) => {
                flags.insert(k, a);
            }
            None => {
                if let Some(stripped) = a.strip_prefix("--") {
                    key = Some(stripped.to_string());
                } else if a == "-o" {
                    key = Some("out".to_string());
                } else {
                    eprintln!("unexpected argument {a:?}");
                    usage();
                }
            }
        }
    }
    let get = |k: &str| flags.get(k).cloned();
    let parse = |k: &str, d: Option<&str>| -> String {
        get(k).or_else(|| d.map(str::to_string)).unwrap_or_else(|| {
            eprintln!("missing --{k}");
            usage()
        })
    };
    let seed: u64 = parse("seed", Some("1")).parse().unwrap_or_else(|_| usage());
    let out = parse("out", None);

    let el = match family.as_str() {
        "rmat" => {
            let scale: u32 = parse("scale", None).parse().unwrap_or_else(|_| usage());
            let edges: usize = parse("edges", None).parse().unwrap_or_else(|_| usage());
            gen::rmat(scale, edges, gen::RMAT_GRAPH500, seed)
        }
        "powerlaw" => {
            let n: usize = parse("vertices", None).parse().unwrap_or_else(|_| usage());
            let avg: f64 = parse("avg-degree", None)
                .parse()
                .unwrap_or_else(|_| usage());
            let alpha: f64 = parse("alpha", Some("2.0"))
                .parse()
                .unwrap_or_else(|_| usage());
            gen::powerlaw_zipf(n, alpha, avg, seed)
        }
        "road" => {
            let side: usize = parse("side", None).parse().unwrap_or_else(|_| usage());
            let p: f64 = parse("p-bond", Some("0.6"))
                .parse()
                .unwrap_or_else(|_| usage());
            gen::road_grid(side, side, p, seed)
        }
        "uniform" => {
            let n: usize = parse("vertices", None).parse().unwrap_or_else(|_| usage());
            let edges: usize = parse("edges", None).parse().unwrap_or_else(|_| usage());
            gen::uniform(n, edges, seed)
        }
        "dataset" => {
            let name = parse("name", None);
            let shift: i32 = parse("shift", Some("0"))
                .parse()
                .unwrap_or_else(|_| usage());
            let id = DatasetId::ALL
                .into_iter()
                .find(|d| d.name().eq_ignore_ascii_case(&name))
                .unwrap_or_else(|| {
                    eprintln!("unknown dataset {name:?}");
                    usage()
                });
            dataset(id, shift)
        }
        _ => usage(),
    };

    if let Err(e) = io::save(&el, &out) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    eprintln!(
        "wrote {} vertices, {} edges to {out}",
        el.num_vertices,
        el.num_edges()
    );
}
