//! Command-line graph inspector: loads an edge-list file (text or `.bin`)
//! and prints the Table 2-style statistics plus a degree histogram.
//!
//! ```sh
//! graphinfo twitter.bin
//! ```

use std::process::exit;

use polymer_graph::{io, Graph, GraphStats};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: graphinfo <edge-list file>");
            exit(2);
        }
    };
    let el = match io::load(&path) {
        Ok(el) => el,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            exit(1);
        }
    };
    let g = Graph::from_edges(&el);
    let s = GraphStats::compute(&g);

    println!("{path}");
    println!("  vertices        {:>12}", s.num_vertices);
    println!("  edges           {:>12}", s.num_edges);
    println!("  avg out-degree  {:>12.2}", s.avg_degree);
    println!("  max out-degree  {:>12}", s.max_out_degree);
    println!("  max in-degree   {:>12}", s.max_in_degree);
    println!("  isolated        {:>12}", s.isolated);
    println!("  skew (max/avg)  {:>12.1}", s.skew());

    // Log-scale out-degree histogram.
    let mut buckets = [0usize; 24];
    for v in 0..g.num_vertices() {
        let d = g.out_degree(v as u32);
        let b = if d == 0 {
            0
        } else {
            (d.ilog2() as usize + 1).min(23)
        };
        buckets[b] += 1;
    }
    let top = buckets.iter().copied().max().unwrap_or(1).max(1);
    println!("\n  out-degree histogram (log2 buckets):");
    for (b, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let label = if b == 0 {
            "0".to_string()
        } else {
            format!("{}-{}", 1usize << (b - 1), (1usize << b) - 1)
        };
        let bar = "#".repeat((count * 50 / top).max(1));
        println!("  {label:>12}  {count:>10}  {bar}");
    }
}
