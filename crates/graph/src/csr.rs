//! The immutable compressed-sparse-row graph: CSR over out-edges plus CSC
//! over in-edges, with per-vertex degrees — the topology layout of the
//! paper's Figure 1 ("vertices", "out-edges", "in-edges" arrays).

use crate::builder::GraphBuilder;
use crate::edgelist::EdgeList;
use crate::types::{VId, Weight};

/// An immutable directed graph in CSR+CSC form. Offsets are `usize` indexes
/// into the target/source arrays; weights are stored alongside both
/// directions so engines can traverse either with weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    m: usize,
    out_off: Vec<usize>,
    out_dst: Vec<VId>,
    out_w: Vec<Weight>,
    in_off: Vec<usize>,
    in_src: Vec<VId>,
    in_w: Vec<Weight>,
}

impl Graph {
    /// Build the CSR/CSC representation from an edge list. Edge order within
    /// a vertex's adjacency list follows the input order (counting sort by
    /// endpoint), so construction is O(V + E) and deterministic. Delegates to
    /// [`GraphBuilder::assemble`], the single assembly path shared with the
    /// compaction rebuild.
    pub fn from_edges(el: &EdgeList) -> Self {
        GraphBuilder::assemble(el)
    }

    /// Assemble a graph from pre-built CSR/CSC arrays. Only
    /// [`GraphBuilder::assemble`] constructs these; keeping the fields
    /// private preserves the representation invariants (offsets are prefix
    /// sums, targets/weights aligned).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        m: usize,
        out_off: Vec<usize>,
        out_dst: Vec<VId>,
        out_w: Vec<Weight>,
        in_off: Vec<usize>,
        in_src: Vec<VId>,
        in_w: Vec<Weight>,
    ) -> Self {
        Graph {
            n,
            m,
            out_off,
            out_dst,
            out_w,
            in_off,
            in_src,
            in_w,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VId) -> usize {
        let v = v as usize;
        self.out_off[v + 1] - self.out_off[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VId) -> usize {
        let v = v as usize;
        self.in_off[v + 1] - self.in_off[v]
    }

    /// Out-neighbors of `v` (edge targets).
    #[inline]
    pub fn out_neighbors(&self, v: VId) -> &[VId] {
        let v = v as usize;
        &self.out_dst[self.out_off[v]..self.out_off[v + 1]]
    }

    /// Weights aligned with [`Graph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: VId) -> &[Weight] {
        let v = v as usize;
        &self.out_w[self.out_off[v]..self.out_off[v + 1]]
    }

    /// In-neighbors of `v` (edge sources).
    #[inline]
    pub fn in_neighbors(&self, v: VId) -> &[VId] {
        let v = v as usize;
        &self.in_src[self.in_off[v]..self.in_off[v + 1]]
    }

    /// Weights aligned with [`Graph::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VId) -> &[Weight] {
        let v = v as usize;
        &self.in_w[self.in_off[v]..self.in_off[v + 1]]
    }

    /// The CSR offset array (`n + 1` entries).
    #[inline]
    pub fn out_offsets(&self) -> &[usize] {
        &self.out_off
    }

    /// The CSC offset array (`n + 1` entries).
    #[inline]
    pub fn in_offsets(&self) -> &[usize] {
        &self.in_off
    }

    /// Flat out-edge target array.
    #[inline]
    pub fn out_targets(&self) -> &[VId] {
        &self.out_dst
    }

    /// Flat out-edge weight array.
    #[inline]
    pub fn out_edge_weights(&self) -> &[Weight] {
        &self.out_w
    }

    /// Flat in-edge source array.
    #[inline]
    pub fn in_sources(&self) -> &[VId] {
        &self.in_src
    }

    /// Flat in-edge weight array.
    #[inline]
    pub fn in_edge_weights(&self) -> &[Weight] {
        &self.in_w
    }

    /// Iterate all edges as `(src, dst, weight)` in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VId, VId, Weight)> + '_ {
        (0..self.n as VId).flat_map(move |v| {
            self.out_neighbors(v)
                .iter()
                .zip(self.out_weights(v))
                .map(move |(&d, &w)| (v, d, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sample() -> Graph {
        // The paper's Figure 1 sample graph (6 vertices).
        let el = EdgeList::from_pairs(
            7,
            [
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 5),
                (3, 2),
                (3, 5),
                (3, 6),
                (4, 1),
                (4, 3),
                (4, 5),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 6),
                (6, 2),
            ],
        );
        Graph::from_edges(&el)
    }

    #[test]
    fn figure1_shape() {
        let g = sample();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 15);
        // Figure 1: vertex 3's in-edges come from 1, 2, 4, 5.
        assert_eq!(g.in_neighbors(3), &[1, 2, 4, 5]);
        // And its out-edges go to 2, 5, 6.
        assert_eq!(g.out_neighbors(3), &[2, 5, 6]);
        assert_eq!(g.out_degree(3), 3);
        assert_eq!(g.in_degree(3), 4);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn csr_csc_agree_on_edge_multiset() {
        let g = sample();
        let mut from_csr: Vec<(VId, VId)> = g.iter_edges().map(|(s, d, _)| (s, d)).collect();
        let mut from_csc: Vec<(VId, VId)> = (0..g.num_vertices() as VId)
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&s| (s, v)))
            .collect();
        from_csr.sort_unstable();
        from_csc.sort_unstable();
        assert_eq!(from_csr, from_csc);
    }

    #[test]
    fn weights_follow_edges_in_both_directions() {
        let mut el = EdgeList::new(3);
        el.push(Edge::weighted(0, 2, 7));
        el.push(Edge::weighted(1, 2, 9));
        let g = Graph::from_edges(&el);
        assert_eq!(g.out_weights(0), &[7]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_weights(2), &[7, 9]);
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let g = sample();
        assert_eq!(g.out_offsets().len(), 8);
        assert_eq!(*g.out_offsets().last().unwrap(), 15);
        assert_eq!(*g.in_offsets().last().unwrap(), 15);
        for v in 0..7 {
            assert!(g.out_offsets()[v] <= g.out_offsets()[v + 1]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(&EdgeList::new(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.iter_edges().count(), 0);
    }
}
