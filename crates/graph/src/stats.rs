//! Summary statistics of a graph, used by the harness to print dataset
//! tables (paper Table 2) and to sanity-check generator output.

use crate::csr::Graph;

/// Degree and size statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Directed-edge count.
    pub num_edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Vertices with neither in- nor out-edges.
    pub isolated: usize,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut max_out = 0;
        let mut max_in = 0;
        let mut isolated = 0;
        for v in 0..n {
            let od = g.out_degree(v as u32);
            let id = g.in_degree(v as u32);
            max_out = max_out.max(od);
            max_in = max_in.max(id);
            if od == 0 && id == 0 {
                isolated += 1;
            }
        }
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated,
        }
    }

    /// Degree skew: max out-degree over average degree. ≫ 1 for power-law
    /// graphs, ≈ 1 for road networks.
    pub fn skew(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.max_out_degree as f64 / self.avg_degree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn stats_on_small_graph() {
        let g = Graph::from_edges(&EdgeList::from_pairs(5, [(0, 1), (0, 2), (0, 3), (1, 0)]));
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated, 1);
        assert!((s.avg_degree - 0.8).abs() < 1e-12);
        assert!((s.skew() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = Graph::from_edges(&EdgeList::new(0));
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.skew(), 0.0);
    }
}
