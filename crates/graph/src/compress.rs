//! Delta/varint compression of CSR neighbour lists.
//!
//! Each vertex's neighbour list is encoded independently: the first
//! neighbour as a zigzag-encoded signed delta from the owning vertex id, and
//! every subsequent neighbour as a zigzag delta from its predecessor, each
//! delta written as an LEB128-style varint. Because the repo's CSR keeps
//! neighbour lists in *input order* (construction is a counting sort, not a
//! sort by id), deltas can be negative — zigzag handles that — and the
//! encoding is exactly order-preserving: decoding replays the identical
//! neighbour sequence, so traversal order (and therefore floating-point
//! accumulation order in the engines) is unchanged.
//!
//! The payoff is measured in *bytes*: social-network-like graphs have strong
//! id locality, so most deltas fit in one or two bytes instead of the raw
//! four, and the engines charge the encoded bytes through the bulk accessors
//! (see `polymer_numa::compress`), turning the compression into simulated
//! bandwidth savings as well as host-memory savings.

use crate::csr::Graph;
use crate::types::VId;

/// Map a signed delta onto an unsigned integer with small absolute values
/// staying small (zigzag: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...).
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append `u` as an LEB128 varint (7 value bits per byte, high bit = more).
#[inline]
fn push_varint(mut u: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u != 0 {
            out.push(byte | 0x80);
        } else {
            out.push(byte);
            break;
        }
    }
}

/// Read one varint starting at `pos`; returns the value and the new position.
#[inline]
fn read_varint(bytes: &[u8], mut pos: usize) -> (u64, usize) {
    let mut u = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[pos];
        pos += 1;
        u |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (u, pos);
        }
        shift += 7;
    }
}

/// Encode `list` as the neighbour list of `vertex`, appending to `out`.
/// Order-preserving and exact for any `u32` ids in any order.
pub fn encode_list(vertex: VId, list: &[VId], out: &mut Vec<u8>) {
    let mut prev = i64::from(vertex);
    for &v in list {
        let cur = i64::from(v);
        push_varint(zigzag(cur - prev), out);
        prev = cur;
    }
}

/// Streaming decoder for one encoded neighbour list; yields the original
/// neighbours in their original order.
pub struct DeltaDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: i64,
}

impl<'a> DeltaDecoder<'a> {
    /// Decode the list encoded by [`encode_list`]`(vertex, ..)` from `bytes`.
    pub fn new(vertex: VId, bytes: &'a [u8]) -> Self {
        DeltaDecoder {
            bytes,
            pos: 0,
            prev: i64::from(vertex),
        }
    }
}

impl Iterator for DeltaDecoder<'_> {
    type Item = VId;

    #[inline]
    fn next(&mut self) -> Option<VId> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let (u, pos) = read_varint(self.bytes, self.pos);
        self.pos = pos;
        self.prev += unzigzag(u);
        debug_assert!(
            (0..=i64::from(u32::MAX)).contains(&self.prev),
            "corrupt delta stream"
        );
        Some(self.prev as VId)
    }
}

/// Decode the neighbour list encoded by [`encode_list`]`(vertex, ..)`.
pub fn decode_list(vertex: VId, bytes: &[u8]) -> impl Iterator<Item = VId> + '_ {
    DeltaDecoder::new(vertex, bytes)
}

/// One compressed adjacency structure (out- or in-edges): per-vertex byte
/// offsets into a single concatenated delta/varint payload.
#[derive(Clone, Debug, Default)]
pub struct CompressedAdjacency {
    /// `offs[v]..offs[v + 1]` is vertex `v`'s payload range (len = n + 1).
    pub offs: Vec<u64>,
    /// Concatenated encoded neighbour lists.
    pub bytes: Vec<u8>,
    /// Size of the uncompressed `u32` neighbour array, for ratio reporting.
    pub raw_bytes: usize,
}

impl CompressedAdjacency {
    /// Compress `lists(v)` for `v` in `0..n`, preserving list order exactly.
    pub fn build<'a>(n: usize, mut lists: impl FnMut(VId) -> &'a [VId]) -> CompressedAdjacency {
        let mut offs = Vec::with_capacity(n + 1);
        let mut bytes = Vec::new();
        let mut raw = 0usize;
        offs.push(0);
        for v in 0..n {
            let list = lists(v as VId);
            raw += std::mem::size_of_val(list);
            encode_list(v as VId, list, &mut bytes);
            offs.push(bytes.len() as u64);
        }
        CompressedAdjacency {
            offs,
            bytes,
            raw_bytes: raw,
        }
    }

    /// Compressed out-edge adjacency of `g`.
    pub fn out_edges(g: &Graph) -> CompressedAdjacency {
        Self::build(g.num_vertices(), |v| g.out_neighbors(v))
    }

    /// Compressed in-edge adjacency of `g`.
    pub fn in_edges(g: &Graph) -> CompressedAdjacency {
        Self::build(g.num_vertices(), |v| g.in_neighbors(v))
    }

    /// Vertex `v`'s encoded payload.
    pub fn list(&self, v: VId) -> &[u8] {
        let v = v as usize;
        &self.bytes[self.offs[v] as usize..self.offs[v + 1] as usize]
    }

    /// Decoded neighbour list of `v`, in original order.
    pub fn neighbors(&self, v: VId) -> impl Iterator<Item = VId> + '_ {
        decode_list(v, self.list(v))
    }

    /// Encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn roundtrip(vertex: VId, list: &[VId]) {
        let mut bytes = Vec::new();
        encode_list(vertex, list, &mut bytes);
        let got: Vec<VId> = decode_list(vertex, &bytes).collect();
        assert_eq!(got, list, "vertex {vertex}");
    }

    #[test]
    fn roundtrip_edge_shapes() {
        roundtrip(0, &[]);
        roundtrip(0, &[0]);
        roundtrip(7, &[7, 7, 7]);
        roundtrip(0, &[u32::MAX]);
        roundtrip(u32::MAX, &[0, u32::MAX, 0, u32::MAX]);
        roundtrip(5, &[9, 2, 9, 1, 1_000_000, 0]);
        roundtrip(1 << 30, &(0..200).map(|i| i * 1000).collect::<Vec<_>>());
    }

    #[test]
    fn local_ids_compress_well() {
        // Neighbours near the vertex id: one byte per edge instead of four.
        let v = 1_000_000;
        let list: Vec<VId> = (0..64).map(|i| v + i - 32).collect();
        let mut bytes = Vec::new();
        encode_list(v, &list, &mut bytes);
        assert!(bytes.len() <= list.len() + 8, "got {} bytes", bytes.len());
        assert_eq!(decode_list(v, &bytes).collect::<Vec<_>>(), list);
    }

    #[test]
    fn adjacency_matches_graph() {
        let el = EdgeList::from_pairs(6, [(0, 3), (0, 1), (3, 2), (5, 0), (3, 3), (2, 4)]);
        let g = Graph::from_edges(&el);
        let out = CompressedAdjacency::out_edges(&g);
        let inn = CompressedAdjacency::in_edges(&g);
        assert_eq!(out.offs.len(), 7);
        for v in 0..6u32 {
            assert_eq!(
                out.neighbors(v).collect::<Vec<_>>(),
                g.out_neighbors(v),
                "out {v}"
            );
            assert_eq!(
                inn.neighbors(v).collect::<Vec<_>>(),
                g.in_neighbors(v),
                "in {v}"
            );
        }
        assert_eq!(out.raw_bytes, g.num_edges() * 4);
    }
}
