//! The construction-stage edge-list representation.

use crate::types::{Edge, VId, Weight};

/// A list of directed edges plus the vertex-count bound. Generators and I/O
/// produce this; [`crate::Graph::from_edges`] consumes it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices; all edge endpoints are `< num_vertices`.
    pub num_vertices: usize,
    /// The edges.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// An empty edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Build from raw `(src, dst)` pairs with weight 1.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (VId, VId)>) -> Self {
        let edges = pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
        let el = EdgeList {
            num_vertices: n,
            edges,
        };
        el.validate();
        el
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append one edge.
    pub fn push(&mut self, e: Edge) {
        debug_assert!((e.src as usize) < self.num_vertices);
        debug_assert!((e.dst as usize) < self.num_vertices);
        self.edges.push(e);
    }

    /// Panic if any endpoint is out of range (used after deserialization).
    pub fn validate(&self) {
        for e in &self.edges {
            assert!(
                (e.src as usize) < self.num_vertices && (e.dst as usize) < self.num_vertices,
                "edge ({}, {}) out of range for {} vertices",
                e.src,
                e.dst,
                self.num_vertices
            );
        }
    }

    /// Remove duplicate `(src, dst)` pairs (keeping the first weight) and
    /// self-loops. Sorts the list as a side effect. Delegates to
    /// [`crate::GraphBuilder::canonicalize`], whose stable sort makes
    /// "first weight" genuinely mean first in input order.
    pub fn dedup(&mut self) {
        crate::GraphBuilder::canonicalize(&mut self.edges);
    }

    /// Make the graph undirected by adding the reverse of every edge (the
    /// paper represents an undirected edge as a pair of directed ones), then
    /// dedup.
    pub fn symmetrize(&mut self) {
        let rev: Vec<Edge> = self.edges.iter().map(|e| e.reversed()).collect();
        self.edges.extend(rev);
        self.dedup();
    }

    /// Overwrite all weights using `f(src, dst)`; used to attach the paper's
    /// random `(0, 100]` weights for SpMV/SSSP.
    pub fn reweight(&mut self, mut f: impl FnMut(VId, VId) -> Weight) {
        for e in &mut self.edges {
            e.weight = f(e.src, e.dst);
        }
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices];
        for e in &self.edges {
            d[e.src as usize] += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_and_degrees() {
        let el = EdgeList::from_pairs(4, [(0, 1), (0, 2), (3, 0)]);
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.out_degrees(), vec![2, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        EdgeList::from_pairs(2, [(0, 5)]);
    }

    #[test]
    fn dedup_removes_loops_and_dupes() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 1), (0, 1), (2, 0)]);
        el.dedup();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edges[0], Edge::new(0, 1));
        assert_eq!(el.edges[1], Edge::new(2, 0));
    }

    #[test]
    fn symmetrize_doubles_unique_edges() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 2)]);
        el.symmetrize();
        assert_eq!(el.num_edges(), 4);
        assert!(el.edges.contains(&Edge::new(1, 0)));
        assert!(el.edges.contains(&Edge::new(2, 1)));
    }

    #[test]
    fn reweight_applies_function() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 2)]);
        el.reweight(|s, d| s + d);
        assert_eq!(el.edges[0].weight, 1);
        assert_eq!(el.edges[1].weight, 3);
    }
}
