//! Vertex partitioning across NUMA nodes.
//!
//! Polymer splits the vertex id space into contiguous disjoint ranges, one
//! per memory node. Two strategies from the paper's Section 5:
//!
//! * **vertex-balanced** — equal vertex counts per range (the "natural
//!   approach"), which for skewed graphs leaves the edges badly imbalanced;
//! * **edge-oriented balanced** — ranges chosen so the per-range *degree
//!   sums* are as even as possible (inspired by vertex-cuts), since scatter/
//!   gather work is linear in edges. The paper's Figure 11(a) shows this
//!   narrows the per-socket edge deviation from ±tens of percent to
//!   [-0.5%, +0.8%] on the twitter graph.

use std::ops::Range;

/// Split `0..n` into `parts` contiguous ranges of (nearly) equal length.
pub fn vertex_balanced_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1, "need at least one part");
    (0..parts)
        .map(|p| (p * n / parts)..((p + 1) * n / parts))
        .collect()
}

/// Split `0..degrees.len()` into `parts` contiguous ranges whose degree sums
/// are as even as possible: cut points are placed where the degree prefix
/// sum crosses `i × total / parts`.
pub fn edge_balanced_ranges(degrees: &[u32], parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1, "need at least one part");
    let n = degrees.len();
    let total: u64 = degrees.iter().map(|&d| d as u64).sum();
    if total == 0 {
        return vertex_balanced_ranges(n, parts);
    }
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0usize);
    let mut prefix = 0u64;
    let mut v = 0usize;
    for p in 1..parts {
        let target = p as u64 * total / parts as u64;
        while v < n && prefix < target {
            prefix += degrees[v] as u64;
            v += 1;
        }
        cuts.push(v);
    }
    cuts.push(n);
    (0..parts).map(|p| cuts[p]..cuts[p + 1]).collect()
}

/// Balance statistics of a partitioning, for the Figure 11(a) experiment.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Degree (edge) sum of each part.
    pub edges_per_part: Vec<u64>,
    /// Vertex count of each part.
    pub vertices_per_part: Vec<usize>,
}

impl PartitionStats {
    /// Compute the per-part edge and vertex counts for contiguous ranges.
    pub fn compute(degrees: &[u32], ranges: &[Range<usize>]) -> Self {
        let edges_per_part = ranges
            .iter()
            .map(|r| degrees[r.clone()].iter().map(|&d| d as u64).sum())
            .collect();
        let vertices_per_part = ranges.iter().map(|r| r.len()).collect();
        PartitionStats {
            edges_per_part,
            vertices_per_part,
        }
    }

    /// Normalized per-part edge deviation `(edges_p − mean) / mean`, the
    /// quantity plotted in the paper's Figure 11(a).
    pub fn normalized_deviation(&self) -> Vec<f64> {
        let mean =
            self.edges_per_part.iter().sum::<u64>() as f64 / self.edges_per_part.len() as f64;
        if mean == 0.0 {
            return vec![0.0; self.edges_per_part.len()];
        }
        self.edges_per_part
            .iter()
            .map(|&e| (e as f64 - mean) / mean)
            .collect()
    }

    /// Largest absolute normalized deviation.
    pub fn max_abs_deviation(&self) -> f64 {
        self.normalized_deviation()
            .iter()
            .map(|d| d.abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_ranges_cover_disjointly() {
        let r = vertex_balanced_ranges(10, 3);
        assert_eq!(r, vec![0..3, 3..6, 6..10]);
        let r = vertex_balanced_ranges(8, 8);
        assert!(r.iter().all(|r| r.len() == 1));
        let r = vertex_balanced_ranges(2, 4);
        assert_eq!(r.iter().map(|r| r.len()).sum::<usize>(), 2);
    }

    #[test]
    fn edge_balanced_evens_out_skew() {
        // One hub with degree 300 and many degree-1 vertices.
        let mut degrees = vec![1u32; 1001];
        degrees[0] = 300;
        let parts = 4;
        let vr = vertex_balanced_ranges(degrees.len(), parts);
        let er = edge_balanced_ranges(&degrees, parts);
        let vs = PartitionStats::compute(&degrees, &vr);
        let es = PartitionStats::compute(&degrees, &er);
        assert!(es.max_abs_deviation() < 0.6 * vs.max_abs_deviation());
        // Cover exactly.
        assert_eq!(er.iter().map(|r| r.len()).sum::<usize>(), degrees.len());
        for w in er.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn edge_balanced_on_uniform_degrees_is_near_vertex_balanced() {
        let degrees = vec![3u32; 100];
        let er = edge_balanced_ranges(&degrees, 4);
        for r in &er {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn edge_balanced_handles_zero_total() {
        let degrees = vec![0u32; 10];
        let er = edge_balanced_ranges(&degrees, 2);
        assert_eq!(er, vec![0..5, 5..10]);
    }

    #[test]
    fn stats_deviation() {
        let degrees = vec![4u32, 4, 2, 2];
        let ranges = vec![0..2, 2..4];
        let s = PartitionStats::compute(&degrees, &ranges);
        assert_eq!(s.edges_per_part, vec![8, 4]);
        let d = s.normalized_deviation();
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[1] + 1.0 / 3.0).abs() < 1e-12);
        assert!((s.max_abs_deviation() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_part_takes_all() {
        let degrees = vec![1u32, 2, 3];
        assert_eq!(edge_balanced_ranges(&degrees, 1), vec![0..3]);
        assert_eq!(vertex_balanced_ranges(3, 1), vec![0..3]);
    }
}
