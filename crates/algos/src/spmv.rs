//! Sparse matrix–vector multiplication: `x ← Aᵀx` iterated, where `A` is the
//! weighted adjacency matrix. Each iteration a vertex's new value is the
//! weighted sum of its in-neighbors' values, exactly the paper's SpMV
//! workload (five timed iterations over the weighted graph).

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// The SpMV program. Values are scaled by `1/100` per hop so five iterations
/// stay in a numerically tame range with the paper's `(0, 100]` weights.
#[derive(Clone, Debug)]
pub struct SpMV {
    /// Iteration count (the paper times five).
    pub max_iters: usize,
}

impl SpMV {
    /// Five iterations, as the paper reports.
    pub fn new() -> Self {
        SpMV { max_iters: 5 }
    }

    /// Override the iteration count.
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

impl Default for SpMV {
    fn default() -> Self {
        Self::new()
    }
}

impl Program for SpMV {
    type Val = f64;

    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn combine(&self) -> Combine {
        Combine::Add
    }

    fn next_identity(&self) -> f64 {
        0.0
    }

    fn init(&self, v: VId, _g: &Graph) -> f64 {
        // A deterministic non-uniform input vector.
        1.0 + (v % 7) as f64 * 0.125
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: f64, w: Weight, _src_out_degree: u32) -> f64 {
        src_val * (w as f64 / 100.0)
    }

    #[inline]
    fn apply(&self, _v: VId, acc: f64, _curr: f64) -> (f64, bool) {
        (acc, true)
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::All
    }

    fn max_iters(&self) -> usize {
        self.max_iters
    }

    fn uses_weights(&self) -> bool {
        true
    }

    fn prefer_push(&self) -> bool {
        true
    }

    #[inline]
    fn fold(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::EdgeList;

    #[test]
    fn scatter_scales_by_weight() {
        let s = SpMV::new();
        assert!((s.scatter(0, 2.0, 50, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_replaces_and_stays_alive() {
        let s = SpMV::new();
        assert_eq!(s.apply(0, 3.5, 1.0), (3.5, true));
    }

    #[test]
    fn init_varies_by_vertex() {
        let g = Graph::from_edges(&EdgeList::from_pairs(8, [(0, 1)]));
        let s = SpMV::new();
        assert_ne!(s.init(0, &g), s.init(1, &g));
        assert!(s.uses_weights());
        assert_eq!(s.with_iters(2).max_iters(), 2);
    }
}
