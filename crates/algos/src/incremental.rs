//! Incremental (warm-start) engines over a delta overlay.
//!
//! Static engines answer every query from scratch; these engines instead
//! warm-start from a prior converged [`RunResult`] and repair only the part
//! of the solution a mutation batch invalidated. All of them run over a
//! placed [`OverlayTopo`] — merged adjacency reads are charged through the
//! bulk accessors, so simulated `PhaseCosts` show the true (slightly
//! higher per-edge) price of reading through the overlay, and the win over
//! a from-scratch run comes entirely from touching fewer vertices/edges.
//!
//! Three repair strategies (see `docs/INCREMENTAL.md` for the proofs):
//!
//! * **Monotone path repair** (BFS levels, SSSP distances): values form the
//!   unique minimum fixpoint of `curr[v] = min over in-edges (u,v,w) of
//!   relax(curr[u], w)` with the source pinned at zero. A deleted or
//!   weight-increased edge can only *invalidate* vertices whose old value
//!   was supported through it: the `inc/seed` phase tests every removed
//!   edge `(u, v, w_old)` for `curr[v] == relax(curr[u], w_old)`, the
//!   `inc/cascade` rounds close that suspect set over still-live support
//!   edges, and one fused `inc/reset` phase lifts suspects back to the
//!   identity while *pulling* each suspect's best offer from its
//!   still-trusted (non-suspect, finite) in-neighbours. The `inc/graft`
//!   phase then lands those pulled repairs plus one relaxation per
//!   inserted edge (a converged source can only improve targets through
//!   its *new* edges), and the improved targets seed the `inc/push`
//!   fixpoint (atomic `fetch_min` over merged out-streams), which
//!   re-converges to the exact fixpoint — bit-identical to a from-scratch
//!   run. Positive weights are required (zero-weight inserts are rejected
//!   at [`polymer_graph::DeltaBatch::validate`]): a zero-weight cycle
//!   could hide a removed support edge behind an equal-cost chain.
//! * **Component repair** (connected components over the symmetrized
//!   graph): an insert-only batch merges components without recomputing
//!   anything — a host union-find over the *prior labels* of the batch
//!   endpoints (labels are component minima, so union-by-min preserves the
//!   invariant) followed by one charged `inc/relabel` sweep; zero repair
//!   iterations. A batch with structural deletes resets every vertex of an
//!   affected component to its own id (`inc/reset`) and re-runs min-label
//!   propagation from the resets plus the insert endpoints. Both paths
//!   rely on the warm-start contract: the prior labels are *converged*
//!   (adjacent vertices agree), so any live edge between a reset and a
//!   non-reset vertex is necessarily a seeded insert.
//! * **Residual PageRank**: scores solve the linear system
//!   `x = (1-d)/n + d·Aᵀ D⁻¹ x`. The batch changes a few matrix entries;
//!   `inc/recompute` re-pulls the equation for every vertex whose in-edges
//!   or in-neighbour degrees changed and records the resulting residual
//!   `delta = new − old`, and the `inc/push`/`inc/apply` rounds propagate
//!   residuals (`d·delta/deg` along live out-edges, atomic adds) until all
//!   are below `tol`. This converges to the same fixpoint as a
//!   from-scratch residual run to ε, not bit-identically — float summation
//!   order differs, as with the static engines.
//!
//! Every engine has a **host backend** twin (`*_host`) running the same
//! repair over [`MutableGraph`] merged iterators on plain host memory —
//! real wall-clock with zero simulation overhead, used by
//! `bench_incremental` for the wall-clock speedup column and by the
//! conformance suite as the second backend.
//!
//! Accounting honesty: restored prior values are charged (a `"restore"`
//! sweep), every adjacency read goes through charged overlay streams, every
//! value read/write through charged array accessors. Only *work planning*
//! is host-side and free — frontier vectors, the suspect bitmap, the batch
//! edge lists, the union-find over a handful of labels — matching how the
//! static engines treat their frontiers and chunk plans.

use std::collections::HashMap;

use polymer_api::{
    charged_values_restore, even_chunks, weight_balanced_chunks, IterationDriver, OverlayTopo,
    PolymerResult, RunResult,
};
use polymer_graph::{AppliedBatch, Edge, MutableGraph, VId};
use polymer_numa::{AllocPolicy, Atom, BarrierKind, Machine, NumaAtomicArray};

use crate::bfs::UNVISITED;
use crate::sssp::UNREACHED;

/// Default residual tolerance for incremental PageRank: residual mass per
/// vertex below this is considered converged.
pub const DEFAULT_PR_TOL: f64 = 1e-12;

/// A prior converged result plus the mutations applied since it was
/// computed — everything a warm-started engine needs. When several batches
/// landed since the prior run, merge them first
/// ([`AppliedBatch::merged_with`]).
#[derive(Clone, Copy)]
pub struct WarmStart<'a, V> {
    /// Per-vertex values of the prior run (must be converged).
    pub values: &'a [V],
    /// Iterations the prior run spent; repair rounds stamp after these in
    /// the same global iteration space.
    pub iterations: usize,
    /// The effective mutations applied since the prior run.
    pub batch: &'a AppliedBatch,
}

impl<'a, V> WarmStart<'a, V> {
    /// Warm-start from a prior [`RunResult`].
    pub fn from_result(prior: &'a RunResult<V>, batch: &'a AppliedBatch) -> Self {
        WarmStart {
            values: &prior.values,
            iterations: prior.iterations,
            batch,
        }
    }
}

/// The shared shape of the monotone min-fixpoint programs (BFS levels,
/// SSSP distances, CC labels): an identity ("unreached"), per-vertex cold
/// init, and a relaxation along an out-edge.
trait MinSpec: Copy + Sync {
    type Val: Atom + PartialOrd;
    /// The "no value yet" sentinel; never relaxed from.
    fn identity(&self) -> Self::Val;
    /// The pinned root, or `None` when every vertex roots itself (CC).
    fn root(&self) -> Option<VId>;
    /// Cold initial value of `v`.
    fn init(&self, v: VId) -> Self::Val;
    /// Value `relax(curr[src], w)` offered to the edge's target.
    fn relax(&self, src_val: Self::Val, w: u32) -> Self::Val;
    /// Arithmetic cycles charged per scattered edge (matches the static
    /// programs' `scatter_cycles`).
    fn scatter_cycles(&self) -> f64 {
        2.0
    }
}

#[derive(Clone, Copy)]
struct BfsSpec {
    source: VId,
}

impl MinSpec for BfsSpec {
    type Val = u32;
    fn identity(&self) -> u32 {
        UNVISITED
    }
    fn root(&self) -> Option<VId> {
        Some(self.source)
    }
    fn init(&self, v: VId) -> u32 {
        if v == self.source {
            0
        } else {
            UNVISITED
        }
    }
    fn relax(&self, src_val: u32, _w: u32) -> u32 {
        src_val.saturating_add(1)
    }
}

#[derive(Clone, Copy)]
struct SsspSpec {
    source: VId,
}

impl MinSpec for SsspSpec {
    type Val = u64;
    fn identity(&self) -> u64 {
        UNREACHED
    }
    fn root(&self) -> Option<VId> {
        Some(self.source)
    }
    fn init(&self, v: VId) -> u64 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }
    fn relax(&self, src_val: u64, w: u32) -> u64 {
        src_val.saturating_add(w as u64)
    }
}

#[derive(Clone, Copy)]
struct CcSpec;

impl MinSpec for CcSpec {
    type Val = u32;
    fn identity(&self) -> u32 {
        u32::MAX
    }
    fn root(&self) -> Option<VId> {
        None
    }
    fn init(&self, v: VId) -> u32 {
        v
    }
    fn relax(&self, src_val: u32, _w: u32) -> u32 {
        src_val
    }
}

/// Incremental BFS over a placed overlay: cold run when `warm` is `None`,
/// frontier-restricted repair otherwise. Values are bit-identical to a
/// from-scratch run either way (unique min fixpoint).
pub fn bfs_overlay(
    machine: &Machine,
    threads: usize,
    topo: &OverlayTopo,
    source: VId,
    warm: Option<WarmStart<'_, u32>>,
    traced: bool,
) -> PolymerResult<RunResult<u32>> {
    min_overlay(machine, threads, topo, BfsSpec { source }, warm, traced)
}

/// Incremental SSSP (weighted Bellman–Ford fixpoint) over a placed
/// overlay. The overlay must be built `with_weights`; weights are strictly
/// positive by batch validation.
pub fn sssp_overlay(
    machine: &Machine,
    threads: usize,
    topo: &OverlayTopo,
    source: VId,
    warm: Option<WarmStart<'_, u64>>,
    traced: bool,
) -> PolymerResult<RunResult<u64>> {
    min_overlay(machine, threads, topo, SsspSpec { source }, warm, traced)
}

/// Incremental connected components over a placed overlay of the
/// *symmetrized* graph; a warm batch must be symmetrized too
/// ([`polymer_graph::DeltaBatch::symmetrize`]). Insert-only batches take
/// the union-find fast path (one relabel sweep, zero repair iterations).
pub fn cc_overlay(
    machine: &Machine,
    threads: usize,
    topo: &OverlayTopo,
    warm: Option<WarmStart<'_, u32>>,
    traced: bool,
) -> PolymerResult<RunResult<u32>> {
    let Some(w) = warm else {
        return min_overlay(machine, threads, topo, CcSpec, None, traced);
    };
    let n = topo.num_vertices();
    assert_eq!(w.values.len(), n, "warm-start value count mismatch");
    let mut driver = IterationDriver::new(machine, threads, BarrierKind::SenseNuma, traced, n);
    let curr =
        machine.alloc_atomic_with::<u32>("data/curr", n, AllocPolicy::Interleaved, |v| v as u32);
    charged_values_restore(driver.sim(), threads, &curr, w.values);
    driver.resume_from_state(w.iterations);
    let mut frontier = cc_repair_seed(&mut driver, threads, &curr, &w);
    min_push_fixpoint(&mut driver, threads, topo, CcSpec, &curr, &mut frontier)?;
    let values = curr.snapshot();
    Ok(driver.finish(values))
}

fn min_overlay<S: MinSpec>(
    machine: &Machine,
    threads: usize,
    topo: &OverlayTopo,
    spec: S,
    warm: Option<WarmStart<'_, S::Val>>,
    traced: bool,
) -> PolymerResult<RunResult<S::Val>> {
    let n = topo.num_vertices();
    let mut driver = IterationDriver::new(machine, threads, BarrierKind::SenseNuma, traced, n);
    let curr = machine.alloc_atomic_with::<S::Val>("data/curr", n, AllocPolicy::Interleaved, |v| {
        spec.init(v as VId)
    });
    let mut frontier = match warm {
        None => match spec.root() {
            Some(s) => vec![s],
            None => (0..n as VId).collect(),
        },
        Some(w) => {
            assert_eq!(w.values.len(), n, "warm-start value count mismatch");
            charged_values_restore(driver.sim(), threads, &curr, w.values);
            driver.resume_from_state(w.iterations);
            path_repair_seed(&mut driver, threads, topo, spec, &curr, w.batch)
        }
    };
    min_push_fixpoint(&mut driver, threads, topo, spec, &curr, &mut frontier)?;
    let values = curr.snapshot();
    Ok(driver.finish(values))
}

/// Old weights of reweighted pairs, for support tests against pre-batch
/// values (the live stream yields the *new* weight).
fn old_weights(batch: &AppliedBatch) -> HashMap<(VId, VId), u32> {
    batch
        .reweighted
        .iter()
        .map(|e| ((e.src, e.dst), e.weight))
        .collect()
}

/// Seed phases of monotone path repair: suspect detection over removed
/// support edges, alternative-support refinement, reset, boundary
/// collection. Returns the initial push frontier.
///
/// A vertex is condemned (reset to the identity) only when **no**
/// still-trusted in-neighbour supports its value at a live weight — the
/// affected-set refinement of the incremental-SSSP literature. Without the
/// requalification check, one deleted tree edge near the root condemns
/// everything downstream and repair degenerates to a from-scratch run;
/// with it, deletes off the shortest-path DAG (the common case in graphs
/// with path diversity) condemn nothing at all. Soundness leans on
/// [`MinSpec::relax`] being strictly increasing (BFS adds 1, SSSP adds a
/// validated non-zero weight), which rules out support cycles.
fn path_repair_seed<S: MinSpec>(
    driver: &mut IterationDriver,
    threads: usize,
    topo: &OverlayTopo,
    spec: S,
    curr: &NumaAtomicArray<S::Val>,
    batch: &AppliedBatch,
) -> Vec<VId> {
    let n = topo.num_vertices();
    let root = spec.root().expect("path repair needs a pinned root");
    let rw = old_weights(batch);

    // Removed support candidates: structural deletes plus reweighted pairs
    // (each carrying the weight the old value was computed with).
    let removed: Vec<Edge> = batch
        .deletes
        .iter()
        .chain(batch.reweighted.iter())
        .copied()
        .collect();
    let mut candidates: Vec<VId> = Vec::new();
    if !removed.is_empty() {
        let chunks = even_chunks(removed.len(), threads);
        driver.sim().run_phase_split(
            "inc/seed",
            |tid, ctx| {
                let mut found = Vec::new();
                for e in &removed[chunks[tid].clone()] {
                    if e.dst == root {
                        continue;
                    }
                    let uv = curr.load(ctx, e.src as usize);
                    if uv == spec.identity() {
                        continue;
                    }
                    if curr.load(ctx, e.dst as usize) == spec.relax(uv, e.weight) {
                        found.push(e.dst);
                    }
                }
                found
            },
            |_, _, found| candidates.extend(found),
        );
        driver.sim().charge_barrier();
    }

    // Refinement waves: requalify candidates against the wave-start
    // suspect set, condemn the unsupported, and re-candidate the
    // out-neighbours the newly condemned were supporting (old *or* live
    // weight — a vertex kept on a supporter that later falls must be
    // re-examined). Each wave condemns at least one vertex, so this
    // terminates.
    let mut suspect = vec![false; n];
    let mut suspects: Vec<VId> = Vec::new();
    while !candidates.is_empty() {
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&v| v != root && !suspect[v as usize]);
        if candidates.is_empty() {
            break;
        }
        let segs = topo.plan_in_segments(&candidates, SEG_GRAIN);
        let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
        let mut verdicts: HashMap<VId, bool> = HashMap::with_capacity(candidates.len());
        driver.sim().run_phase_split(
            "inc/requalify",
            |tid, ctx| {
                let mut out: Vec<(VId, bool)> = Vec::new();
                for &seg in &segs[chunks[tid].clone()] {
                    let t = seg.v;
                    let tv = curr.load(ctx, t as usize);
                    if tv == spec.identity() {
                        // Unreached values are the identity (the maximum):
                        // never wrong in the dangerous direction.
                        out.push((t, true));
                        continue;
                    }
                    let mut kept = false;
                    for (s2, w2) in topo.in_stream_segment(ctx, seg) {
                        if !suspect[s2 as usize] {
                            let sv2 = curr.load(ctx, s2 as usize);
                            if sv2 != spec.identity() && spec.relax(sv2, w2) == tv {
                                kept = true;
                                break;
                            }
                        }
                    }
                    out.push((t, kept));
                }
                out
            },
            |_, _, out| {
                for (t, kept) in out {
                    *verdicts.entry(t).or_insert(false) |= kept;
                }
            },
        );
        driver.sim().charge_barrier();
        // `candidates` is sorted and deduplicated, so the filtered
        // condemned list is too.
        let condemned: Vec<VId> = candidates
            .iter()
            .copied()
            .filter(|t| !verdicts.get(t).copied().unwrap_or(false))
            .collect();
        if condemned.is_empty() {
            break;
        }
        for &v in &condemned {
            suspect[v as usize] = true;
        }
        let segs = topo.plan_out_segments(&condemned, SEG_GRAIN);
        let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
        let mut next: Vec<VId> = Vec::new();
        driver.sim().run_phase_split(
            "inc/cascade",
            |tid, ctx| {
                let mut out = Vec::new();
                for &seg in &segs[chunks[tid].clone()] {
                    let s = seg.v;
                    let sv = curr.load(ctx, s as usize);
                    if sv == spec.identity() {
                        continue;
                    }
                    for (t, w) in topo.out_stream_segment(ctx, seg) {
                        // Old support used the old weight where the pair
                        // was reweighted.
                        let w_old = rw.get(&(s, t)).copied().unwrap_or(w);
                        let tv = curr.load(ctx, t as usize);
                        if tv == spec.relax(sv, w_old) || tv == spec.relax(sv, w) {
                            out.push(t);
                        }
                    }
                }
                out
            },
            |_, _, f| next.extend(f),
        );
        driver.sim().charge_barrier();
        suspects.extend_from_slice(&condemned);
        candidates = next;
    }

    // One fused phase cuts the reset region out and re-pulls it: the
    // compute half walks each suspect's in-segments computing the best
    // offer from still-trusted (non-suspect, finite) in-neighbours, the
    // publish half resets the suspects themselves to the identity. The
    // reads touch only non-suspect values and the writes only suspect
    // slots, so the split contract holds. Pulling (suspects × in-degree
    // reads) replaces the boundary-push alternative (boundary sources ×
    // their full out-degree), which re-scans every list adjacent to the
    // region; the pulled minima are applied as offers in the graft phase
    // below, after the resets land.
    let mut pulled: Vec<(VId, S::Val)> = Vec::new();
    if !suspects.is_empty() {
        let segs = topo.plan_in_segments(&suspects, SEG_GRAIN);
        let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
        let reset_chunks = even_chunks(suspects.len(), threads);
        driver.sim().run_phase_split(
            "inc/reset",
            |tid, ctx| {
                let mut out: Vec<(VId, S::Val)> = Vec::new();
                for &seg in &segs[chunks[tid].clone()] {
                    let mut best = spec.identity();
                    for (s, w) in topo.in_stream_segment(ctx, seg) {
                        if !suspect[s as usize] {
                            let sv = curr.load(ctx, s as usize);
                            if sv != spec.identity() {
                                let c = spec.relax(sv, w);
                                if c < best {
                                    best = c;
                                }
                            }
                        }
                    }
                    if best != spec.identity() {
                        out.push((seg.v, best));
                    }
                }
                out
            },
            |tid, ctx, out| {
                pulled.extend(out);
                for &v in &suspects[reset_chunks[tid].clone()] {
                    curr.store(ctx, v as usize, spec.identity());
                }
            },
        );
        driver.sim().charge_barrier();
    }

    // Graft: inserted edges (including reweight-decreases, which surface in
    // `inserts` at their new weight) relax exactly once, and the pulled
    // repair offers land on the freshly reset region. A non-suspect source
    // is converged, so its only possibly-improving offers run along its NEW
    // edges — scanning its whole adjacency would be wasted charge.
    // Identity-valued (suspect or unreached) sources skip; their offers
    // arrive through the ordinary push rounds once their value recovers.
    let mut frontier: Vec<VId> = Vec::new();
    if !batch.inserts.is_empty() || !pulled.is_empty() {
        let chunks = even_chunks(batch.inserts.len(), threads);
        let pull_chunks = even_chunks(pulled.len(), threads);
        driver.sim().run_phase_split(
            "inc/graft",
            |tid, ctx| {
                let mut out: Vec<(VId, S::Val)> = Vec::new();
                for e in &batch.inserts[chunks[tid].clone()] {
                    let sv = curr.load(ctx, e.src as usize);
                    if sv == spec.identity() {
                        continue;
                    }
                    out.push((e.dst, spec.relax(sv, e.weight)));
                }
                out
            },
            |tid, ctx, out| {
                for (t, c) in out
                    .into_iter()
                    .chain(pulled[pull_chunks[tid].clone()].iter().copied())
                {
                    let old = curr.fetch_min(ctx, t as usize, c);
                    if c < old {
                        frontier.push(t);
                    }
                }
            },
        );
        driver.sim().charge_barrier();
    }
    frontier.sort_unstable();
    frontier.dedup();
    frontier
}

/// Seed phase of component repair. Insert-only: host union-find over prior
/// labels plus one charged relabel sweep, empty frontier (zero repair
/// iterations). With structural deletes: reset every vertex of an affected
/// component and seed propagation from resets plus insert endpoints.
fn cc_repair_seed(
    driver: &mut IterationDriver,
    threads: usize,
    curr: &NumaAtomicArray<u32>,
    warm: &WarmStart<'_, u32>,
) -> Vec<VId> {
    let n = warm.values.len();
    let batch = warm.batch;
    if batch.deletes.is_empty() {
        let resolved = resolve_labels(&batch.inserts, warm.values);
        if resolved.is_empty() {
            return Vec::new();
        }
        let chunks = even_chunks(n, threads);
        driver.sim().run_phase_split(
            "inc/relabel",
            |tid, ctx| {
                let r = chunks[tid].clone();
                let vals: Vec<u32> = curr.iter_seq(ctx, r.clone()).collect();
                curr.store_seq(ctx, r.clone(), |i| {
                    let l = vals[i - r.start];
                    resolved.get(&l).copied().unwrap_or(l)
                });
            },
            |_, _, ()| {},
        );
        driver.sim().charge_barrier();
        return Vec::new();
    }
    // Labels of components a structural delete touched; every member of
    // those components is reset to its own id (weight changes don't touch
    // connectivity and are excluded — they appear only in `reweighted`).
    let affected: std::collections::HashSet<u32> = batch
        .deletes
        .iter()
        .flat_map(|e| [warm.values[e.src as usize], warm.values[e.dst as usize]])
        .collect();
    let resets: Vec<VId> = (0..n as VId)
        .filter(|&v| affected.contains(&warm.values[v as usize]))
        .collect();
    if !resets.is_empty() {
        let chunks = even_chunks(resets.len(), threads);
        driver.sim().run_phase_split(
            "inc/reset",
            |tid, ctx| {
                for &v in &resets[chunks[tid].clone()] {
                    curr.store(ctx, v as usize, v);
                }
            },
            |_, _, ()| {},
        );
        driver.sim().charge_barrier();
    }
    let mut frontier = resets;
    frontier.extend(batch.inserts.iter().flat_map(|e| [e.src, e.dst]));
    frontier.sort_unstable();
    frontier.dedup();
    frontier
}

/// Union-find over the prior labels of the insert endpoints, by-min (labels
/// are component minima, so the merged label stays the component minimum).
/// Returns the non-identity mappings `old label -> merged label`.
fn resolve_labels(inserts: &[Edge], labels: &[u32]) -> HashMap<u32, u32> {
    fn find(parent: &mut HashMap<u32, u32>, mut x: u32) -> u32 {
        while let Some(&p) = parent.get(&x) {
            if p == x {
                break;
            }
            let gp = parent.get(&p).copied().unwrap_or(p);
            parent.insert(x, gp);
            x = gp;
        }
        x
    }
    let mut parent: HashMap<u32, u32> = HashMap::new();
    for e in inserts {
        let a = find(&mut parent, labels[e.src as usize]);
        let b = find(&mut parent, labels[e.dst as usize]);
        if a != b {
            let (lo, hi) = (a.min(b), a.max(b));
            parent.insert(hi, lo);
        }
    }
    let touched: Vec<u32> = inserts
        .iter()
        .flat_map(|e| [labels[e.src as usize], labels[e.dst as usize]])
        .collect();
    let mut resolved = HashMap::new();
    for l in touched {
        let r = find(&mut parent, l);
        if r != l {
            resolved.insert(l, r);
        }
    }
    resolved
}

/// Base-edge grain for splitting one vertex's out-adjacency across threads
/// ([`OverlayTopo::plan_out_segments`]). Warm frontiers are tiny and
/// hub-biased (batches sample live edges, so endpoints skew to high-degree
/// vertices); without splitting, a single hub scan serializes a whole
/// scatter round behind one thread.
const SEG_GRAIN: usize = 128;

/// The monotone push fixpoint: active vertices offer `relax(curr, w)` along
/// merged out-streams, targets take the min atomically, improved targets
/// form the next frontier. Runs until the frontier drains. Scatter work is
/// segment-balanced: heavy vertices split across threads at [`SEG_GRAIN`]
/// base edges (the source value is re-read per segment — charged).
fn min_push_fixpoint<S: MinSpec>(
    driver: &mut IterationDriver,
    threads: usize,
    topo: &OverlayTopo,
    spec: S,
    curr: &NumaAtomicArray<S::Val>,
    frontier: &mut Vec<VId>,
) -> PolymerResult<()> {
    let sc = spec.scatter_cycles();
    driver.run_synchronous(
        usize::MAX,
        frontier,
        |f| !f.is_empty(),
        |sim, _i, f| {
            let items = std::mem::take(f);
            let segs = topo.plan_out_segments(&items, SEG_GRAIN);
            let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
            let mut improved: Vec<VId> = Vec::new();
            sim.run_phase_split(
                "inc/push",
                |tid, ctx| {
                    let mut log: Vec<(VId, S::Val)> = Vec::new();
                    for &seg in &segs[chunks[tid].clone()] {
                        let sv = curr.load(ctx, seg.v as usize);
                        if sv == spec.identity() {
                            continue;
                        }
                        for (t, w) in topo.out_stream_segment(ctx, seg) {
                            log.push((t, spec.relax(sv, w)));
                            ctx.charge_cycles(sc);
                        }
                    }
                    log
                },
                |_tid, ctx, log| {
                    for (t, c) in log {
                        let old = curr.fetch_min(ctx, t as usize, c);
                        if c < old {
                            improved.push(t);
                        }
                    }
                },
            );
            sim.charge_barrier();
            improved.sort_unstable();
            improved.dedup();
            *f = improved;
            Ok(())
        },
    )
}

/// Incremental PageRank over a placed overlay: cold residual run when
/// `warm` is `None`, recompute-and-propagate repair otherwise. Converges to
/// the damped PageRank fixpoint to within `tol` residual mass per vertex
/// (ε-close to a from-scratch run, not bit-identical — float order).
pub fn pagerank_overlay(
    machine: &Machine,
    threads: usize,
    topo: &OverlayTopo,
    damping: f64,
    tol: f64,
    warm: Option<WarmStart<'_, f64>>,
    traced: bool,
) -> PolymerResult<RunResult<f64>> {
    let n = topo.num_vertices();
    let nf = n as f64;
    let base_score = (1.0 - damping) / nf;
    // Residual rounds scale with log(1/tol)/log(1/damping), independent of
    // |V|; give small graphs a cap that still fits the geometric tail.
    let mut driver =
        IterationDriver::new(machine, threads, BarrierKind::SenseNuma, traced, n.max(512));
    let curr =
        machine.alloc_atomic_with::<f64>("data/curr", n, AllocPolicy::Interleaved, |_| base_score);
    let next = machine.alloc_atomic_with::<f64>("data/next", n, AllocPolicy::Interleaved, |_| 0.0);
    let mut delta: Vec<f64> = vec![0.0; n];
    let mut frontier: Vec<VId>;
    match warm {
        None => {
            // Every vertex still owes its initial mass downstream.
            delta.iter_mut().for_each(|d| *d = base_score);
            frontier = (0..n as VId).collect();
        }
        Some(w) => {
            assert_eq!(w.values.len(), n, "warm-start value count mismatch");
            charged_values_restore(driver.sim(), threads, &curr, w.values);
            driver.resume_from_state(w.iterations);
            frontier = pr_recompute(&mut driver, threads, topo, &curr, &mut delta, w.batch, {
                PrParams {
                    damping,
                    tol,
                    base_score,
                }
            });
        }
    }
    pr_residual_fixpoint(
        &mut driver,
        threads,
        topo,
        &curr,
        &next,
        &mut delta,
        &mut frontier,
        PrParams {
            damping,
            tol,
            base_score,
        },
    )?;
    Ok(driver.finish(curr.snapshot()))
}

#[derive(Clone, Copy)]
struct PrParams {
    damping: f64,
    tol: f64,
    base_score: f64,
}

/// Recompute the PageRank equation for every vertex whose in-edge set or
/// in-neighbour degrees the batch changed; record residuals and return the
/// over-tolerance seeds.
fn pr_recompute(
    driver: &mut IterationDriver,
    threads: usize,
    topo: &OverlayTopo,
    curr: &NumaAtomicArray<f64>,
    delta: &mut [f64],
    batch: &AppliedBatch,
    p: PrParams,
) -> Vec<VId> {
    // Direct in-edge changes: every batch destination. Degree changes:
    // sources of structural inserts/deletes divide their pushed mass by a
    // new live degree, so each of their out-neighbours re-pulls too.
    let mut seeds: Vec<VId> = batch
        .inserts
        .iter()
        .chain(batch.deletes.iter())
        .map(|e| e.dst)
        .collect();
    let mut deg_changed: Vec<VId> = batch
        .inserts
        .iter()
        .chain(batch.deletes.iter())
        .map(|e| e.src)
        .collect();
    deg_changed.sort_unstable();
    deg_changed.dedup();
    if !deg_changed.is_empty() {
        let segs = topo.plan_out_segments(&deg_changed, SEG_GRAIN);
        let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
        driver.sim().run_phase_split(
            "inc/seed",
            |tid, ctx| {
                let mut out = Vec::new();
                for &seg in &segs[chunks[tid].clone()] {
                    for (t, _w) in topo.out_stream_segment(ctx, seg) {
                        out.push(t);
                    }
                }
                out
            },
            |_, _, out| seeds.extend(out),
        );
        driver.sim().charge_barrier();
    }
    seeds.sort_unstable();
    seeds.dedup();
    if seeds.is_empty() {
        return seeds;
    }
    let mut residuals: Vec<(VId, f64)> = Vec::with_capacity(seeds.len());
    {
        let chunks = even_chunks(seeds.len(), threads);
        driver.sim().run_phase_split(
            "inc/recompute",
            |tid, ctx| {
                let mut out = Vec::new();
                for &v in &seeds[chunks[tid].clone()] {
                    let mut sum = 0.0;
                    for (u, _w) in topo.in_stream(ctx, v as usize) {
                        let du = topo.live_out_deg.get(ctx, u as usize);
                        if du > 0 {
                            sum += curr.load(ctx, u as usize) / du as f64;
                        }
                    }
                    let new = p.base_score + p.damping * sum;
                    let old = curr.load(ctx, v as usize);
                    out.push((v, new, new - old));
                }
                out
            },
            |_, ctx, out| {
                for (v, new, d) in out {
                    curr.store(ctx, v as usize, new);
                    residuals.push((v, d));
                }
            },
        );
        driver.sim().charge_barrier();
    }
    let mut frontier = Vec::new();
    for (v, d) in residuals {
        delta[v as usize] = d;
        if d.abs() > p.tol {
            frontier.push(v);
        }
    }
    frontier.sort_unstable();
    frontier
}

/// Residual propagation rounds: each active vertex pushes
/// `damping·delta/live_deg` along its merged out-stream (atomic adds into
/// `next`); touched targets fold the received mass into their score, adopt
/// it as their new residual, and stay active while above `tol`.
#[allow(clippy::too_many_arguments)]
fn pr_residual_fixpoint(
    driver: &mut IterationDriver,
    threads: usize,
    topo: &OverlayTopo,
    curr: &NumaAtomicArray<f64>,
    next: &NumaAtomicArray<f64>,
    delta: &mut [f64],
    frontier: &mut Vec<VId>,
    p: PrParams,
) -> PolymerResult<()> {
    driver.run_synchronous(
        usize::MAX,
        frontier,
        |f| !f.is_empty(),
        |sim, _i, f| {
            let items = std::mem::take(f);
            let segs = topo.plan_out_segments(&items, SEG_GRAIN);
            let chunks = weight_balanced_chunks(&segs, |s| s.weight as usize, threads);
            let mut touched: Vec<VId> = Vec::new();
            {
                let delta_r: &[f64] = delta;
                sim.run_phase_split(
                    "inc/push",
                    |tid, ctx| {
                        let mut log: Vec<(VId, f64)> = Vec::new();
                        for &seg in &segs[chunks[tid].clone()] {
                            let u = seg.v;
                            let du = topo.live_out_deg.get(ctx, u as usize);
                            if du == 0 {
                                continue;
                            }
                            let c = p.damping * delta_r[u as usize] / du as f64;
                            for (t, _w) in topo.out_stream_segment(ctx, seg) {
                                log.push((t, c));
                                ctx.charge_cycles(6.0);
                            }
                        }
                        log
                    },
                    |_tid, ctx, log| {
                        for (t, c) in log {
                            next.fetch_add(ctx, t as usize, c);
                            touched.push(t);
                        }
                    },
                );
            }
            sim.charge_barrier();
            touched.sort_unstable();
            touched.dedup();
            let chunks = even_chunks(touched.len(), threads);
            let mut alive: Vec<VId> = Vec::new();
            sim.run_phase_split(
                "inc/apply",
                |tid, ctx| {
                    let mut out = Vec::new();
                    for &t in &touched[chunks[tid].clone()] {
                        let acc = next.load(ctx, t as usize);
                        next.store(ctx, t as usize, 0.0);
                        let x = curr.load(ctx, t as usize);
                        curr.store(ctx, t as usize, x + acc);
                        out.push((t, acc));
                    }
                    out
                },
                |_, _, out| {
                    for (t, acc) in out {
                        delta[t as usize] = acc;
                        if acc.abs() > p.tol {
                            alive.push(t);
                        }
                    }
                },
            );
            sim.charge_barrier();
            *f = alive;
            Ok(())
        },
    )
}

// ---------------------------------------------------------------------------
// Host backend: the same repairs over `MutableGraph` merged iterators on
// plain host memory. Real wall-clock, zero simulation overhead; sequential
// within-round relaxation (still the same unique fixpoint for the min
// programs).
// ---------------------------------------------------------------------------

/// Host-backend incremental BFS. Returns `(values, repair rounds)`.
pub fn bfs_host(
    mg: &MutableGraph,
    source: VId,
    warm: Option<WarmStart<'_, u32>>,
) -> (Vec<u32>, usize) {
    min_host(mg, BfsSpec { source }, warm)
}

/// Host-backend incremental SSSP. Returns `(values, repair rounds)`.
pub fn sssp_host(
    mg: &MutableGraph,
    source: VId,
    warm: Option<WarmStart<'_, u64>>,
) -> (Vec<u64>, usize) {
    min_host(mg, SsspSpec { source }, warm)
}

/// Host-backend incremental connected components (`mg` symmetrized, batch
/// symmetrized). Returns `(labels, repair rounds)`.
pub fn cc_host(mg: &MutableGraph, warm: Option<WarmStart<'_, u32>>) -> (Vec<u32>, usize) {
    let n = mg.num_vertices();
    let Some(w) = warm else {
        return min_host(mg, CcSpec, None);
    };
    let batch = w.batch;
    let mut curr = w.values.to_vec();
    if batch.deletes.is_empty() {
        let resolved = resolve_labels(&batch.inserts, w.values);
        for l in curr.iter_mut() {
            if let Some(&r) = resolved.get(l) {
                *l = r;
            }
        }
        return (curr, 0);
    }
    let affected: std::collections::HashSet<u32> = batch
        .deletes
        .iter()
        .flat_map(|e| [w.values[e.src as usize], w.values[e.dst as usize]])
        .collect();
    let mut frontier: Vec<VId> = (0..n as VId)
        .filter(|&v| affected.contains(&w.values[v as usize]))
        .collect();
    for &v in &frontier {
        curr[v as usize] = v;
    }
    frontier.extend(batch.inserts.iter().flat_map(|e| [e.src, e.dst]));
    frontier.sort_unstable();
    frontier.dedup();
    let rounds = host_push_rounds(mg, CcSpec, &mut curr, frontier);
    (curr, rounds)
}

fn min_host<S: MinSpec>(
    mg: &MutableGraph,
    spec: S,
    warm: Option<WarmStart<'_, S::Val>>,
) -> (Vec<S::Val>, usize) {
    let n = mg.num_vertices();
    let (mut curr, frontier) = match warm {
        None => {
            let curr: Vec<S::Val> = (0..n as VId).map(|v| spec.init(v)).collect();
            let frontier = match spec.root() {
                Some(s) => vec![s],
                None => (0..n as VId).collect(),
            };
            (curr, frontier)
        }
        Some(w) => {
            assert_eq!(w.values.len(), n, "warm-start value count mismatch");
            let mut curr = w.values.to_vec();
            let frontier = host_path_repair_seed(mg, spec, &mut curr, w.batch);
            (curr, frontier)
        }
    };
    let rounds = host_push_rounds(mg, spec, &mut curr, frontier);
    (curr, rounds)
}

fn host_path_repair_seed<S: MinSpec>(
    mg: &MutableGraph,
    spec: S,
    curr: &mut [S::Val],
    batch: &AppliedBatch,
) -> Vec<VId> {
    let root = spec.root().expect("path repair needs a pinned root");
    let rw = old_weights(batch);
    let n = curr.len();
    let mut suspect = vec![false; n];
    let mut suspects: Vec<VId> = Vec::new();
    // Same alternative-support refinement as the overlay engine (see
    // `path_repair_seed`): condemn a candidate only when no still-trusted
    // in-neighbour supports its value at a live weight.
    let mut candidates: Vec<VId> = Vec::new();
    for e in batch.deletes.iter().chain(batch.reweighted.iter()) {
        if e.dst == root || curr[e.src as usize] == spec.identity() {
            continue;
        }
        if curr[e.dst as usize] == spec.relax(curr[e.src as usize], e.weight) {
            candidates.push(e.dst);
        }
    }
    while !candidates.is_empty() {
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&v| v != root && !suspect[v as usize]);
        let condemned: Vec<VId> = candidates
            .iter()
            .copied()
            .filter(|&t| {
                let tv = curr[t as usize];
                tv != spec.identity()
                    && !mg.in_edges(t).any(|(s2, w2)| {
                        !suspect[s2 as usize]
                            && curr[s2 as usize] != spec.identity()
                            && spec.relax(curr[s2 as usize], w2) == tv
                    })
            })
            .collect();
        if condemned.is_empty() {
            break;
        }
        for &v in &condemned {
            suspect[v as usize] = true;
        }
        let mut next: Vec<VId> = Vec::new();
        for &s in &condemned {
            let sv = curr[s as usize];
            if sv == spec.identity() {
                continue;
            }
            for (t, w) in mg.out_edges(s) {
                if t == root || suspect[t as usize] {
                    continue;
                }
                let w_old = rw.get(&(s, t)).copied().unwrap_or(w);
                let tv = curr[t as usize];
                if tv == spec.relax(sv, w_old) || tv == spec.relax(sv, w) {
                    next.push(t);
                }
            }
        }
        suspects.extend_from_slice(&condemned);
        candidates = next;
    }
    let mut frontier: Vec<VId> = Vec::new();
    for &v in &suspects {
        for (s, _w) in mg.in_edges(v) {
            if !suspect[s as usize] && curr[s as usize] != spec.identity() {
                frontier.push(s);
            }
        }
    }
    for &v in &suspects {
        curr[v as usize] = spec.identity();
    }
    frontier.extend(batch.inserts.iter().map(|e| e.src));
    frontier.sort_unstable();
    frontier.dedup();
    frontier
}

fn host_push_rounds<S: MinSpec>(
    mg: &MutableGraph,
    spec: S,
    curr: &mut [S::Val],
    mut frontier: Vec<VId>,
) -> usize {
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let mut improved: Vec<VId> = Vec::new();
        for &s in &frontier {
            let sv = curr[s as usize];
            if sv == spec.identity() {
                continue;
            }
            for (t, w) in mg.out_edges(s) {
                let c = spec.relax(sv, w);
                if c < curr[t as usize] {
                    curr[t as usize] = c;
                    improved.push(t);
                }
            }
        }
        improved.sort_unstable();
        improved.dedup();
        frontier = improved;
    }
    rounds
}

/// Host-backend incremental PageRank. Returns `(scores, repair rounds)`.
pub fn pagerank_host(
    mg: &MutableGraph,
    damping: f64,
    tol: f64,
    warm: Option<WarmStart<'_, f64>>,
) -> (Vec<f64>, usize) {
    let n = mg.num_vertices();
    let nf = n as f64;
    let base_score = (1.0 - damping) / nf;
    let mut curr: Vec<f64>;
    let mut delta: Vec<f64> = vec![0.0; n];
    let mut frontier: Vec<VId>;
    match warm {
        None => {
            curr = vec![base_score; n];
            delta.iter_mut().for_each(|d| *d = base_score);
            frontier = (0..n as VId).collect();
        }
        Some(w) => {
            assert_eq!(w.values.len(), n, "warm-start value count mismatch");
            curr = w.values.to_vec();
            let batch = w.batch;
            let mut seeds: Vec<VId> = batch
                .inserts
                .iter()
                .chain(batch.deletes.iter())
                .map(|e| e.dst)
                .collect();
            let mut deg_changed: Vec<VId> = batch
                .inserts
                .iter()
                .chain(batch.deletes.iter())
                .map(|e| e.src)
                .collect();
            deg_changed.sort_unstable();
            deg_changed.dedup();
            for &u in &deg_changed {
                seeds.extend(mg.out_edges(u).map(|(t, _)| t));
            }
            seeds.sort_unstable();
            seeds.dedup();
            frontier = Vec::new();
            let news: Vec<(VId, f64)> = seeds
                .iter()
                .map(|&v| {
                    let sum: f64 = mg
                        .in_edges(v)
                        .map(|(u, _)| {
                            let du = mg.live_out_degree(u);
                            if du > 0 {
                                curr[u as usize] / du as f64
                            } else {
                                0.0
                            }
                        })
                        .sum();
                    (v, base_score + damping * sum)
                })
                .collect();
            for (v, new) in news {
                let d = new - curr[v as usize];
                curr[v as usize] = new;
                delta[v as usize] = d;
                if d.abs() > tol {
                    frontier.push(v);
                }
            }
            frontier.sort_unstable();
        }
    }
    let mut next = vec![0.0f64; n];
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let mut touched: Vec<VId> = Vec::new();
        for &u in &frontier {
            let du = mg.live_out_degree(u);
            if du == 0 {
                continue;
            }
            let c = damping * delta[u as usize] / du as f64;
            for (t, _w) in mg.out_edges(u) {
                next[t as usize] += c;
                touched.push(t);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let mut alive: Vec<VId> = Vec::new();
        for &t in &touched {
            let acc = next[t as usize];
            next[t as usize] = 0.0;
            curr[t as usize] += acc;
            delta[t as usize] = acc;
            if acc.abs() > tol {
                alive.push(t);
            }
        }
        frontier = alive;
    }
    (curr, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_rel_error;
    use polymer_graph::{gen, DeltaBatch, EdgeList, Graph};
    use polymer_numa::MachineSpec;

    const THREADS: usize = 4;

    fn build_topo(machine: &Machine, mg: &MutableGraph, with_weights: bool) -> OverlayTopo {
        OverlayTopo::build(machine, mg, with_weights, |_| AllocPolicy::Interleaved)
    }

    fn scratch_graph(mg: &MutableGraph) -> Graph {
        Graph::from_edges(&mg.snapshot_edge_list())
    }

    fn test_batch(mg: &MutableGraph, seed: u64, k: usize) -> DeltaBatch {
        // Deterministic mix of deletes (live edges), inserts (fresh pairs),
        // and reweights, derived from the live edge set.
        let el = mg.snapshot_edge_list();
        let n = mg.num_vertices() as u64;
        let mut b = DeltaBatch::new();
        for i in 0..k {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            let e = el.edges[(h % el.edges.len() as u64) as usize];
            match i % 3 {
                0 => {
                    b.delete(e.src, e.dst);
                }
                1 => {
                    let s = (h >> 8) % n;
                    let d = (h >> 24) % n;
                    if s != d {
                        b.insert(s as VId, d as VId, 1 + (h % 90) as u32);
                    }
                }
                _ => {
                    b.insert(e.src, e.dst, 1 + ((h >> 16) % 90) as u32);
                }
            }
        }
        b
    }

    #[test]
    fn cold_bfs_matches_reference() {
        let el = gen::uniform(200, 1200, 7);
        let mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, false);
        let run = bfs_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();
        let (oracle, _) = crate::run_reference(&scratch_graph(&mg), &crate::Bfs { source: 0 });
        assert_eq!(run.values, oracle);
        let (host, _) = bfs_host(&mg, 0, None);
        assert_eq!(host, oracle);
    }

    #[test]
    fn warm_bfs_and_sssp_match_scratch_after_batch() {
        let el = gen::uniform(300, 2000, 11);
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());

        let topo = build_topo(&machine, &mg, true);
        let prior_bfs = bfs_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();
        let prior_sssp = sssp_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();

        let applied = mg.apply(&test_batch(&mg, 3, 24)).unwrap();
        let topo = build_topo(&machine, &mg, true);
        let g2 = scratch_graph(&mg);

        let warm = WarmStart::from_result(&prior_bfs, &applied);
        let run = bfs_overlay(&machine, THREADS, &topo, 0, Some(warm), false).unwrap();
        let (oracle, _) = crate::run_reference(&g2, &crate::Bfs { source: 0 });
        assert_eq!(run.values, oracle, "incremental BFS must be oracle-exact");
        assert!(run.iterations >= prior_bfs.iterations);
        let (host, _) = bfs_host(&mg, 0, Some(warm));
        assert_eq!(host, oracle, "host-backend BFS must be oracle-exact");

        let warm = WarmStart::from_result(&prior_sssp, &applied);
        let run = sssp_overlay(&machine, THREADS, &topo, 0, Some(warm), false).unwrap();
        let (oracle, _) = crate::run_reference(&g2, &crate::Sssp::new(0));
        assert_eq!(run.values, oracle, "incremental SSSP must be oracle-exact");
        let (host, _) = sssp_host(&mg, 0, Some(warm));
        assert_eq!(host, oracle, "host-backend SSSP must be oracle-exact");
    }

    #[test]
    fn warm_cc_insert_only_takes_union_find_fast_path() {
        // Two chains, symmetrized; an insert bridges them.
        let mut el = EdgeList::new(8);
        for (s, d) in [(0u32, 1u32), (1, 2), (4, 5), (5, 6), (6, 7)] {
            el.push(polymer_graph::Edge::weighted(s, d, 1));
            el.push(polymer_graph::Edge::weighted(d, s, 1));
        }
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, false);
        let prior = cc_overlay(&machine, THREADS, &topo, None, false).unwrap();

        let mut b = DeltaBatch::new();
        b.insert(2, 4, 1);
        b.symmetrize();
        let applied = mg.apply(&b).unwrap();
        let topo = build_topo(&machine, &mg, false);
        let warm = WarmStart::from_result(&prior, &applied);
        let run = cc_overlay(&machine, THREADS, &topo, Some(warm), false).unwrap();
        let (oracle, _) = crate::run_reference(&scratch_graph(&mg), &crate::ConnectedComponents);
        assert_eq!(run.values, oracle);
        // Union-find fast path: relabel only, zero repair iterations.
        assert_eq!(run.iterations, prior.iterations);
        let (host, rounds) = cc_host(&mg, Some(warm));
        assert_eq!(host, oracle);
        assert_eq!(rounds, 0);
    }

    #[test]
    fn warm_cc_with_deletes_matches_scratch() {
        let mut el = gen::uniform(150, 500, 13);
        // Symmetrize the base for CC.
        let rev: Vec<polymer_graph::Edge> = el.edges.iter().map(|e| e.reversed()).collect();
        el.edges.extend(rev);
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, false);
        let prior = cc_overlay(&machine, THREADS, &topo, None, false).unwrap();

        // Delete a handful of live symmetric pairs, insert one bridge.
        let el = mg.snapshot_edge_list();
        let mut b = DeltaBatch::new();
        for e in el.edges.iter().step_by(37).take(6) {
            b.delete(e.src, e.dst).delete(e.dst, e.src);
        }
        b.insert(3, 120, 1);
        b.insert(120, 3, 1);
        let applied = mg.apply(&b).unwrap();
        let topo = build_topo(&machine, &mg, false);
        let warm = WarmStart::from_result(&prior, &applied);
        let run = cc_overlay(&machine, THREADS, &topo, Some(warm), false).unwrap();
        let (oracle, _) = crate::run_reference(&scratch_graph(&mg), &crate::ConnectedComponents);
        assert_eq!(run.values, oracle);
        let (host, _) = cc_host(&mg, Some(warm));
        assert_eq!(host, oracle);
    }

    #[test]
    fn warm_pagerank_is_close_to_scratch() {
        let el = gen::uniform(200, 1500, 17);
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, false);
        let prior =
            pagerank_overlay(&machine, THREADS, &topo, 0.85, DEFAULT_PR_TOL, None, false).unwrap();

        let applied = mg.apply(&test_batch(&mg, 5, 18)).unwrap();
        let topo = build_topo(&machine, &mg, false);
        let warm = WarmStart::from_result(&prior, &applied);
        let inc = pagerank_overlay(
            &machine,
            THREADS,
            &topo,
            0.85,
            DEFAULT_PR_TOL,
            Some(warm),
            false,
        )
        .unwrap();
        let scratch =
            pagerank_overlay(&machine, THREADS, &topo, 0.85, DEFAULT_PR_TOL, None, false).unwrap();
        assert!(
            max_rel_error(&inc.values, &scratch.values) < 1e-6,
            "incremental PageRank diverged from scratch: {}",
            max_rel_error(&inc.values, &scratch.values)
        );
        let (host, _) = pagerank_host(&mg, 0.85, DEFAULT_PR_TOL, Some(warm));
        assert!(max_rel_error(&host, &scratch.values) < 1e-6);
    }

    #[test]
    fn small_batch_repair_is_cheaper_than_scratch() {
        let el = gen::rmat(11, 16_000, (0.57, 0.19, 0.19), 42);
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, false);
        let prior = bfs_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();

        let mut b = DeltaBatch::new();
        b.insert(1, 2, 5).insert(100, 200, 3);
        let applied = mg.apply(&b).unwrap();
        let topo = build_topo(&machine, &mg, false);
        let warm = WarmStart::from_result(&prior, &applied);
        let inc = bfs_overlay(&machine, THREADS, &topo, 0, Some(warm), false).unwrap();
        let scratch = bfs_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();
        assert_eq!(inc.values, scratch.values);
        assert!(
            inc.clock.elapsed_us() < scratch.clock.elapsed_us() / 2.0,
            "tiny-batch repair ({:.1}µs) should be far cheaper than scratch ({:.1}µs)",
            inc.clock.elapsed_us(),
            scratch.clock.elapsed_us()
        );
    }

    #[test]
    fn empty_batch_repair_is_a_cheap_noop() {
        let el = gen::uniform(100, 600, 23);
        let mut mg = MutableGraph::from_edge_list(el).with_compaction_fraction(f64::INFINITY);
        let machine = Machine::new(MachineSpec::test2());
        let topo = build_topo(&machine, &mg, true);
        let prior = sssp_overlay(&machine, THREADS, &topo, 0, None, false).unwrap();
        let applied = mg.apply(&DeltaBatch::new()).unwrap();
        assert!(applied.is_noop());
        let warm = WarmStart::from_result(&prior, &applied);
        let run = sssp_overlay(&machine, THREADS, &topo, 0, Some(warm), false).unwrap();
        assert_eq!(run.values, prior.values);
        assert_eq!(run.iterations, prior.iterations, "no repair rounds");
    }
}
