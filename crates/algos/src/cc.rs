//! Connected components by label propagation (Zhu & Ghahramani, the paper's ref. 49, in the
//! paper): every vertex starts with its own id as label and repeatedly takes
//! the minimum label among itself and its neighbors. Run over the
//! symmetrized graph, the fixed point assigns every vertex the minimum
//! vertex id of its (weakly) connected component — the same fixed point the
//! Galois-like engine's union-find specialization produces, so all engines
//! agree exactly.

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// The connected-components program. `Val` is the current component label.
#[derive(Clone, Debug, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// A new CC program.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl Program for ConnectedComponents {
    type Val = u32;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn combine(&self) -> Combine {
        Combine::Min
    }

    fn next_identity(&self) -> u32 {
        u32::MAX
    }

    fn init(&self, v: VId, _g: &Graph) -> u32 {
        v
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: u32, _w: Weight, _src_out_degree: u32) -> u32 {
        src_val
    }

    #[inline]
    fn apply(&self, _v: VId, acc: u32, curr: u32) -> (u32, bool) {
        if acc < curr {
            (acc, true)
        } else {
            (curr, false)
        }
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::All
    }

    fn max_iters(&self) -> usize {
        usize::MAX
    }

    fn needs_symmetric(&self) -> bool {
        true
    }

    #[inline]
    fn fold(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn val_from_u64(&self, raw: u64) -> u32 {
        raw as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::EdgeList;

    #[test]
    fn init_is_own_id() {
        let g = Graph::from_edges(&EdgeList::from_pairs(3, [(0, 1)]));
        let cc = ConnectedComponents::new();
        assert_eq!(cc.init(2, &g), 2);
        assert!(cc.needs_symmetric());
    }

    #[test]
    fn apply_takes_smaller_label() {
        let cc = ConnectedComponents::new();
        assert_eq!(cc.apply(0, 1, 5), (1, true));
        assert_eq!(cc.apply(0, 7, 5), (5, false));
        assert_eq!(cc.apply(0, u32::MAX, 5), (5, false));
    }

    #[test]
    fn scatter_forwards_label() {
        let cc = ConnectedComponents::new();
        assert_eq!(cc.scatter(9, 3, 1, 2), 3);
        assert_eq!(cc.val_from_u64(7), 7);
    }
}
