//! PageRank (paper Algorithm 4.1): synchronous, push-based.
//!
//! `Dnext[t] += Dcurr[s] / |Nout(s)|` along every active edge, then
//! `Dnext[v] ← 0.15/|V| + 0.85 × Dnext[v]`; a vertex stays alive while its
//! rank moved by more than ε. The paper times the first five iterations.

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// The PageRank program.
#[derive(Clone, Debug)]
pub struct PageRank {
    n: f64,
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
    /// Convergence threshold ε.
    pub epsilon: f64,
    /// Iteration cap (the paper reports the first five iterations).
    pub max_iters: usize,
}

impl PageRank {
    /// PageRank over a graph with `n` vertices, with the paper's defaults
    /// (damping 0.85, five iterations).
    pub fn new(n: usize) -> Self {
        PageRank {
            n: n as f64,
            damping: 0.85,
            epsilon: 1e-9,
            max_iters: 5,
        }
    }

    /// Override the iteration cap.
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

impl Program for PageRank {
    type Val = f64;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn combine(&self) -> Combine {
        Combine::Add
    }

    fn next_identity(&self) -> f64 {
        0.0
    }

    fn init(&self, _v: VId, _g: &Graph) -> f64 {
        1.0 / self.n
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: f64, _w: Weight, src_out_degree: u32) -> f64 {
        src_val / src_out_degree as f64
    }

    #[inline]
    fn apply(&self, _v: VId, acc: f64, curr: f64) -> (f64, bool) {
        let new = (1.0 - self.damping) / self.n + self.damping * acc;
        (new, (new - curr).abs() > self.epsilon)
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::All
    }

    fn prefer_push(&self) -> bool {
        true
    }

    fn scatter_cycles(&self) -> f64 {
        // One division plus the add: ~6 cycles per edge.
        6.0
    }

    fn max_iters(&self) -> usize {
        self.max_iters
    }

    #[inline]
    fn fold(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::EdgeList;

    #[test]
    fn scatter_divides_by_degree() {
        let pr = PageRank::new(10);
        assert!((pr.scatter(0, 0.5, 1, 5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn apply_applies_damping() {
        let pr = PageRank::new(4);
        let (v, alive) = pr.apply(0, 1.0, 0.25);
        assert!((v - (0.15 / 4.0 + 0.85)).abs() < 1e-12);
        assert!(alive);
        // A converged vertex goes inactive.
        let (v2, alive2) = pr.apply(0, (v - 0.15 / 4.0) / 0.85, v);
        assert!((v2 - v).abs() < 1e-12);
        assert!(!alive2);
    }

    #[test]
    fn init_is_uniform() {
        let g = Graph::from_edges(&EdgeList::from_pairs(4, [(0, 1)]));
        let pr = PageRank::new(4);
        assert_eq!(pr.init(2, &g), 0.25);
        assert_eq!(pr.initial_frontier(&g), FrontierInit::All);
        assert_eq!(pr.max_iters(), 5);
        assert_eq!(pr.with_iters(3).max_iters(), 3);
    }
}
