//! Loopy belief propagation on a binary pairwise MRF, log-odds domain.
//!
//! The paper's BP workload (Kang et al., the paper's ref. 25) estimates vertex probabilities
//! by iterative message passing along weighted edges. For binary states the
//! sum-product message from `s` to `t` under an Ising pairwise potential
//! with coupling `J` has the closed form
//!
//! ```text
//! m(s→t) = 2·atanh( tanh(J) · tanh(b(s)/2) )
//! ```
//!
//! where `b(s)` is `s`'s current log-odds belief; a vertex's belief is its
//! local field plus the sum of incoming messages. This implementation maps
//! the paper's `(0, 100]` edge weights to couplings `J = w/200 ∈ (0, 0.5]`
//! and damps the belief update for stability. Messages are *summed* (log
//! domain), so the access pattern is identical to PageRank's — which is why
//! the paper groups PR/SpMV/BP as "sparse matrix multiplication algorithms"
//! — while the per-edge `tanh`/`atanh` makes BP several times more
//! compute-heavy, as Table 3 shows.

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// The belief-propagation program.
#[derive(Clone, Debug)]
pub struct BeliefPropagation {
    /// Uniform local field (prior log-odds) of every vertex.
    pub local_field: f64,
    /// Damping factor applied to the belief update.
    pub damping: f64,
    /// Convergence threshold ε on the belief change.
    pub epsilon: f64,
    /// Iteration cap (the paper times five).
    pub max_iters: usize,
}

impl BeliefPropagation {
    /// Paper-style defaults: five timed iterations.
    pub fn new() -> Self {
        BeliefPropagation {
            local_field: 0.25,
            damping: 0.5,
            epsilon: 1e-9,
            max_iters: 5,
        }
    }

    /// Override the iteration cap.
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

impl Default for BeliefPropagation {
    fn default() -> Self {
        Self::new()
    }
}

impl Program for BeliefPropagation {
    type Val = f64;

    fn name(&self) -> &'static str {
        "BP"
    }

    fn combine(&self) -> Combine {
        Combine::Add
    }

    fn next_identity(&self) -> f64 {
        0.0
    }

    fn init(&self, _v: VId, _g: &Graph) -> f64 {
        self.local_field
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: f64, w: Weight, _src_out_degree: u32) -> f64 {
        let coupling = w as f64 / 200.0;
        2.0 * (coupling.tanh() * (src_val / 2.0).tanh()).atanh()
    }

    #[inline]
    fn apply(&self, _v: VId, acc: f64, curr: f64) -> (f64, bool) {
        let new = (1.0 - self.damping) * curr + self.damping * (self.local_field + acc);
        (new, (new - curr).abs() > self.epsilon)
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::All
    }

    fn max_iters(&self) -> usize {
        self.max_iters
    }

    fn uses_weights(&self) -> bool {
        true
    }

    fn prefer_push(&self) -> bool {
        true
    }

    fn scatter_cycles(&self) -> f64 {
        // tanh + atanh + multiplies: roughly 80 cycles per message.
        80.0
    }

    #[inline]
    fn fold(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_bounded_by_coupling() {
        let bp = BeliefPropagation::new();
        // |m| ≤ 2·atanh(tanh(J)) = 2J, regardless of the source belief.
        for w in [1, 50, 100] {
            let j = w as f64 / 200.0;
            for b in [-10.0, -0.5, 0.0, 0.5, 10.0] {
                let m = bp.scatter(0, b, w, 1);
                assert!(m.abs() <= 2.0 * j + 1e-12, "w={w} b={b} m={m}");
                assert!(m.is_finite());
            }
        }
    }

    #[test]
    fn message_sign_follows_belief() {
        let bp = BeliefPropagation::new();
        assert!(bp.scatter(0, 1.0, 100, 1) > 0.0);
        assert!(bp.scatter(0, -1.0, 100, 1) < 0.0);
        assert_eq!(bp.scatter(0, 0.0, 100, 1), 0.0);
    }

    #[test]
    fn apply_damps_toward_field_plus_messages() {
        let bp = BeliefPropagation::new();
        let (new, alive) = bp.apply(0, 0.5, 0.25);
        // 0.5*0.25 + 0.5*(0.25 + 0.5) = 0.5.
        assert!((new - 0.5).abs() < 1e-12);
        assert!(alive);
        let (same, alive2) = bp.apply(0, new - bp.local_field, new);
        assert!((same - new).abs() < 1e-12);
        assert!(!alive2);
    }
}
