//! Breadth-first search computing hop distances (levels) from the source.
//!
//! Levels rather than parent pointers keep the fixed point independent of
//! execution order — min-combining `level(s) + 1` converges to the hop
//! distance under synchronous *and* asynchronous scheduling, so all four
//! engines (including the Galois-like asynchronous one) agree exactly.
//! Ligra's data-driven hybrid push/pull and adaptive frontier
//! representations apply unchanged.

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// Level of an unvisited vertex.
pub const UNVISITED: u32 = u32::MAX;

/// The BFS program. `Val` is the hop distance from the source
/// (`UNVISITED` before discovery; the source is at level 0).
#[derive(Clone, Debug)]
pub struct Bfs {
    /// The source vertex.
    pub source: VId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VId) -> Self {
        Bfs { source }
    }
}

impl Program for Bfs {
    type Val = u32;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn combine(&self) -> Combine {
        Combine::Min
    }

    fn next_identity(&self) -> u32 {
        UNVISITED
    }

    fn init(&self, v: VId, _g: &Graph) -> u32 {
        if v == self.source {
            0
        } else {
            UNVISITED
        }
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: u32, _w: Weight, _src_out_degree: u32) -> u32 {
        debug_assert_ne!(src_val, UNVISITED, "unvisited vertices must not scatter");
        src_val + 1
    }

    #[inline]
    fn apply(&self, _v: VId, acc: u32, curr: u32) -> (u32, bool) {
        if acc < curr {
            (acc, true)
        } else {
            (curr, false)
        }
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::Single(self.source)
    }

    fn max_iters(&self) -> usize {
        usize::MAX
    }

    #[inline]
    fn fold(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn val_from_u64(&self, raw: u64) -> u32 {
        raw as u32
    }

    fn priority_of(&self, val: u32) -> u64 {
        val as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::EdgeList;

    #[test]
    fn init_marks_only_source() {
        let g = Graph::from_edges(&EdgeList::from_pairs(3, [(0, 1)]));
        let b = Bfs::new(1);
        assert_eq!(b.init(1, &g), 0);
        assert_eq!(b.init(0, &g), UNVISITED);
        assert_eq!(b.initial_frontier(&g), FrontierInit::Single(1));
    }

    #[test]
    fn scatter_increments_level() {
        let b = Bfs::new(0);
        assert_eq!(b.scatter(0, 0, 1, 5), 1);
        assert_eq!(b.scatter(3, 7, 1, 5), 8);
    }

    #[test]
    fn apply_keeps_minimum_level() {
        let b = Bfs::new(0);
        assert_eq!(b.apply(5, 3, UNVISITED), (3, true));
        assert_eq!(b.apply(5, 4, 3), (3, false));
        assert_eq!(b.apply(5, 2, 3), (2, true));
    }

    #[test]
    fn priority_is_level() {
        let b = Bfs::new(0);
        assert_eq!(b.priority_of(7), 7);
        assert_eq!(b.val_from_u64(9), 9);
    }
}
