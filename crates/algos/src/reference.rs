//! The sequential reference executor: the iteration semantics of
//! [`polymer_api::Program`], executed directly on host memory with no
//! simulation, no partitioning, and no concurrency. Every engine's output is
//! checked against this oracle by the integration tests.

use polymer_api::{FrontierInit, Program};
use polymer_graph::Graph;

/// Run `prog` on `g` sequentially. Returns the final values and the number
/// of iterations executed. The caller must pass an already-symmetrized graph
/// when [`Program::needs_symmetric`] holds (the harness does this for every
/// engine uniformly).
pub fn run_reference<P: Program>(g: &Graph, prog: &P) -> (Vec<P::Val>, usize) {
    let n = g.num_vertices();
    let mut curr: Vec<P::Val> = (0..n).map(|v| prog.init(v as u32, g)).collect();
    let mut frontier: Vec<u32> = match prog.initial_frontier(g) {
        FrontierInit::All => (0..n as u32).collect(),
        FrontierInit::Single(s) => {
            assert!((s as usize) < n, "source vertex out of range");
            vec![s]
        }
    };

    let identity = prog.next_identity();
    let mut next: Vec<P::Val> = vec![identity; n];
    let mut updated: Vec<bool> = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    let mut iters = 0usize;
    while !frontier.is_empty() && iters < prog.max_iters() {
        // Scatter: fold contributions of active out-edges into next.
        for &s in &frontier {
            let deg = g.out_degree(s) as u32;
            let sv = curr[s as usize];
            for (&t, &w) in g.out_neighbors(s).iter().zip(g.out_weights(s)) {
                let c = prog.scatter(s, sv, w, deg);
                let t = t as usize;
                next[t] = prog.fold(next[t], c);
                if !updated[t] {
                    updated[t] = true;
                    touched.push(t as u32);
                }
            }
        }

        // Apply: fold updated vertices into curr and build the new frontier.
        let mut new_frontier = Vec::new();
        for &t in &touched {
            let ti = t as usize;
            let (val, alive) = prog.apply(t, next[ti], curr[ti]);
            curr[ti] = val;
            if alive {
                new_frontier.push(t);
            }
            next[ti] = identity;
            updated[ti] = false;
        }
        touched.clear();
        new_frontier.sort_unstable();
        frontier = new_frontier;
        iters += 1;
    }

    (curr, iters)
}

/// Maximum relative error between two float value vectors (for comparing
/// engines whose summation order differs).
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let denom = x.abs().max(y.abs()).max(1e-30);
            (x - y).abs() / denom
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bfs, ConnectedComponents, PageRank, SpMV, Sssp, UNREACHED, UNVISITED};
    use polymer_graph::{EdgeList, Graph};

    fn chain() -> Graph {
        // 0 -> 1 -> 2 -> 3 with weights 5, 10, 20.
        let mut el = EdgeList::new(4);
        el.push(polymer_graph::Edge::weighted(0, 1, 5));
        el.push(polymer_graph::Edge::weighted(1, 2, 10));
        el.push(polymer_graph::Edge::weighted(2, 3, 20));
        Graph::from_edges(&el)
    }

    #[test]
    fn bfs_reaches_in_hop_order() {
        let g = chain();
        let (levels, iters) = run_reference(&g, &Bfs::new(0));
        assert_eq!(levels, vec![0, 1, 2, 3]);
        assert_eq!(iters, 4); // 3 discovery rounds + 1 empty-growth round.
    }

    #[test]
    fn bfs_unreachable_stays_unvisited() {
        let g = Graph::from_edges(&EdgeList::from_pairs(3, [(0, 1)]));
        let (levels, _) = run_reference(&g, &Bfs::new(0));
        assert_eq!(levels, vec![0, 1, UNVISITED]);
    }

    #[test]
    fn sssp_exact_distances() {
        let g = chain();
        let (dist, _) = run_reference(&g, &Sssp::new(0));
        assert_eq!(dist, vec![0, 5, 15, 35]);
    }

    #[test]
    fn sssp_prefers_shorter_path() {
        // 0->1 (100), 0->2 (1), 2->1 (1): shortest 0->1 is 2.
        let mut el = EdgeList::new(3);
        el.push(polymer_graph::Edge::weighted(0, 1, 100));
        el.push(polymer_graph::Edge::weighted(0, 2, 1));
        el.push(polymer_graph::Edge::weighted(2, 1, 1));
        let (dist, _) = run_reference(&Graph::from_edges(&el), &Sssp::new(0));
        assert_eq!(dist, vec![0, 2, 1]);
        assert_ne!(dist[1], UNREACHED);
    }

    #[test]
    fn cc_labels_min_id_per_component() {
        // Two components {0,1,2} and {3,4}; CC runs on symmetrized input.
        let mut el = EdgeList::from_pairs(5, [(1, 0), (1, 2), (4, 3)]);
        el.symmetrize();
        let g = Graph::from_edges(&el);
        let (labels, _) = run_reference(&g, &ConnectedComponents::new());
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn pagerank_mass_behaviour() {
        // A 4-cycle: symmetric, so ranks stay uniform at 1/n.
        let g = Graph::from_edges(&EdgeList::from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]));
        let (ranks, iters) = run_reference(&g, &PageRank::new(4));
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-12);
        }
        // Uniform from the start: converged after one iteration's check.
        assert!(iters <= 5);
    }

    #[test]
    fn pagerank_star_concentrates_rank() {
        // Leaves 1..=3 all point at 0.
        let g = Graph::from_edges(&EdgeList::from_pairs(4, [(1, 0), (2, 0), (3, 0)]));
        let (ranks, _) = run_reference(&g, &PageRank::new(4));
        assert!(ranks[0] > ranks[1]);
        assert!(ranks[0] > 0.5);
    }

    #[test]
    fn spmv_runs_fixed_iterations() {
        // A cycle keeps every vertex receiving contributions, so the run is
        // capped by the iteration limit rather than frontier exhaustion.
        let g = Graph::from_edges(&EdgeList::from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]));
        let (vals, iters) = run_reference(&g, &SpMV::new());
        assert_eq!(iters, 5);
        assert!(vals.iter().all(|v| v.is_finite()));
        // On a chain the frontier drains before the cap.
        let (_, chain_iters) = run_reference(&chain(), &SpMV::new());
        assert_eq!(chain_iters, 4);
    }

    #[test]
    fn max_rel_error_detects_divergence() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((max_rel_error(&[1.0], &[1.1]) - 0.1 / 1.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "source vertex out of range")]
    fn bad_source_rejected() {
        let g = Graph::from_edges(&EdgeList::from_pairs(2, [(0, 1)]));
        run_reference(&g, &Bfs::new(9));
    }
}
