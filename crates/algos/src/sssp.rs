//! Single-source shortest paths: Bellman–Ford with data-driven scheduling
//! (the paper's Polymer/Ligra/X-Stream implementation, its ref. 16); the Galois-like
//! engine executes the same program asynchronously with delta-stepping
//! priorities (ref. 37) via [`polymer_api::Program::priority_of`]. Both converge
//! to the exact shortest distances, so results agree across engines.

use polymer_api::{Combine, FrontierInit, Program};
use polymer_graph::{Graph, VId, Weight};

/// Distance of an unreached vertex.
pub const UNREACHED: u64 = u64::MAX;

/// The SSSP program. `Val` is the tentative distance.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// The source vertex.
    pub source: VId,
    /// Delta-stepping bucket width used as the scheduling priority
    /// granularity by asynchronous engines.
    pub delta: u64,
}

impl Sssp {
    /// SSSP from `source` with the default bucket width (the paper's graphs
    /// have weights in `(0, 100]`; Δ = 100 buckets one average edge).
    pub fn new(source: VId) -> Self {
        Sssp { source, delta: 100 }
    }

    /// Override the delta-stepping bucket width.
    pub fn with_delta(mut self, delta: u64) -> Self {
        assert!(delta >= 1, "delta must be positive");
        self.delta = delta;
        self
    }
}

impl Program for Sssp {
    type Val = u64;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn combine(&self) -> Combine {
        Combine::Min
    }

    fn next_identity(&self) -> u64 {
        UNREACHED
    }

    fn init(&self, v: VId, _g: &Graph) -> u64 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    #[inline]
    fn scatter(&self, _src: VId, src_val: u64, w: Weight, _src_out_degree: u32) -> u64 {
        debug_assert_ne!(src_val, UNREACHED, "unreached vertices must not scatter");
        src_val + w as u64
    }

    #[inline]
    fn apply(&self, _v: VId, acc: u64, curr: u64) -> (u64, bool) {
        if acc < curr {
            (acc, true)
        } else {
            (curr, false)
        }
    }

    fn initial_frontier(&self, _g: &Graph) -> FrontierInit {
        FrontierInit::Single(self.source)
    }

    fn max_iters(&self) -> usize {
        usize::MAX
    }

    fn uses_weights(&self) -> bool {
        true
    }

    #[inline]
    fn fold(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn val_from_u64(&self, raw: u64) -> u64 {
        raw
    }

    fn priority_of(&self, val: u64) -> u64 {
        val / self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_graph::EdgeList;

    #[test]
    fn init_zero_at_source() {
        let g = Graph::from_edges(&EdgeList::from_pairs(3, [(0, 1)]));
        let s = Sssp::new(1);
        assert_eq!(s.init(1, &g), 0);
        assert_eq!(s.init(0, &g), UNREACHED);
        assert_eq!(s.initial_frontier(&g), FrontierInit::Single(1));
    }

    #[test]
    fn scatter_adds_weight_and_apply_relaxes() {
        let s = Sssp::new(0);
        assert_eq!(s.scatter(0, 10, 5, 1), 15);
        assert_eq!(s.apply(1, 15, UNREACHED), (15, true));
        assert_eq!(s.apply(1, 20, 15), (15, false));
        assert_eq!(s.apply(1, 12, 15), (12, true));
    }

    #[test]
    fn priority_buckets_by_delta() {
        let s = Sssp::new(0).with_delta(50);
        assert_eq!(s.priority_of(0), 0);
        assert_eq!(s.priority_of(49), 0);
        assert_eq!(s.priority_of(50), 1);
        assert_eq!(s.priority_of(500), 10);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_rejected() {
        Sssp::new(0).with_delta(0);
    }
}
