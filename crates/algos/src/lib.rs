//! # polymer-algos — the paper's six benchmark algorithms
//!
//! Each algorithm from Section 6.1 is expressed once against the
//! [`polymer_api::Program`] scatter–gather interface and executed unchanged
//! by all four engines:
//!
//! * [`PageRank`] — synchronous push-based PageRank (paper Algorithm 4.1).
//! * [`SpMV`] — sparse matrix–(dense) vector multiplication, iterated.
//! * [`BeliefPropagation`] — loopy belief propagation on a binary pairwise
//!   MRF in the log-odds domain (linear-algebraically a weighted
//!   propagation; see the module docs for the exact message function).
//! * [`Bfs`] — breadth-first search computing a minimum parent per vertex.
//! * [`ConnectedComponents`] — label propagation over the symmetrized graph.
//! * [`Sssp`] — single-source shortest paths (Bellman–Ford with data-driven
//!   scheduling, as Polymer/Ligra/X-Stream use in the paper).
//!
//! [`mod@reference`] contains a sequential oracle executor with the exact
//! iteration semantics of the API; integration tests compare every engine
//! against it (exact for integer-valued programs, ε-close for floats whose
//! summation order differs).

#![deny(unsafe_code)]

pub mod bfs;
pub mod bp;
pub mod cc;
pub mod incremental;
pub mod multi;
pub mod pagerank;
pub mod reference;
pub mod spmv;
pub mod sssp;

pub use bfs::{Bfs, UNVISITED};
pub use bp::BeliefPropagation;
pub use cc::ConnectedComponents;
pub use incremental::{
    bfs_host, bfs_overlay, cc_host, cc_overlay, pagerank_host, pagerank_overlay, sssp_host,
    sssp_overlay, WarmStart, DEFAULT_PR_TOL,
};
pub use multi::{run_multi_source, MultiRunResult, MultiSource, SingleSource, MAX_LANES};
pub use pagerank::PageRank;
pub use reference::run_reference;
pub use spmv::SpMV;
pub use sssp::{Sssp, UNREACHED};
