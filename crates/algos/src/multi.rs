//! Batched multi-source traversals: one sweep, many sources.
//!
//! The serving layer (`polymer-serve`) coalesces queued same-algorithm
//! single-source requests — BFS levels, SSSP distances — into **one**
//! frontier sweep that carries a *lane* of per-source state per vertex
//! (the MS-BFS idiom): the graph's adjacency is walked once per iteration
//! and every edge read is amortized across all lanes whose source set is
//! active at that vertex. Lane state is laid out struct-of-arrays
//! (`state[v·K + lane]`), lane membership is a per-vertex `u64` bitmask
//! (hence [`MAX_LANES`] = 64 lanes per sweep), and the bulk-synchronous
//! loop runs under the shared [`IterationDriver`] skeleton so the safety
//! cap and iteration stamping behave exactly like a single-source run.
//!
//! Correctness does not depend on batching: the programs this applies to
//! are integer-valued min-combine fixed points (BFS, SSSP), whose per-
//! iteration accumulators and final values are order-independent — so a
//! batched sweep is **bit-identical** to running each source on its own.
//! The workspace conformance test pins this against both backends.
//!
//! Like the `RealThreads` backend, the sweep computes on host memory:
//! values and iteration counts are real, the simulated clock stays empty.

use std::sync::atomic::{AtomicU64, Ordering};

use polymer_api::{
    catch_engine_faults, Combine, FrontierInit, IterationDriver, PolymerError, PolymerResult,
    Program, RunResult,
};
use polymer_graph::{Graph, VId};
use polymer_numa::{Atom, BarrierKind, Machine};

/// Maximum lanes (sources) per sweep — one bit per lane in the per-vertex
/// active mask. Callers with bigger batches split them into several sweeps.
pub const MAX_LANES: usize = 64;

/// A single-source [`Program`] whose source can be re-targeted: the
/// batching layer builds one program per queued request from a shared
/// template. Everything except the source (and scheduling hints like the
/// SSSP Δ) must be identical across a batch.
pub trait SingleSource: Program + Clone {
    /// The program's source vertex.
    fn source(&self) -> VId;
    /// The same program re-targeted at `source`.
    fn with_source(&self, source: VId) -> Self;
}

impl SingleSource for crate::Bfs {
    fn source(&self) -> VId {
        self.source
    }
    fn with_source(&self, source: VId) -> Self {
        crate::Bfs::new(source)
    }
}

impl SingleSource for crate::Sssp {
    fn source(&self) -> VId {
        self.source
    }
    fn with_source(&self, source: VId) -> Self {
        let mut p = self.clone();
        p.source = source;
        p
    }
}

/// A validated batch of same-algorithm single-source programs, one lane
/// per program. Lanes are independent: duplicate sources are allowed.
pub struct MultiSource<P> {
    progs: Vec<P>,
}

impl<P: SingleSource> MultiSource<P> {
    /// A batch from per-request programs. Rejects empty batches, batches
    /// over [`MAX_LANES`], and mixed batches (differing name or combine).
    pub fn new(progs: Vec<P>) -> PolymerResult<Self> {
        if progs.is_empty() {
            return Err(PolymerError::InvalidConfig(
                "multi-source batch must contain at least one program".to_string(),
            ));
        }
        if progs.len() > MAX_LANES {
            return Err(PolymerError::InvalidConfig(format!(
                "multi-source batch of {} exceeds {MAX_LANES} lanes",
                progs.len()
            )));
        }
        let (name, combine) = (progs[0].name(), progs[0].combine());
        if progs
            .iter()
            .any(|p| p.name() != name || p.combine() != combine)
        {
            return Err(PolymerError::InvalidConfig(
                "multi-source batch mixes programs".to_string(),
            ));
        }
        Ok(MultiSource { progs })
    }

    /// A batch re-targeting `template` at each of `sources`.
    pub fn from_sources(template: &P, sources: &[VId]) -> PolymerResult<Self> {
        Self::new(sources.iter().map(|&s| template.with_source(s)).collect())
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.progs.len()
    }

    /// The per-lane source vertices, in lane order.
    pub fn sources(&self) -> Vec<VId> {
        self.progs.iter().map(|p| p.source()).collect()
    }

    /// The per-lane programs.
    pub fn programs(&self) -> &[P] {
        &self.progs
    }
}

/// The outcome of a batched sweep: a [`RunResult`] whose `values` hold all
/// lanes vertex-major (`values[v·K + lane]`), plus the lane geometry to
/// fan results back out per request.
pub struct MultiRunResult<V> {
    /// The sweep's result; `values.len() == num_vertices · lanes`,
    /// `iterations` counts sweep supersteps (the max over lanes).
    pub run: RunResult<V>,
    /// Lane count of the batch.
    pub lanes: usize,
}

impl<V: Copy> MultiRunResult<V> {
    /// Extract one lane's per-vertex values (the answer to one request).
    pub fn lane_values(&self, lane: usize) -> Vec<V> {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.run
            .values
            .iter()
            .skip(lane)
            .step_by(self.lanes)
            .copied()
            .collect()
    }
}

/// Frontier size below which the sweep stays sequential: spawning scoped
/// threads costs more than relaxing a few hundred vertices.
const PARALLEL_THRESHOLD: usize = 512;

/// Run a batched multi-source sweep over `graph` with up to `threads`
/// host threads. `machine` supplies the [`IterationDriver`] skeleton
/// (iteration stamping, the `2|V|+64` safety cap, result assembly); the
/// sweep itself computes on host memory, so the simulated clock stays
/// empty — exactly the `RealThreads` backend's contract.
///
/// Every failure surfaces as a typed [`PolymerError`]; panics escaping the
/// sweep body are caught and converted, as with the engines.
pub fn run_multi_source<P: SingleSource>(
    machine: &Machine,
    threads: usize,
    graph: &Graph,
    batch: &MultiSource<P>,
) -> PolymerResult<MultiRunResult<P::Val>> {
    if threads == 0 {
        return Err(PolymerError::InvalidConfig(
            "threads must be >= 1".to_string(),
        ));
    }
    let n = graph.num_vertices();
    for prog in batch.programs() {
        match prog.initial_frontier(graph) {
            FrontierInit::Single(s) if (s as usize) < n => {}
            FrontierInit::Single(s) => {
                return Err(PolymerError::InvalidConfig(format!(
                    "source vertex {s} out of range (graph has {n} vertices)"
                )));
            }
            FrontierInit::All => {
                return Err(PolymerError::InvalidConfig(
                    "multi-source sweep requires single-source programs".to_string(),
                ));
            }
        }
    }
    catch_engine_faults(|| sweep(machine, threads, graph, batch))
}

fn sweep<P: SingleSource>(
    machine: &Machine,
    threads: usize,
    graph: &Graph,
    batch: &MultiSource<P>,
) -> PolymerResult<MultiRunResult<P::Val>> {
    let n = graph.num_vertices();
    let k = batch.lanes();
    let progs = batch.programs();
    let identity = progs[0].next_identity();
    let combine = progs[0].combine();
    let max_iters = progs.iter().map(|p| p.max_iters()).max().unwrap_or(0);

    // SoA lane state, vertex-major: curr/next[v*k + lane]. Atomic cells so
    // the scatter phase can fold contributions race-free across threads.
    let curr: Vec<<P::Val as Atom>::Repr> = (0..n * k)
        .map(|i| Atom::new_atomic(progs[i % k].init((i / k) as VId, graph)))
        .collect();
    let next: Vec<<P::Val as Atom>::Repr> =
        (0..n * k).map(|_| Atom::new_atomic(identity)).collect();
    // Per-vertex lane bitmasks: `active` is the current frontier's lane
    // membership, `updated` collects the lanes that received contributions
    // this iteration (its first setter claims the vertex for `touched`).
    let active: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let updated: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

    let mut frontier: Vec<u32> = Vec::new();
    for (lane, prog) in progs.iter().enumerate() {
        let s = prog.source() as usize;
        if active[s].fetch_or(1 << lane, Ordering::Relaxed) == 0 {
            frontier.push(s as u32);
        }
    }
    frontier.sort_unstable();

    let mut driver = IterationDriver::new(machine, threads, BarrierKind::Hierarchical, false, n);
    driver.run_synchronous(
        max_iters,
        &mut frontier,
        |f| !f.is_empty(),
        |_sim, _iter, frontier| {
            // Scatter: one adjacency walk per frontier vertex serves every
            // lane active there.
            let touched = {
                let scatter_chunk = |chunk: &[u32]| -> Vec<u32> {
                    let mut local_touched = Vec::new();
                    for &v in chunk {
                        let mask = active[v as usize].load(Ordering::Relaxed);
                        let deg = graph.out_degree(v) as u32;
                        for (&t, &w) in graph.out_neighbors(v).iter().zip(graph.out_weights(v)) {
                            let ti = t as usize;
                            let mut m = mask;
                            while m != 0 {
                                let lane = m.trailing_zeros() as usize;
                                m &= m - 1;
                                let sv = Atom::atom_load(&curr[v as usize * k + lane]);
                                let c = progs[lane].scatter(v, sv, w, deg);
                                let cell = &next[ti * k + lane];
                                match combine {
                                    Combine::Add => {
                                        Atom::atom_add(cell, c);
                                    }
                                    Combine::Min => {
                                        Atom::atom_min(cell, c);
                                    }
                                    Combine::Mul => {
                                        Atom::atom_mul(cell, c);
                                    }
                                }
                            }
                            if updated[ti].fetch_or(mask, Ordering::Relaxed) == 0 {
                                local_touched.push(t);
                            }
                        }
                    }
                    local_touched
                };
                run_chunked(frontier, threads, scatter_chunk)
            };

            // Apply: each touched vertex is claimed by exactly one thread
            // (the first `fetch_or` from zero), so per-vertex lane state has
            // a single writer here.
            let alive_masks = {
                let apply_chunk = |chunk: &[u32]| -> Vec<u64> {
                    let mut alive_out = Vec::with_capacity(chunk.len());
                    for &t in chunk {
                        let ti = t as usize;
                        let um = updated[ti].swap(0, Ordering::Relaxed);
                        let mut alive = 0u64;
                        let mut m = um;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            let cell = ti * k + lane;
                            let acc = Atom::atom_load(&next[cell]);
                            let cur = Atom::atom_load(&curr[cell]);
                            let (val, is_alive) = progs[lane].apply(t, acc, cur);
                            Atom::atom_store(&curr[cell], val);
                            Atom::atom_store(&next[cell], identity);
                            if is_alive {
                                alive |= 1 << lane;
                            }
                        }
                        alive_out.push(alive);
                    }
                    alive_out
                };
                run_chunked(&touched, threads, apply_chunk)
            };

            // Rebuild the frontier: clear the old lane masks, then install
            // the surviving lanes of this iteration's touched set.
            for &v in frontier.iter() {
                active[v as usize].store(0, Ordering::Relaxed);
            }
            let mut new_frontier = Vec::new();
            for (&t, &alive) in touched.iter().zip(&alive_masks) {
                if alive != 0 {
                    active[t as usize].store(alive, Ordering::Relaxed);
                    new_frontier.push(t);
                }
            }
            new_frontier.sort_unstable();
            *frontier = new_frontier;
            Ok(())
        },
    )?;

    let values: Vec<P::Val> = curr.iter().map(Atom::atom_load).collect();
    let mut run = driver.finish(values);
    // Host sweep: wall-clock is the caller's to measure, like RealThreads.
    run.clock = Default::default();
    Ok(MultiRunResult { run, lanes: k })
}

/// Map `f` over contiguous chunks of `items`, in parallel when both the
/// thread budget and the item count warrant it, and concatenate the chunk
/// outputs in chunk order. `f` must be safe to run concurrently on
/// disjoint chunks (the sweep's phases are, via atomic lane state).
fn run_chunked<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() < PARALLEL_THRESHOLD {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads);
    let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| scope.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_reference, Bfs, Sssp};
    use polymer_graph::{gen, EdgeList};
    use polymer_numa::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::test2())
    }

    fn ring(n: u32) -> Graph {
        Graph::from_edges(&EdgeList::from_pairs(
            n as usize,
            (0..n).map(|v| (v, (v + 1) % n)),
        ))
    }

    #[test]
    fn batch_validation() {
        assert!(MultiSource::<Bfs>::new(vec![]).is_err());
        let too_many: Vec<Bfs> = (0..65).map(Bfs::new).collect();
        assert!(MultiSource::new(too_many).is_err());
        let ok = MultiSource::from_sources(&Bfs::new(0), &[0, 3, 3, 7]).unwrap();
        assert_eq!(ok.lanes(), 4);
        assert_eq!(ok.sources(), vec![0, 3, 3, 7]);
    }

    #[test]
    fn out_of_range_source_is_typed_error() {
        let g = ring(8);
        let m = machine();
        let batch = MultiSource::from_sources(&Bfs::new(0), &[0, 99]).unwrap();
        let err = match run_multi_source(&m, 1, &g, &batch) {
            Err(e) => e,
            Ok(_) => panic!("out-of-range source must be rejected"),
        };
        assert_eq!(err.code(), "invalid-config");
    }

    #[test]
    fn multi_bfs_matches_reference_per_lane() {
        let g = Graph::from_edges(&gen::rmat(8, 1 << 11, gen::RMAT_GRAPH500, 7));
        let m = machine();
        let sources = [0u32, 1, 5, 200, 5];
        let batch = MultiSource::from_sources(&Bfs::new(0), &sources).unwrap();
        let res = run_multi_source(&m, 2, &g, &batch).unwrap();
        assert_eq!(res.run.values.len(), g.num_vertices() * sources.len());
        for (lane, &s) in sources.iter().enumerate() {
            let (want, _) = run_reference(&g, &Bfs::new(s));
            assert_eq!(res.lane_values(lane), want, "lane {lane} (source {s})");
        }
    }

    #[test]
    fn multi_sssp_matches_reference_per_lane() {
        let g = Graph::from_edges(&gen::rmat(7, 1 << 10, gen::RMAT_GRAPH500, 21));
        let m = machine();
        let sources = [3u32, 9, 31];
        let batch = MultiSource::from_sources(&Sssp::new(0), &sources).unwrap();
        let res = run_multi_source(&m, 3, &g, &batch).unwrap();
        for (lane, &s) in sources.iter().enumerate() {
            let (want, _) = run_reference(&g, &Sssp::new(s));
            assert_eq!(res.lane_values(lane), want, "lane {lane} (source {s})");
        }
    }

    #[test]
    fn single_lane_iterations_match_reference() {
        let g = ring(16);
        let m = machine();
        let batch = MultiSource::from_sources(&Bfs::new(0), &[4]).unwrap();
        let res = run_multi_source(&m, 1, &g, &batch).unwrap();
        let (want, want_iters) = run_reference(&g, &Bfs::new(4));
        assert_eq!(res.lane_values(0), want);
        assert_eq!(res.run.iterations, want_iters);
    }
}
