//! # polymer-faults — typed errors and deterministic fault injection
//!
//! The rest of the workspace assumes a cooperative world: node memory is
//! infinite, barriers always release, graph inputs are well formed. This
//! crate supplies the two pieces that turn those assumptions into a *failure
//! model*:
//!
//! * [`PolymerError`] — the workspace-wide error taxonomy. Every fallible
//!   entry point (`Machine::try_alloc_*`, `HierBarrier::wait_checked`,
//!   `try_run_parallel`, `Engine::try_run`) returns `Result<_, PolymerError>`
//!   instead of panicking. Deep call paths that still panic do so with a
//!   `PolymerError` payload via [`panic_with`], which [`PolymerError::from_panic`]
//!   recovers at the catch site — so a panic anywhere below an engine surfaces
//!   as a typed error, never as an abort.
//! * [`FaultPlan`] — a deterministic, seedable injection plan threaded
//!   through the simulated machine, the barriers, and the real executor.
//!   A plan can fail the nth allocation, clamp per-node memory capacity,
//!   delay one worker at a barrier (straggler), panic one worker at a given
//!   iteration, and truncate I/O streams ([`ShortReader`]). All trigger
//!   points are counted with shared atomic counters, so a cloned plan
//!   observes one global schedule and runs are reproducible.
//!
//! This crate deliberately has **no dependencies** (std only) so every other
//! crate in the workspace can depend on it without cycles.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod io;
mod plan;

pub use error::{panic_with, PolymerError, PolymerResult};
pub use io::ShortReader;
pub use plan::FaultPlan;
