//! I/O fault injection: a reader that cuts the stream short.

use std::io::{self, Read};

use crate::FaultPlan;

/// Wraps a reader and yields at most `limit` bytes; the next read past the
/// limit fails with [`io::ErrorKind::UnexpectedEof`]. Models a truncated
/// file or a connection dropped mid-transfer, for exercising loader
/// hardening without crafting corrupt files by hand.
pub struct ShortReader<R> {
    inner: R,
    remaining: u64,
    tripped: bool,
}

impl<R: Read> ShortReader<R> {
    /// Cut `inner` short after `limit` bytes.
    pub fn new(inner: R, limit: u64) -> Self {
        ShortReader {
            inner,
            remaining: limit,
            tripped: false,
        }
    }

    /// Build from a [`FaultPlan`]'s short-read limit; a plan without one
    /// passes the stream through untouched (`u64::MAX` limit).
    pub fn from_plan(inner: R, plan: &FaultPlan) -> Self {
        ShortReader::new(inner, plan.short_read_limit().unwrap_or(u64::MAX))
    }

    /// True once the injected truncation has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

impl<R: Read> Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            self.tripped = true;
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected short read (fault plan)",
            ));
        }
        let cap = (buf.len() as u64).min(self.remaining) as usize;
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn passes_through_under_limit() {
        let data = b"hello world";
        let mut r = ShortReader::new(&data[..], 64);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(!r.tripped());
    }

    #[test]
    fn fails_past_limit() {
        let data = [7u8; 100];
        let mut r = ShortReader::new(&data[..], 10);
        let mut out = [0u8; 100];
        let mut got = 0usize;
        let err = loop {
            match r.read(&mut out[got..]) {
                Ok(0) => panic!("should error before clean EOF"),
                Ok(n) => got += n,
                Err(e) => break e,
            }
        };
        assert_eq!(got, 10);
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(r.tripped());
    }

    #[test]
    fn from_plan_defaults_to_unbounded() {
        let data = vec![1u8; 4096];
        let mut r = ShortReader::from_plan(&data[..], &FaultPlan::new());
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 4096);

        let plan = FaultPlan::new().short_read_after(8);
        let mut r = ShortReader::from_plan(&data[..], &plan);
        let mut out = Vec::new();
        assert!(r.read_to_end(&mut out).is_err());
    }
}
