//! The workspace-wide error taxonomy.

use std::any::Any;
use std::fmt;
use std::time::Duration;

/// Shorthand for `Result<T, PolymerError>`.
pub type PolymerResult<T> = Result<T, PolymerError>;

/// Every way a Polymer run can fail, from input validation to injected
/// hardware faults. Variants are coarse enough to match on and carry the
/// context a caller needs to degrade gracefully or report precisely.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolymerError {
    /// A caller-supplied parameter was rejected (thread count, source vertex,
    /// group sizes, ...). The string names the parameter and the constraint.
    InvalidConfig(String),
    /// A worker thread of the real executor panicked; siblings observed the
    /// poisoned barrier and unwound instead of deadlocking.
    WorkerPanicked {
        /// Thread id of the first worker that panicked.
        worker: usize,
        /// Stringified panic payload.
        detail: String,
    },
    /// An engine body panicked outside any worker thread (allocation,
    /// layout construction, ...).
    EnginePanicked {
        /// Stringified panic payload.
        detail: String,
    },
    /// A barrier was poisoned by another participant (panic or timeout);
    /// this participant unwound instead of spinning forever.
    BarrierPoisoned,
    /// A barrier wait exceeded its deadline; the waiter poisoned the barrier
    /// so every sibling errors out too.
    BarrierTimeout {
        /// How long the participant waited before giving up.
        waited: Duration,
    },
    /// An allocation was failed by a [`crate::FaultPlan`] (nth-allocation
    /// injection) — the simulated analogue of `mmap` returning `ENOMEM`.
    AllocFailed {
        /// Allocation name (the machine's tag/name string).
        name: String,
        /// Zero-based index of the allocation within its machine.
        index: u64,
    },
    /// An allocation did not fit on its requested node and the machine's
    /// spill policy was `Fail` (or every node was full).
    NodeCapacityExceeded {
        /// The node the allocation was bound to.
        node: usize,
        /// Bytes the allocation needed on that node.
        requested_bytes: u64,
        /// The node's configured capacity in bytes.
        capacity_bytes: u64,
        /// Allocation name.
        name: String,
    },
    /// A per-vertex value became non-finite (NaN/±inf) — the computation
    /// diverged instead of converging.
    Divergence {
        /// First vertex observed with a non-finite value.
        vertex: usize,
        /// Iteration at which it was detected (0-based).
        iteration: usize,
    },
    /// The engine's iteration safety cap was exceeded while the frontier was
    /// still non-empty — the program is not converging.
    IterationCapExceeded {
        /// The cap that was hit.
        cap: usize,
    },
    /// An I/O error (graph loading). The original `std::io::Error` is
    /// flattened to its kind and message so the error stays `Clone + Eq`.
    Io {
        /// The `std::io::ErrorKind` of the underlying error.
        kind: std::io::ErrorKind,
        /// The underlying error's message.
        detail: String,
    },
    /// The serving layer's bounded request queue was full at admission; the
    /// caller should back off and resubmit.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// Admitting the request would push the service's aggregate scratch
    /// memory past its budget; the caller should back off and resubmit once
    /// in-flight requests drain.
    MemoryBudgetExceeded {
        /// Scratch bytes this request would need.
        requested_bytes: u64,
        /// Scratch bytes currently pledged to admitted requests.
        in_use_bytes: u64,
        /// The service's configured aggregate budget in bytes.
        budget_bytes: u64,
    },
    /// The request reached a service that has been stopped (or stopped while
    /// the request was queued); it will never run.
    ServiceStopped,
    /// The request's deadline expired — before execution (queue wait ate the
    /// whole budget) or during a supervised run that could not finish in
    /// time.
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline: Duration,
    },
}

impl fmt::Display for PolymerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolymerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PolymerError::WorkerPanicked { worker, detail } => {
                write!(f, "worker thread {worker} panicked: {detail}")
            }
            PolymerError::EnginePanicked { detail } => {
                write!(f, "engine panicked: {detail}")
            }
            PolymerError::BarrierPoisoned => {
                write!(f, "barrier poisoned by a failed participant")
            }
            PolymerError::BarrierTimeout { waited } => {
                write!(f, "barrier wait timed out after {waited:?}")
            }
            PolymerError::AllocFailed { name, index } => {
                write!(f, "allocation {index} ({name:?}) failed (injected fault)")
            }
            PolymerError::NodeCapacityExceeded {
                node,
                requested_bytes,
                capacity_bytes,
                name,
            } => write!(
                f,
                "allocation {name:?} needs {requested_bytes} bytes on node {node} \
                 (capacity {capacity_bytes} bytes) and the spill policy is Fail"
            ),
            PolymerError::Divergence { vertex, iteration } => write!(
                f,
                "non-finite value at vertex {vertex} in iteration {iteration} (divergence)"
            ),
            PolymerError::IterationCapExceeded { cap } => {
                write!(f, "iteration cap {cap} exceeded with a non-empty frontier")
            }
            PolymerError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            PolymerError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            PolymerError::MemoryBudgetExceeded {
                requested_bytes,
                in_use_bytes,
                budget_bytes,
            } => write!(
                f,
                "request needs {requested_bytes} scratch bytes but {in_use_bytes} of the \
                 {budget_bytes}-byte service budget are already pledged"
            ),
            PolymerError::ServiceStopped => write!(f, "service stopped"),
            PolymerError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
        }
    }
}

impl std::error::Error for PolymerError {}

impl From<std::io::Error> for PolymerError {
    fn from(e: std::io::Error) -> Self {
        PolymerError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl PolymerError {
    /// A stable, machine-readable error code — one kebab-case token per
    /// variant. CLI/bench output and serialized reports key on this instead
    /// of `Debug` formatting, so renaming a field or adding context never
    /// breaks a downstream matcher.
    pub fn code(&self) -> &'static str {
        match self {
            PolymerError::InvalidConfig(_) => "invalid-config",
            PolymerError::WorkerPanicked { .. } => "worker-panicked",
            PolymerError::EnginePanicked { .. } => "engine-panicked",
            PolymerError::BarrierPoisoned => "barrier-poisoned",
            PolymerError::BarrierTimeout { .. } => "barrier-timeout",
            PolymerError::AllocFailed { .. } => "alloc-failed",
            PolymerError::NodeCapacityExceeded { .. } => "node-capacity-exceeded",
            PolymerError::Divergence { .. } => "divergence",
            PolymerError::IterationCapExceeded { .. } => "iteration-cap-exceeded",
            PolymerError::Io { .. } => "io",
            PolymerError::QueueFull { .. } => "queue-full",
            PolymerError::MemoryBudgetExceeded { .. } => "memory-budget-exceeded",
            PolymerError::ServiceStopped => "service-stopped",
            PolymerError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }

    /// True for errors a supervisor (or a serving client) may retry:
    /// plausibly transient faults of the execution environment (crashed
    /// workers, poisoned/expired barriers, failed or over-capacity
    /// allocations) and transient admission pressure (`QueueFull`,
    /// `MemoryBudgetExceeded`), where a fresh attempt — possibly resumed
    /// from a checkpoint, degraded to a safer backend, or resubmitted after
    /// backoff — can succeed. False for deterministic outcomes of the
    /// inputs (`InvalidConfig`, `Divergence`, `IterationCapExceeded`, `Io`)
    /// and for terminal request outcomes (`ServiceStopped`,
    /// `DeadlineExceeded`), which would fail identically on every retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PolymerError::WorkerPanicked { .. }
                | PolymerError::EnginePanicked { .. }
                | PolymerError::BarrierPoisoned
                | PolymerError::BarrierTimeout { .. }
                | PolymerError::AllocFailed { .. }
                | PolymerError::NodeCapacityExceeded { .. }
                | PolymerError::QueueFull { .. }
                | PolymerError::MemoryBudgetExceeded { .. }
        )
    }

    /// Recover a typed error from a panic payload (the other half of
    /// [`panic_with`]). `PolymerError` payloads pass through unchanged;
    /// `String`/`&str` payloads (plain `panic!`) become
    /// [`PolymerError::EnginePanicked`]; anything else becomes an opaque
    /// `EnginePanicked`.
    pub fn from_panic(payload: Box<dyn Any + Send>) -> PolymerError {
        match payload.downcast::<PolymerError>() {
            Ok(e) => *e,
            Err(payload) => PolymerError::EnginePanicked {
                detail: panic_message(payload.as_ref()),
            },
        }
    }

    /// Like [`PolymerError::from_panic`] but attributes the panic to a worker
    /// thread of the real executor.
    pub fn from_worker_panic(worker: usize, payload: Box<dyn Any + Send>) -> PolymerError {
        match payload.downcast::<PolymerError>() {
            Ok(e) => *e,
            Err(payload) => PolymerError::WorkerPanicked {
                worker,
                detail: panic_message(payload.as_ref()),
            },
        }
    }
}

/// Stringify a panic payload (`&str`, `String`, or opaque).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Panic with a typed payload. Panicking wrappers over `try_` APIs use this
/// so a downstream `catch_unwind` + [`PolymerError::from_panic`] recovers the
/// original error instead of a stringified one.
pub fn panic_with(err: PolymerError) -> ! {
    std::panic::panic_any(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(PolymerError, &str)> = vec![
            (
                PolymerError::InvalidConfig("threads must be >= 1".into()),
                "invalid configuration",
            ),
            (
                PolymerError::WorkerPanicked {
                    worker: 3,
                    detail: "boom".into(),
                },
                "worker thread 3",
            ),
            (
                PolymerError::EnginePanicked {
                    detail: "boom".into(),
                },
                "engine panicked",
            ),
            (PolymerError::BarrierPoisoned, "poisoned"),
            (
                PolymerError::BarrierTimeout {
                    waited: Duration::from_millis(50),
                },
                "timed out",
            ),
            (
                PolymerError::AllocFailed {
                    name: "data/curr".into(),
                    index: 7,
                },
                "injected fault",
            ),
            (
                PolymerError::NodeCapacityExceeded {
                    node: 1,
                    requested_bytes: 8192,
                    capacity_bytes: 4096,
                    name: "data/curr".into(),
                },
                "node 1",
            ),
            (
                PolymerError::Divergence {
                    vertex: 12,
                    iteration: 4,
                },
                "non-finite",
            ),
            (
                PolymerError::IterationCapExceeded { cap: 100 },
                "iteration cap 100",
            ),
            (
                PolymerError::Io {
                    kind: std::io::ErrorKind::InvalidData,
                    detail: "bad magic".into(),
                },
                "bad magic",
            ),
            (PolymerError::QueueFull { capacity: 16 }, "capacity 16"),
            (
                PolymerError::MemoryBudgetExceeded {
                    requested_bytes: 4096,
                    in_use_bytes: 1024,
                    budget_bytes: 2048,
                },
                "2048-byte service budget",
            ),
            (PolymerError::ServiceStopped, "service stopped"),
            (
                PolymerError::DeadlineExceeded {
                    deadline: Duration::from_millis(250),
                },
                "deadline",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let cases = vec![
            PolymerError::InvalidConfig("x".into()),
            PolymerError::WorkerPanicked {
                worker: 0,
                detail: "x".into(),
            },
            PolymerError::EnginePanicked { detail: "x".into() },
            PolymerError::BarrierPoisoned,
            PolymerError::BarrierTimeout {
                waited: Duration::from_millis(1),
            },
            PolymerError::AllocFailed {
                name: "x".into(),
                index: 0,
            },
            PolymerError::NodeCapacityExceeded {
                node: 0,
                requested_bytes: 1,
                capacity_bytes: 1,
                name: "x".into(),
            },
            PolymerError::Divergence {
                vertex: 0,
                iteration: 0,
            },
            PolymerError::IterationCapExceeded { cap: 1 },
            PolymerError::Io {
                kind: std::io::ErrorKind::InvalidData,
                detail: "x".into(),
            },
            PolymerError::QueueFull { capacity: 1 },
            PolymerError::MemoryBudgetExceeded {
                requested_bytes: 1,
                in_use_bytes: 1,
                budget_bytes: 1,
            },
            PolymerError::ServiceStopped,
            PolymerError::DeadlineExceeded {
                deadline: Duration::from_millis(1),
            },
        ];
        let codes: Vec<&str> = cases.iter().map(|e| e.code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "duplicate code: {codes:?}");
        for c in &codes {
            assert!(
                c.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-'),
                "code {c:?} is not kebab-case"
            );
        }
    }

    #[test]
    fn retryable_split_matches_the_failure_model() {
        // Environment faults retry; deterministic input outcomes do not.
        assert!(PolymerError::BarrierPoisoned.is_retryable());
        assert!(PolymerError::WorkerPanicked {
            worker: 1,
            detail: "x".into()
        }
        .is_retryable());
        assert!(PolymerError::AllocFailed {
            name: "x".into(),
            index: 3
        }
        .is_retryable());
        // Admission pressure is transient: back off and resubmit.
        assert!(PolymerError::QueueFull { capacity: 4 }.is_retryable());
        assert!(PolymerError::MemoryBudgetExceeded {
            requested_bytes: 2,
            in_use_bytes: 1,
            budget_bytes: 2
        }
        .is_retryable());
        // Terminal request outcomes never succeed on resubmission.
        assert!(!PolymerError::ServiceStopped.is_retryable());
        assert!(!PolymerError::DeadlineExceeded {
            deadline: Duration::from_secs(1)
        }
        .is_retryable());
        assert!(!PolymerError::InvalidConfig("x".into()).is_retryable());
        assert!(!PolymerError::Divergence {
            vertex: 0,
            iteration: 0
        }
        .is_retryable());
        assert!(!PolymerError::IterationCapExceeded { cap: 9 }.is_retryable());
    }

    #[test]
    fn from_panic_recovers_typed_payloads() {
        let err = std::panic::catch_unwind(|| {
            panic_with(PolymerError::BarrierPoisoned);
        })
        .map_err(PolymerError::from_panic)
        .unwrap_err();
        assert_eq!(err, PolymerError::BarrierPoisoned);
    }

    #[test]
    fn from_panic_stringifies_plain_panics() {
        let err = std::panic::catch_unwind(|| panic!("plain {}", 42))
            .map_err(PolymerError::from_panic)
            .unwrap_err();
        assert_eq!(
            err,
            PolymerError::EnginePanicked {
                detail: "plain 42".into()
            }
        );
    }

    #[test]
    fn from_worker_panic_attributes_thread() {
        let err = std::panic::catch_unwind(|| panic!("injected"))
            .map_err(|p| PolymerError::from_worker_panic(5, p))
            .unwrap_err();
        match err {
            PolymerError::WorkerPanicked { worker, detail } => {
                assert_eq!(worker, 5);
                assert_eq!(detail, "injected");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short");
        let err: PolymerError = io.into();
        match err {
            PolymerError::Io { kind, ref detail } => {
                assert_eq!(kind, std::io::ErrorKind::UnexpectedEof);
                assert!(detail.contains("short"));
            }
            ref other => panic!("unexpected: {other:?}"),
        }
    }
}
