//! Deterministic fault-injection plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sentinel for "no allocation has failed yet" in [`PlanState`].
const NO_FAILED_ALLOC: u64 = u64::MAX;

/// A deterministic, seedable schedule of faults to inject into one run.
///
/// A plan is a cheap clone: the immutable *schedule* (which faults fire
/// where) and the mutable *trigger state* (allocation counters, one-shot
/// spent flags) live in two separate `Arc`s. The machine, the barriers and
/// the executor all hold clones of the same plan, so trigger state is global
/// to the run and the schedule is reproducible. A default plan injects
/// nothing and costs one relaxed atomic load per potential trigger point.
///
/// Two properties matter for retry/resume supervision:
///
/// - **One-shot faults stay spent across clones.** Worker panics and
///   nth-allocation failures model *transient* events: once fired, they do
///   not fire again on a clone of the same plan, so a supervised retry that
///   resumes past the trigger point genuinely recovers. Stragglers and
///   capacity clamps are *environmental* and stateless — they re-fire on
///   every attempt that crosses their trigger.
/// - **[`FaultPlan::fork_attempt`] resets the trigger state** (fresh
///   counters, nothing spent) while sharing the schedule, so a chaos harness
///   can make every attempt see the identical fault sequence.
///
/// Builder methods are copy-on-write: editing a cloned plan diverges its
/// schedule without touching the clone it was made from, while the trigger
/// state stays shared. Repeated calls to site builders *compose* — e.g. two
/// `panic_worker_at` calls register two independent panic sites.
///
/// ```
/// use polymer_faults::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .with_seed(42)
///     .fail_nth_alloc(3)
///     .panic_worker_at(1, 2)
///     .barrier_timeout(Duration::from_secs(5));
/// assert!(!plan.should_fail_alloc()); // allocation 0
/// assert!(!plan.should_fail_alloc()); // allocation 1
/// assert!(!plan.should_fail_alloc()); // allocation 2
/// assert!(plan.should_fail_alloc()); // allocation 3 fails
/// assert!(plan.should_panic_worker(1, 2));
/// assert!(!plan.should_panic_worker(1, 2)); // one-shot: spent
/// let retry = plan.fork_attempt();
/// assert!(retry.should_panic_worker(1, 2)); // fresh attempt re-fires
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    cfg: Arc<PlanCfg>,
    state: Arc<PlanState>,
}

/// The immutable schedule: which faults fire at which trigger points.
#[derive(Clone, Debug, Default)]
struct PlanCfg {
    seed: u64,
    /// Fail the allocations with these zero-based indices.
    fail_allocs: Vec<u64>,
    /// Clamp every node's memory capacity to this many bytes (overrides any
    /// larger spec capacity).
    node_capacity_clamp: Option<u64>,
    /// Delay worker `tid` by `delay` at the start of iteration `iteration`.
    stragglers: Vec<(usize, usize, Duration)>,
    /// Panic worker `tid` at the start of iteration `iteration`.
    panic_workers: Vec<(usize, usize)>,
    /// Truncate injected I/O streams after this many bytes.
    short_read_after: Option<u64>,
    /// Deadline for every barrier wait of the run.
    barrier_timeout: Option<Duration>,
}

/// The mutable trigger state, shared by every clone of a plan (but *not* by
/// [`FaultPlan::fork_attempt`] forks).
#[derive(Debug)]
struct PlanState {
    alloc_counter: AtomicU64,
    /// Bitmask over `PlanCfg::panic_workers` indices: bit i set once site i
    /// has fired (one-shot semantics).
    panics_spent: AtomicU64,
    /// Index of the last allocation failed by this plan, or
    /// [`NO_FAILED_ALLOC`].
    last_failed_alloc: AtomicU64,
}

impl Default for PlanState {
    fn default() -> Self {
        PlanState {
            alloc_counter: AtomicU64::new(0),
            panics_spent: AtomicU64::new(0),
            last_failed_alloc: AtomicU64::new(NO_FAILED_ALLOC),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn edit(mut self, f: impl FnOnce(&mut PlanCfg)) -> Self {
        // Copy-on-write: editing a shared plan clones the schedule (the
        // trigger state stays shared), so a supervisor can derive a
        // per-attempt variant — e.g. tighten the barrier deadline — without
        // perturbing the plan its caller holds.
        f(Arc::make_mut(&mut self.cfg));
        self
    }

    /// A plan with the same schedule but *fresh* trigger state: counters at
    /// zero, no one-shot site spent. Use when every retry attempt should see
    /// the identical fault sequence (deterministic chaos sweeps) rather than
    /// the default transient-fault semantics where spent one-shots stay
    /// spent.
    pub fn fork_attempt(&self) -> Self {
        FaultPlan {
            cfg: Arc::clone(&self.cfg),
            state: Arc::new(PlanState::default()),
        }
    }

    /// Set the seed used to derive per-worker jitter (see
    /// [`FaultPlan::jitter_for`]).
    pub fn with_seed(self, seed: u64) -> Self {
        self.edit(|p| p.seed = seed)
    }

    /// Fail the `n`th allocation registered on the machine (zero-based),
    /// modelling `mmap` returning `ENOMEM` mid-run. Composes: each call adds
    /// one more failing index.
    pub fn fail_nth_alloc(self, n: u64) -> Self {
        self.edit(|p| p.fail_allocs.push(n))
    }

    /// Clamp every node's memory capacity to `bytes`, forcing the machine's
    /// spill policy to engage (or fail) on node-bound allocations.
    pub fn clamp_node_capacity(self, bytes: u64) -> Self {
        self.edit(|p| p.node_capacity_clamp = Some(bytes))
    }

    /// Delay worker `tid` by `delay` at the start of iteration `iteration`
    /// (a barrier straggler). Composes: each call adds one more straggler
    /// site.
    pub fn delay_worker(self, tid: usize, iteration: usize, delay: Duration) -> Self {
        self.edit(|p| p.stragglers.push((tid, iteration, delay)))
    }

    /// Panic worker `tid` at the start of iteration `iteration`. One-shot:
    /// the site fires at most once per plan state (see
    /// [`FaultPlan::fork_attempt`]). Composes: each call adds one more panic
    /// site (at most 64 sites are tracked).
    pub fn panic_worker_at(self, tid: usize, iteration: usize) -> Self {
        self.edit(|p| p.panic_workers.push((tid, iteration)))
    }

    /// Truncate streams wrapped in [`crate::ShortReader::from_plan`] after
    /// `bytes` bytes.
    pub fn short_read_after(self, bytes: u64) -> Self {
        self.edit(|p| p.short_read_after = Some(bytes))
    }

    /// Bound every barrier wait of the run by `timeout`; an expired wait
    /// poisons the barrier and surfaces as a typed error.
    pub fn barrier_timeout(self, timeout: Duration) -> Self {
        self.edit(|p| p.barrier_timeout = Some(timeout))
    }

    // --- Trigger queries (called by the injected-into layers) -----------

    /// Count one allocation; true when this allocation must fail. Each
    /// failing index fires at most once per plan state: the counter is
    /// monotone, so a supervised retry (which keeps counting on the shared
    /// state) sails past already-spent indices.
    pub fn should_fail_alloc(&self) -> bool {
        if self.cfg.fail_allocs.is_empty() {
            return false;
        }
        let i = self.state.alloc_counter.fetch_add(1, Ordering::Relaxed);
        if self.cfg.fail_allocs.contains(&i) {
            self.state.last_failed_alloc.store(i, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Index of the allocation that failed (for error reporting). Only
    /// meaningful after [`FaultPlan::should_fail_alloc`] returned true, when
    /// it names the failed allocation.
    pub fn failed_alloc_index(&self) -> u64 {
        match self.state.last_failed_alloc.load(Ordering::Relaxed) {
            NO_FAILED_ALLOC => self.cfg.fail_allocs.first().copied().unwrap_or(0),
            i => i,
        }
    }

    /// The per-node capacity clamp, if any.
    pub fn node_capacity_clamp(&self) -> Option<u64> {
        self.cfg.node_capacity_clamp
    }

    /// The straggler delay for worker `tid` at `iteration`, if any.
    /// Stragglers are environmental (stateless): they re-fire on every
    /// attempt that crosses the site.
    pub fn straggle_delay(&self, tid: usize, iteration: usize) -> Option<Duration> {
        self.cfg
            .stragglers
            .iter()
            .find(|&&(t, i, _)| t == tid && i == iteration)
            .map(|&(_, _, d)| d)
    }

    /// True when worker `tid` must panic at the start of `iteration`.
    /// One-shot: a matching site fires only the first time it is queried
    /// (modelling a transient crash), then stays spent for every clone of
    /// this plan state.
    pub fn should_panic_worker(&self, tid: usize, iteration: usize) -> bool {
        let Some(site) = self
            .cfg
            .panic_workers
            .iter()
            .position(|&(t, i)| t == tid && i == iteration)
        else {
            return false;
        };
        let bit = 1u64 << (site as u64 & 63);
        // fetch_or returns the previous mask: we fired iff the bit was clear.
        self.state.panics_spent.fetch_or(bit, Ordering::Relaxed) & bit == 0
    }

    /// The configured short-read byte limit, if any.
    pub fn short_read_limit(&self) -> Option<u64> {
        self.cfg.short_read_after
    }

    /// The configured barrier-wait deadline, if any.
    pub fn barrier_deadline(&self) -> Option<Duration> {
        self.cfg.barrier_timeout
    }

    /// True when the schedule contains any worker-level site (straggler or
    /// panic) — i.e. faults that only the real-threads executor can observe.
    pub fn has_worker_sites(&self) -> bool {
        !self.cfg.stragglers.is_empty() || !self.cfg.panic_workers.is_empty()
    }

    /// A deterministic pseudo-random jitter in `[0, max)` derived from the
    /// plan's seed and a stream index (splitmix64) — lets tests spread
    /// worker start times reproducibly without a RNG dependency.
    pub fn jitter_for(&self, stream: u64, max: Duration) -> Duration {
        let mut z = self
            .cfg
            .seed
            .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let nanos = max.as_nanos() as u64;
        if nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(z % nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::new();
        for _ in 0..100 {
            assert!(!p.should_fail_alloc());
        }
        assert_eq!(p.node_capacity_clamp(), None);
        assert_eq!(p.straggle_delay(0, 0), None);
        assert!(!p.should_panic_worker(0, 0));
        assert_eq!(p.short_read_limit(), None);
        assert_eq!(p.barrier_deadline(), None);
        assert!(!p.has_worker_sites());
    }

    #[test]
    fn nth_alloc_counter_is_shared_across_clones() {
        let p = FaultPlan::new().fail_nth_alloc(2);
        let q = p.clone();
        assert!(!p.should_fail_alloc()); // 0
        assert!(!q.should_fail_alloc()); // 1
        assert!(p.should_fail_alloc()); // 2 — fails
        assert!(!q.should_fail_alloc()); // 3
        assert_eq!(p.failed_alloc_index(), 2);
    }

    #[test]
    fn straggler_and_panic_match_exact_points() {
        let p = FaultPlan::new()
            .delay_worker(2, 5, Duration::from_millis(10))
            .panic_worker_at(1, 3);
        assert_eq!(p.straggle_delay(2, 5), Some(Duration::from_millis(10)));
        assert_eq!(p.straggle_delay(2, 4), None);
        assert_eq!(p.straggle_delay(1, 5), None);
        assert!(p.should_panic_worker(1, 3));
        assert!(!p.should_panic_worker(1, 2));
    }

    #[test]
    fn panic_sites_are_one_shot_and_fork_attempt_rearms_them() {
        let p = FaultPlan::new().panic_worker_at(1, 3);
        let clone = p.clone();
        assert!(p.should_panic_worker(1, 3));
        // Spent — neither the plan nor its clone fires again.
        assert!(!p.should_panic_worker(1, 3));
        assert!(!clone.should_panic_worker(1, 3));
        // A forked attempt shares the schedule but re-arms the site.
        let fork = p.fork_attempt();
        assert!(fork.should_panic_worker(1, 3));
        assert!(!fork.should_panic_worker(1, 3));
        // The fork's state is independent of the original's.
        assert!(!p.should_panic_worker(1, 3));
    }

    #[test]
    fn fork_attempt_resets_the_alloc_counter() {
        let p = FaultPlan::new().fail_nth_alloc(1);
        assert!(!p.should_fail_alloc()); // 0
        assert!(p.should_fail_alloc()); // 1 — fails
        assert!(!p.should_fail_alloc()); // 2: spent, a retry sails past
        let fork = p.fork_attempt();
        assert!(!fork.should_fail_alloc()); // 0 again
        assert!(fork.should_fail_alloc()); // 1 — deterministic re-fire
        assert_eq!(fork.failed_alloc_index(), 1);
    }

    #[test]
    fn multi_site_builders_compose() {
        let p = FaultPlan::new()
            .delay_worker(0, 1, Duration::from_millis(1))
            .delay_worker(3, 2, Duration::from_millis(2))
            .panic_worker_at(1, 1)
            .panic_worker_at(2, 4)
            .fail_nth_alloc(0)
            .fail_nth_alloc(2);
        assert!(p.has_worker_sites());
        assert_eq!(p.straggle_delay(0, 1), Some(Duration::from_millis(1)));
        assert_eq!(p.straggle_delay(3, 2), Some(Duration::from_millis(2)));
        assert!(p.should_panic_worker(1, 1));
        assert!(p.should_panic_worker(2, 4));
        assert!(p.should_fail_alloc()); // 0 — fails
        assert!(!p.should_fail_alloc()); // 1
        assert!(p.should_fail_alloc()); // 2 — fails
        assert_eq!(p.failed_alloc_index(), 2);
    }

    #[test]
    fn builder_edits_on_a_shared_plan_are_copy_on_write() {
        let base = FaultPlan::new().with_seed(9);
        let machine_copy = base.clone();
        // Deriving a per-attempt variant (e.g. a supervisor tightening the
        // barrier deadline) must not perturb the copy other layers hold...
        let derived = base.barrier_timeout(Duration::from_millis(5));
        assert_eq!(machine_copy.barrier_deadline(), None);
        assert_eq!(derived.barrier_deadline(), Some(Duration::from_millis(5)));
        // ...while the trigger state stays shared: a one-shot spent via the
        // derived plan is spent for the original clone too.
        let armed = FaultPlan::new().panic_worker_at(0, 0);
        let shared = armed.clone();
        let tightened = armed.barrier_timeout(Duration::from_millis(5));
        assert!(tightened.should_panic_worker(0, 0));
        assert!(!shared.should_panic_worker(0, 0));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FaultPlan::new().with_seed(7);
        let q = FaultPlan::new().with_seed(7);
        let max = Duration::from_millis(5);
        for s in 0..32 {
            let a = p.jitter_for(s, max);
            assert_eq!(a, q.jitter_for(s, max));
            assert!(a < max);
        }
        assert_eq!(p.jitter_for(3, Duration::ZERO), Duration::ZERO);
        // Different seeds give different schedules (overwhelmingly likely).
        let r = FaultPlan::new().with_seed(8);
        assert!((0..32).any(|s| p.jitter_for(s, max) != r.jitter_for(s, max)));
    }
}
