//! Deterministic fault-injection plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic, seedable schedule of faults to inject into one run.
///
/// A plan is a cheap clone (an `Arc` internally); the machine, the barriers
/// and the executor all hold clones of the same plan, so trigger counters
/// (nth allocation, nth barrier crossing) are global to the run and the
/// schedule is reproducible. A default plan injects nothing and costs one
/// relaxed atomic load per potential trigger point.
///
/// ```
/// use polymer_faults::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .with_seed(42)
///     .fail_nth_alloc(3)
///     .panic_worker_at(1, 2)
///     .barrier_timeout(Duration::from_secs(5));
/// assert!(!plan.should_fail_alloc()); // allocation 0
/// assert!(!plan.should_fail_alloc()); // allocation 1
/// assert!(!plan.should_fail_alloc()); // allocation 2
/// assert!(plan.should_fail_alloc()); // allocation 3 fails
/// assert!(plan.should_panic_worker(1, 2));
/// assert!(!plan.should_panic_worker(0, 2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

#[derive(Debug, Default)]
struct PlanInner {
    seed: u64,
    /// Fail the allocation with this zero-based index.
    fail_alloc_at: Option<u64>,
    alloc_counter: AtomicU64,
    /// Clamp every node's memory capacity to this many bytes (overrides any
    /// larger spec capacity).
    node_capacity_clamp: Option<u64>,
    /// Delay worker `tid` by `delay` at the start of iteration `iteration`.
    straggler: Option<(usize, usize, Duration)>,
    /// Panic worker `tid` at the start of iteration `iteration`.
    panic_worker: Option<(usize, usize)>,
    /// Truncate injected I/O streams after this many bytes.
    short_read_after: Option<u64>,
    /// Deadline for every barrier wait of the run.
    barrier_timeout: Option<Duration>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn edit(self, f: impl FnOnce(&mut PlanInner)) -> Self {
        // Builder methods are called before the plan is shared, so the Arc
        // is unique; `unwrap` documents that invariant.
        let mut inner = Arc::try_unwrap(self.inner)
            .expect("FaultPlan builders must run before the plan is cloned");
        f(&mut inner);
        FaultPlan {
            inner: Arc::new(inner),
        }
    }

    /// Set the seed used to derive per-worker jitter (see
    /// [`FaultPlan::jitter_for`]).
    pub fn with_seed(self, seed: u64) -> Self {
        self.edit(|p| p.seed = seed)
    }

    /// Fail the `n`th allocation registered on the machine (zero-based),
    /// modelling `mmap` returning `ENOMEM` mid-run.
    pub fn fail_nth_alloc(self, n: u64) -> Self {
        self.edit(|p| p.fail_alloc_at = Some(n))
    }

    /// Clamp every node's memory capacity to `bytes`, forcing the machine's
    /// spill policy to engage (or fail) on node-bound allocations.
    pub fn clamp_node_capacity(self, bytes: u64) -> Self {
        self.edit(|p| p.node_capacity_clamp = Some(bytes))
    }

    /// Delay worker `tid` by `delay` at the start of iteration `iteration`
    /// (a barrier straggler).
    pub fn delay_worker(self, tid: usize, iteration: usize, delay: Duration) -> Self {
        self.edit(|p| p.straggler = Some((tid, iteration, delay)))
    }

    /// Panic worker `tid` at the start of iteration `iteration`.
    pub fn panic_worker_at(self, tid: usize, iteration: usize) -> Self {
        self.edit(|p| p.panic_worker = Some((tid, iteration)))
    }

    /// Truncate streams wrapped in [`crate::ShortReader::from_plan`] after
    /// `bytes` bytes.
    pub fn short_read_after(self, bytes: u64) -> Self {
        self.edit(|p| p.short_read_after = Some(bytes))
    }

    /// Bound every barrier wait of the run by `timeout`; an expired wait
    /// poisons the barrier and surfaces as a typed error.
    pub fn barrier_timeout(self, timeout: Duration) -> Self {
        self.edit(|p| p.barrier_timeout = Some(timeout))
    }

    // --- Trigger queries (called by the injected-into layers) -----------

    /// Count one allocation; true when this allocation must fail.
    pub fn should_fail_alloc(&self) -> bool {
        match self.inner.fail_alloc_at {
            None => false,
            Some(n) => self.inner.alloc_counter.fetch_add(1, Ordering::Relaxed) == n,
        }
    }

    /// Index the next allocation would get (for error reporting). Only
    /// meaningful after [`FaultPlan::should_fail_alloc`] returned true, when
    /// it names the failed allocation.
    pub fn failed_alloc_index(&self) -> u64 {
        self.inner.fail_alloc_at.unwrap_or(0)
    }

    /// The per-node capacity clamp, if any.
    pub fn node_capacity_clamp(&self) -> Option<u64> {
        self.inner.node_capacity_clamp
    }

    /// The straggler delay for worker `tid` at `iteration`, if any.
    pub fn straggle_delay(&self, tid: usize, iteration: usize) -> Option<Duration> {
        match self.inner.straggler {
            Some((t, i, d)) if t == tid && i == iteration => Some(d),
            _ => None,
        }
    }

    /// True when worker `tid` must panic at the start of `iteration`.
    pub fn should_panic_worker(&self, tid: usize, iteration: usize) -> bool {
        self.inner.panic_worker == Some((tid, iteration))
    }

    /// The configured short-read byte limit, if any.
    pub fn short_read_limit(&self) -> Option<u64> {
        self.inner.short_read_after
    }

    /// The configured barrier-wait deadline, if any.
    pub fn barrier_deadline(&self) -> Option<Duration> {
        self.inner.barrier_timeout
    }

    /// A deterministic pseudo-random jitter in `[0, max)` derived from the
    /// plan's seed and a stream index (splitmix64) — lets tests spread
    /// worker start times reproducibly without a RNG dependency.
    pub fn jitter_for(&self, stream: u64, max: Duration) -> Duration {
        let mut z = self
            .inner
            .seed
            .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let nanos = max.as_nanos() as u64;
        if nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(z % nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::new();
        for _ in 0..100 {
            assert!(!p.should_fail_alloc());
        }
        assert_eq!(p.node_capacity_clamp(), None);
        assert_eq!(p.straggle_delay(0, 0), None);
        assert!(!p.should_panic_worker(0, 0));
        assert_eq!(p.short_read_limit(), None);
        assert_eq!(p.barrier_deadline(), None);
    }

    #[test]
    fn nth_alloc_counter_is_shared_across_clones() {
        let p = FaultPlan::new().fail_nth_alloc(2);
        let q = p.clone();
        assert!(!p.should_fail_alloc()); // 0
        assert!(!q.should_fail_alloc()); // 1
        assert!(p.should_fail_alloc()); // 2 — fails
        assert!(!q.should_fail_alloc()); // 3
        assert_eq!(p.failed_alloc_index(), 2);
    }

    #[test]
    fn straggler_and_panic_match_exact_points() {
        let p = FaultPlan::new()
            .delay_worker(2, 5, Duration::from_millis(10))
            .panic_worker_at(1, 3);
        assert_eq!(p.straggle_delay(2, 5), Some(Duration::from_millis(10)));
        assert_eq!(p.straggle_delay(2, 4), None);
        assert_eq!(p.straggle_delay(1, 5), None);
        assert!(p.should_panic_worker(1, 3));
        assert!(!p.should_panic_worker(1, 2));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FaultPlan::new().with_seed(7);
        let q = FaultPlan::new().with_seed(7);
        let max = Duration::from_millis(5);
        for s in 0..32 {
            let a = p.jitter_for(s, max);
            assert_eq!(a, q.jitter_for(s, max));
            assert!(a < max);
        }
        assert_eq!(p.jitter_for(3, Duration::ZERO), Duration::ZERO);
        // Different seeds give different schedules (overwhelmingly likely).
        let r = FaultPlan::new().with_seed(8);
        assert!((0..32).any(|s| p.jitter_for(s, max) != r.jitter_for(s, max)));
    }
}
