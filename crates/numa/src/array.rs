//! Instrumented arrays: real data whose every access is classified by the
//! machine model.
//!
//! Two flavours mirror the paper's data-structure taxonomy (Section 2.1):
//!
//! * [`NumaArray<T>`] — read-mostly data (graph topology). Immutable after
//!   construction; reads go through [`AccessCtx`] for classification.
//! * [`NumaAtomicArray<T>`] — mutable shared data (application-defined
//!   `curr`/`next` arrays, runtime-state bitmaps). Element cells are real
//!   atomics, so the types are `Sync` and engine code written against them is
//!   data-race free even under genuine multithreading.
//!
//! Both carry a [`Placement`] resolved from the [`crate::AllocPolicy`] they
//! were allocated with; the destination node of each access is looked up from
//! the byte offset at page granularity.

use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::atomicf::{AtomicF32, AtomicF64};
use crate::ctx::{bulk_accounting, AccessCtx, Rw};
use crate::machine::{AllocId, Machine};
use crate::policy::Placement;

/// Scalar types that can live in a [`NumaAtomicArray`].
pub trait Atom: Copy + Send + Sync + 'static {
    /// The atomic cell type backing one element.
    type Repr: Send + Sync + 'static;
    /// True for types whose values can diverge to non-finite (floats);
    /// engines gate their per-iteration divergence scan on this so integer
    /// programs pay nothing.
    const CHECK_FINITE: bool = false;
    /// True when the value is finite. Always true for integers.
    #[inline]
    fn finite(self) -> bool {
        true
    }
    /// The zero value used for default initialization.
    fn zero() -> Self;
    /// Wrap a value in its atomic cell.
    fn new_atomic(v: Self) -> Self::Repr;
    /// Relaxed load.
    fn atom_load(r: &Self::Repr) -> Self;
    /// Relaxed store.
    fn atom_store(r: &Self::Repr, v: Self);
    /// Atomic add, returning the previous value.
    fn atom_add(r: &Self::Repr, v: Self) -> Self;
    /// Atomic min, returning the previous value.
    fn atom_min(r: &Self::Repr, v: Self) -> Self;
    /// Atomic max, returning the previous value.
    fn atom_max(r: &Self::Repr, v: Self) -> Self;
    /// Atomic multiply, returning the previous value.
    fn atom_mul(r: &Self::Repr, v: Self) -> Self;
    /// Atomic bitwise OR, returning the previous value. Panics for floats.
    fn atom_or(r: &Self::Repr, v: Self) -> Self;
    /// Compare-and-swap; `Ok(previous)` on success, `Err(actual)` on failure.
    fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self>;
}

macro_rules! int_atom {
    ($ty:ty, $atomic:ty) => {
        impl Atom for $ty {
            type Repr = $atomic;
            #[inline]
            fn zero() -> Self {
                0
            }
            #[inline]
            fn new_atomic(v: Self) -> Self::Repr {
                <$atomic>::new(v)
            }
            #[inline]
            fn atom_load(r: &Self::Repr) -> Self {
                r.load(Ordering::Relaxed)
            }
            #[inline]
            fn atom_store(r: &Self::Repr, v: Self) {
                r.store(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_add(r: &Self::Repr, v: Self) -> Self {
                r.fetch_add(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_min(r: &Self::Repr, v: Self) -> Self {
                r.fetch_min(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_max(r: &Self::Repr, v: Self) -> Self {
                r.fetch_max(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_mul(r: &Self::Repr, v: Self) -> Self {
                let mut cur = r.load(Ordering::Relaxed);
                loop {
                    match r.compare_exchange_weak(
                        cur,
                        cur.wrapping_mul(v),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(old) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
            #[inline]
            fn atom_or(r: &Self::Repr, v: Self) -> Self {
                r.fetch_or(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self> {
                r.compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            }
        }
    };
}

int_atom!(u32, AtomicU32);
int_atom!(u64, AtomicU64);
int_atom!(usize, AtomicUsize);

macro_rules! float_atom {
    ($ty:ty, $cell:ty, $bits:ty) => {
        impl Atom for $ty {
            type Repr = $cell;
            const CHECK_FINITE: bool = true;
            #[inline]
            fn finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn new_atomic(v: Self) -> Self::Repr {
                <$cell>::new(v)
            }
            #[inline]
            fn atom_load(r: &Self::Repr) -> Self {
                r.load()
            }
            #[inline]
            fn atom_store(r: &Self::Repr, v: Self) {
                r.store(v)
            }
            #[inline]
            fn atom_add(r: &Self::Repr, v: Self) -> Self {
                r.fetch_add(v)
            }
            #[inline]
            fn atom_min(r: &Self::Repr, v: Self) -> Self {
                r.fetch_min(v)
            }
            #[inline]
            fn atom_max(r: &Self::Repr, v: Self) -> Self {
                r.fetch_max(v)
            }
            #[inline]
            fn atom_mul(r: &Self::Repr, v: Self) -> Self {
                r.fetch_mul(v)
            }
            #[inline]
            fn atom_or(_r: &Self::Repr, _v: Self) -> Self {
                unimplemented!("bitwise OR is not defined for float atomics")
            }
            #[inline]
            fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self> {
                // Bit-exact CAS through the underlying integer atomic.
                let r_bits: &$bits = r.as_bits();
                match r_bits.compare_exchange(
                    cur.to_bits(),
                    new.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(b) => Ok(<$ty>::from_bits(b)),
                    Err(b) => Err(<$ty>::from_bits(b)),
                }
            }
        }
    };
}

float_atom!(f64, AtomicF64, AtomicU64);
float_atom!(f32, AtomicF32, AtomicU32);

/// Shared metadata of one instrumented allocation.
#[derive(Clone)]
pub(crate) struct ArrayMeta {
    pub id: AllocId,
    pub name: String,
    pub placement: Placement,
    pub elem: usize,
    pub machine: Machine,
}

impl ArrayMeta {
    #[inline]
    fn record(&self, ctx: &mut AccessCtx, idx: usize, rw: Rw) {
        ctx.record(self.id, &self.placement, idx * self.elem, self.elem, rw);
    }

    /// Charge a contiguous element range `[start, start + n)` as one
    /// coalesced run (or per element when the fast path is disabled).
    #[inline]
    fn record_run(&self, ctx: &mut AccessCtx, start: usize, n: usize, rw: Rw) {
        ctx.record_run(
            self.id,
            &self.placement,
            start * self.elem,
            self.elem,
            n,
            rw,
        );
    }
}

/// A read-mostly instrumented array (graph topology data).
pub struct NumaArray<T> {
    data: Box<[T]>,
    meta: ArrayMeta,
}

impl<T: Copy> NumaArray<T> {
    pub(crate) fn new(machine: Machine, id: AllocId, placement: Placement, data: Box<[T]>) -> Self {
        let name = machine.alloc_name(id);
        NumaArray {
            data,
            meta: ArrayMeta {
                id,
                name,
                placement,
                elem: std::mem::size_of::<T>().max(1),
                machine,
            },
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted read of element `i` by the simulated thread behind `ctx`.
    #[inline]
    pub fn get(&self, ctx: &mut AccessCtx, i: usize) -> T {
        self.meta.record(ctx, i, Rw::Read);
        self.data[i]
    }

    /// Accounted read of the element range `r`, charged as one coalesced
    /// sequential run (identical statistics to calling [`NumaArray::get`]
    /// once per element, classified once per page-run instead). Returns the
    /// backing slice, so the caller's data walk pays no per-element
    /// dispatch either.
    #[inline]
    pub fn load_range(&self, ctx: &mut AccessCtx, r: Range<usize>) -> &[T] {
        assert!(r.end <= self.data.len(), "load_range out of bounds");
        self.meta.record_run(ctx, r.start, r.len(), Rw::Read);
        // The assert above makes this slice operation check-free.
        &self.data[r]
    }

    /// Accounted sequential iteration over the element range `r`; equivalent
    /// to [`NumaArray::load_range`] but yielding elements by value.
    #[inline]
    pub fn iter_seq(&self, ctx: &mut AccessCtx, r: Range<usize>) -> impl Iterator<Item = T> + '_ {
        self.load_range(ctx, r).iter().copied()
    }

    /// Unaccounted view of the data (construction, verification, tests).
    #[inline]
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Unaccounted mutable view, for the construction stage only.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Home node of element `i`.
    #[inline]
    pub fn node_of(&self, i: usize) -> usize {
        self.meta.placement.node_of(i * self.meta.elem)
    }

    /// The allocation id, which keys per-array access statistics.
    #[inline]
    pub fn alloc_id(&self) -> AllocId {
        self.meta.id
    }
}

impl<T> std::fmt::Debug for NumaArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaArray")
            .field("name", &self.meta.name)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T> Drop for NumaArray<T> {
    fn drop(&mut self) {
        let bytes = (self.data.len() * self.meta.elem) as u64;
        self.meta
            .machine
            .on_free(self.meta.id, &self.meta.name, bytes);
    }
}

/// A mutable shared instrumented array (application data, runtime states).
pub struct NumaAtomicArray<T: Atom> {
    data: Box<[T::Repr]>,
    meta: ArrayMeta,
}

impl<T: Atom> NumaAtomicArray<T> {
    pub(crate) fn new(
        machine: Machine,
        id: AllocId,
        placement: Placement,
        data: Box<[T::Repr]>,
    ) -> Self {
        let name = machine.alloc_name(id);
        NumaAtomicArray {
            data,
            meta: ArrayMeta {
                id,
                name,
                placement,
                elem: std::mem::size_of::<T>().max(1),
                machine,
            },
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted relaxed load.
    #[inline]
    pub fn load(&self, ctx: &mut AccessCtx, i: usize) -> T {
        self.meta.record(ctx, i, Rw::Read);
        T::atom_load(&self.data[i])
    }

    /// Accounted relaxed store.
    #[inline]
    pub fn store(&self, ctx: &mut AccessCtx, i: usize, v: T) {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_store(&self.data[i], v);
    }

    /// Accounted atomic add; the read-modify-write is charged as one write
    /// transaction, matching how the paper counts accesses.
    #[inline]
    pub fn fetch_add(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_add(&self.data[i], v)
    }

    /// Accounted atomic min.
    #[inline]
    pub fn fetch_min(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_min(&self.data[i], v)
    }

    /// Accounted atomic max.
    #[inline]
    pub fn fetch_max(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_max(&self.data[i], v)
    }

    /// Accounted atomic multiply.
    #[inline]
    pub fn fetch_mul(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_mul(&self.data[i], v)
    }

    /// Accounted atomic bitwise OR (integers only).
    #[inline]
    pub fn fetch_or(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_or(&self.data[i], v)
    }

    /// Accounted compare-and-swap.
    #[inline]
    pub fn cas(&self, ctx: &mut AccessCtx, i: usize, cur: T, new: T) -> Result<T, T> {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_cas(&self.data[i], cur, new)
    }

    /// Accounted sequential iteration over the element range `r`, charged as
    /// one coalesced run — identical statistics to calling
    /// [`NumaAtomicArray::load`] once per element.
    #[inline]
    pub fn iter_seq(&self, ctx: &mut AccessCtx, r: Range<usize>) -> impl Iterator<Item = T> + '_ {
        assert!(r.end <= self.data.len(), "iter_seq out of bounds");
        self.meta.record_run(ctx, r.start, r.len(), Rw::Read);
        // The assert above makes this slice operation check-free.
        self.data[r].iter().map(T::atom_load)
    }

    /// Accounted sequential store sweep: `arr[i] = f(i)` for `i` in `r`,
    /// charged as one coalesced write run.
    #[inline]
    pub fn store_seq(&self, ctx: &mut AccessCtx, r: Range<usize>, mut f: impl FnMut(usize) -> T) {
        assert!(r.end <= self.data.len(), "store_seq out of bounds");
        self.meta.record_run(ctx, r.start, r.len(), Rw::Write);
        let start = r.start;
        for (k, cell) in self.data[r].iter().enumerate() {
            T::atom_store(cell, f(start + k));
        }
    }

    /// Accounted fill of the element range `r` with `v`, charged as one
    /// coalesced write run.
    #[inline]
    pub fn fill(&self, ctx: &mut AccessCtx, r: Range<usize>, v: T) {
        assert!(r.end <= self.data.len(), "fill out of bounds");
        self.meta.record_run(ctx, r.start, r.len(), Rw::Write);
        for cell in &self.data[r] {
            T::atom_store(cell, v);
        }
    }

    /// Accounted sequential read-modify-write sweep for degree/delta
    /// updates: atomically adds `f(i)` to `arr[i]` for `i` in `r`, charged
    /// as one coalesced run of write transactions (read-modify-writes count
    /// as writes, as in the scalar [`NumaAtomicArray::fetch_add`]).
    #[inline]
    pub fn fetch_add_seq(
        &self,
        ctx: &mut AccessCtx,
        r: Range<usize>,
        mut f: impl FnMut(usize) -> T,
    ) {
        assert!(r.end <= self.data.len(), "fetch_add_seq out of bounds");
        self.meta.record_run(ctx, r.start, r.len(), Rw::Write);
        let start = r.start;
        for (k, cell) in self.data[r].iter().enumerate() {
            T::atom_add(cell, f(start + k));
        }
    }

    /// A sequential append cursor starting at `start`: consecutive
    /// [`SeqWriter::push`] calls store to consecutive slots, and the
    /// accounting is coalesced into page-runs when the writer is flushed.
    /// Call [`SeqWriter::flush`] before the phase ends — unflushed pushes
    /// are stored but not yet charged (with the fast path disabled, every
    /// push charges immediately and flush is a no-op).
    #[inline]
    pub fn seq_writer(&self, start: usize) -> SeqWriter<'_, T> {
        SeqWriter {
            arr: self,
            run_start: start,
            pos: start,
        }
    }

    /// Unaccounted load (construction, verification, tests).
    #[inline]
    pub fn raw_load(&self, i: usize) -> T {
        T::atom_load(&self.data[i])
    }

    /// Unaccounted store (construction stage).
    #[inline]
    pub fn raw_store(&self, i: usize, v: T) {
        T::atom_store(&self.data[i], v)
    }

    /// Copy out all values, unaccounted.
    pub fn snapshot(&self) -> Vec<T> {
        self.data.iter().map(T::atom_load).collect()
    }

    /// Home node of element `i`.
    #[inline]
    pub fn node_of(&self, i: usize) -> usize {
        self.meta.placement.node_of(i * self.meta.elem)
    }

    /// The allocation id, which keys per-array access statistics.
    #[inline]
    pub fn alloc_id(&self) -> AllocId {
        self.meta.id
    }
}

/// Sequential append cursor over a [`NumaAtomicArray`], for streams whose
/// length is not known up front (X-Stream's update buffers). Stores land
/// immediately; accounting for the contiguous run accumulates until
/// [`SeqWriter::flush`], which charges it as one coalesced write run —
/// bit-identical to per-push accounting because the slots are consecutive
/// and nothing else touches the array between pushes.
pub struct SeqWriter<'a, T: Atom> {
    arr: &'a NumaAtomicArray<T>,
    run_start: usize,
    pos: usize,
}

impl<T: Atom> SeqWriter<'_, T> {
    /// Store `v` at the cursor and advance.
    #[inline]
    pub fn push(&mut self, ctx: &mut AccessCtx, v: T) {
        if !bulk_accounting() {
            // Scalar oracle: charge each append individually.
            self.arr.meta.record(ctx, self.pos, Rw::Write);
            self.run_start = self.pos + 1;
        }
        T::atom_store(&self.arr.data[self.pos], v);
        self.pos += 1;
    }

    /// Charge the pending run of pushes as one coalesced write run.
    #[inline]
    pub fn flush(&mut self, ctx: &mut AccessCtx) {
        let n = self.pos - self.run_start;
        if n > 0 {
            self.arr.meta.record_run(ctx, self.run_start, n, Rw::Write);
        }
        self.run_start = self.pos;
    }

    /// The next slot to be written (= number of elements written when the
    /// cursor started at 0).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl<T: Atom> std::fmt::Debug for NumaAtomicArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaAtomicArray")
            .field("name", &self.meta.name)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T: Atom> Drop for NumaAtomicArray<T> {
    fn drop(&mut self) {
        let bytes = (self.data.len() * self.meta.elem) as u64;
        self.meta
            .machine
            .on_free(self.meta.id, &self.meta.name, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::test2())
    }

    #[test]
    fn plain_array_reads_are_accounted() {
        let m = machine();
        let a = m.alloc_array_with("a", 1024, AllocPolicy::OnNode(0), |i| i as u64);
        let mut ctx = AccessCtx::new(&m, 0);
        assert_eq!(a.get(&mut ctx, 7), 7);
        assert_eq!(a.get(&mut ctx, 8), 8);
        let s = ctx.take_stats();
        assert_eq!(s.total_count(), 2);
        assert_eq!(s.total_bytes(), 16);
    }

    #[test]
    fn atomic_array_ops() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("x", 8, AllocPolicy::Interleaved);
        let mut ctx = AccessCtx::new(&m, 0);
        a.store(&mut ctx, 0, 5);
        assert_eq!(a.fetch_add(&mut ctx, 0, 3), 5);
        assert_eq!(a.load(&mut ctx, 0), 8);
        assert_eq!(a.fetch_min(&mut ctx, 0, 2), 8);
        assert_eq!(a.fetch_max(&mut ctx, 0, 100), 2);
        assert_eq!(a.cas(&mut ctx, 0, 100, 1), Ok(100));
        assert_eq!(a.cas(&mut ctx, 0, 100, 2), Err(1));
        assert_eq!(a.raw_load(0), 1);
    }

    #[test]
    fn float_atomic_array() {
        let m = machine();
        let a = m.alloc_atomic::<f64>("r", 4, AllocPolicy::OnNode(1));
        let mut ctx = AccessCtx::new(&m, 0);
        a.fetch_add(&mut ctx, 2, 1.5);
        a.fetch_add(&mut ctx, 2, 1.5);
        assert_eq!(a.load(&mut ctx, 2), 3.0);
        a.fetch_mul(&mut ctx, 2, 2.0);
        assert_eq!(a.raw_load(2), 6.0);
        assert_eq!(a.cas(&mut ctx, 2, 6.0, 0.5), Ok(6.0));
    }

    #[test]
    fn node_of_follows_placement() {
        let m = machine();
        // 1024 u64 = 2 pages: page 0 -> node 0, page 1 -> node 1.
        let a = m.alloc_array::<u64>("p", 1024, AllocPolicy::Interleaved);
        assert_eq!(a.node_of(0), 0);
        assert_eq!(a.node_of(511), 0);
        assert_eq!(a.node_of(512), 1);
    }

    #[test]
    fn snapshot_copies_values() {
        let m = machine();
        let a = m.alloc_atomic_with::<u32>("s", 3, AllocPolicy::OnNode(0), |i| i as u32 * 10);
        assert_eq!(a.snapshot(), vec![0, 10, 20]);
    }

    #[test]
    fn load_range_matches_per_element_gets() {
        let m = machine();
        let a = m.alloc_array_with("lr", 2048, AllocPolicy::Interleaved, |i| i as u64);
        // Same walk through both paths on twin contexts.
        let mut c_bulk = AccessCtx::new(&m, 0);
        let mut c_scalar = AccessCtx::new(&m, 0);
        let slice = a.load_range(&mut c_bulk, 100..1500);
        assert_eq!(slice[0], 100);
        for i in 100..1500 {
            assert_eq!(a.get(&mut c_scalar, i), i as u64);
        }
        let (b, s) = (c_bulk.take_stats(), c_scalar.take_stats());
        assert_eq!(format!("{:?}", b), format!("{:?}", s));
    }

    #[test]
    fn store_seq_fill_fetch_add_seq_store_values_and_account_like_scalar() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("sw", 1024, AllocPolicy::Interleaved);
        let b = m.alloc_atomic::<u64>("sw2", 1024, AllocPolicy::Interleaved);
        let mut ca = AccessCtx::new(&m, 0);
        let mut cb = AccessCtx::new(&m, 0);
        a.store_seq(&mut ca, 10..600, |i| i as u64);
        a.fill(&mut ca, 600..700, 7);
        a.fetch_add_seq(&mut ca, 0..1024, |i| (i % 3) as u64);
        for i in 10..600 {
            b.store(&mut cb, i, i as u64);
        }
        for i in 600..700 {
            b.store(&mut cb, i, 7);
        }
        for i in 0..1024 {
            b.fetch_add(&mut cb, i, (i % 3) as u64);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        // Allocation ids differ, but the per-array counters must match.
        let (sa, sb) = (ca.take_stats(), cb.take_stats());
        assert_eq!(
            format!("{:?}", sa.array_bytes(a.alloc_id()).unwrap()),
            format!("{:?}", sb.array_bytes(b.alloc_id()).unwrap())
        );
    }

    #[test]
    fn seq_writer_defers_coalesced_accounting_until_flush() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("w", 512, AllocPolicy::OnNode(0));
        let mut ctx = AccessCtx::new(&m, 0);
        let mut w = a.seq_writer(5);
        for k in 0..40u64 {
            w.push(&mut ctx, k);
        }
        // Stores land immediately; charges wait for the flush.
        assert_eq!(a.raw_load(5), 0);
        assert_eq!(a.raw_load(44), 39);
        assert_eq!(ctx.take_stats().total_count(), 0);
        w.flush(&mut ctx);
        assert_eq!(w.pos(), 45);
        let s = ctx.take_stats();
        assert_eq!(s.total_count(), 40);
        assert_eq!(s.total_bytes(), 320);
        // A second flush with nothing pending charges nothing.
        w.flush(&mut ctx);
        assert_eq!(ctx.take_stats().total_count(), 0);
    }

    #[test]
    fn atomic_iter_seq_reads_values_and_charges_reads() {
        let m = machine();
        let a = m.alloc_atomic_with::<u64>("it", 256, AllocPolicy::Interleaved, |i| i as u64 * 2);
        let mut ctx = AccessCtx::new(&m, 0);
        let got: Vec<u64> = a.iter_seq(&mut ctx, 8..16).collect();
        assert_eq!(got, (8..16).map(|i| i * 2).collect::<Vec<u64>>());
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(
            st.count[crate::Rw::Read.index()]
                .iter()
                .flatten()
                .sum::<u64>(),
            8
        );
        assert_eq!(
            st.count[crate::Rw::Write.index()]
                .iter()
                .flatten()
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn atomic_array_is_sync_under_real_threads() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("c", 1, AllocPolicy::OnNode(0));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        u64::atom_add(&a.data[0], 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(a.raw_load(0), 4000);
    }
}
