//! Instrumented arrays: real data whose every access is classified by the
//! machine model.
//!
//! Two flavours mirror the paper's data-structure taxonomy (Section 2.1):
//!
//! * [`NumaArray<T>`] — read-mostly data (graph topology). Immutable after
//!   construction; reads go through [`AccessCtx`] for classification.
//! * [`NumaAtomicArray<T>`] — mutable shared data (application-defined
//!   `curr`/`next` arrays, runtime-state bitmaps). Element cells are real
//!   atomics, so the types are `Sync` and engine code written against them is
//!   data-race free even under genuine multithreading.
//!
//! Both carry a [`Placement`] resolved from the [`crate::AllocPolicy`] they
//! were allocated with; the destination node of each access is looked up from
//! the byte offset at page granularity.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::atomicf::{AtomicF32, AtomicF64};
use crate::ctx::{AccessCtx, Rw};
use crate::machine::{AllocId, Machine};
use crate::policy::Placement;

/// Scalar types that can live in a [`NumaAtomicArray`].
pub trait Atom: Copy + Send + Sync + 'static {
    /// The atomic cell type backing one element.
    type Repr: Send + Sync + 'static;
    /// True for types whose values can diverge to non-finite (floats);
    /// engines gate their per-iteration divergence scan on this so integer
    /// programs pay nothing.
    const CHECK_FINITE: bool = false;
    /// True when the value is finite. Always true for integers.
    #[inline]
    fn finite(self) -> bool {
        true
    }
    /// The zero value used for default initialization.
    fn zero() -> Self;
    /// Wrap a value in its atomic cell.
    fn new_atomic(v: Self) -> Self::Repr;
    /// Relaxed load.
    fn atom_load(r: &Self::Repr) -> Self;
    /// Relaxed store.
    fn atom_store(r: &Self::Repr, v: Self);
    /// Atomic add, returning the previous value.
    fn atom_add(r: &Self::Repr, v: Self) -> Self;
    /// Atomic min, returning the previous value.
    fn atom_min(r: &Self::Repr, v: Self) -> Self;
    /// Atomic max, returning the previous value.
    fn atom_max(r: &Self::Repr, v: Self) -> Self;
    /// Atomic multiply, returning the previous value.
    fn atom_mul(r: &Self::Repr, v: Self) -> Self;
    /// Atomic bitwise OR, returning the previous value. Panics for floats.
    fn atom_or(r: &Self::Repr, v: Self) -> Self;
    /// Compare-and-swap; `Ok(previous)` on success, `Err(actual)` on failure.
    fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self>;
}

macro_rules! int_atom {
    ($ty:ty, $atomic:ty) => {
        impl Atom for $ty {
            type Repr = $atomic;
            #[inline]
            fn zero() -> Self {
                0
            }
            #[inline]
            fn new_atomic(v: Self) -> Self::Repr {
                <$atomic>::new(v)
            }
            #[inline]
            fn atom_load(r: &Self::Repr) -> Self {
                r.load(Ordering::Relaxed)
            }
            #[inline]
            fn atom_store(r: &Self::Repr, v: Self) {
                r.store(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_add(r: &Self::Repr, v: Self) -> Self {
                r.fetch_add(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_min(r: &Self::Repr, v: Self) -> Self {
                r.fetch_min(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_max(r: &Self::Repr, v: Self) -> Self {
                r.fetch_max(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_mul(r: &Self::Repr, v: Self) -> Self {
                let mut cur = r.load(Ordering::Relaxed);
                loop {
                    match r.compare_exchange_weak(
                        cur,
                        cur.wrapping_mul(v),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(old) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
            #[inline]
            fn atom_or(r: &Self::Repr, v: Self) -> Self {
                r.fetch_or(v, Ordering::Relaxed)
            }
            #[inline]
            fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self> {
                r.compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            }
        }
    };
}

int_atom!(u32, AtomicU32);
int_atom!(u64, AtomicU64);
int_atom!(usize, AtomicUsize);

macro_rules! float_atom {
    ($ty:ty, $cell:ty, $bits:ty) => {
        impl Atom for $ty {
            type Repr = $cell;
            const CHECK_FINITE: bool = true;
            #[inline]
            fn finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn new_atomic(v: Self) -> Self::Repr {
                <$cell>::new(v)
            }
            #[inline]
            fn atom_load(r: &Self::Repr) -> Self {
                r.load()
            }
            #[inline]
            fn atom_store(r: &Self::Repr, v: Self) {
                r.store(v)
            }
            #[inline]
            fn atom_add(r: &Self::Repr, v: Self) -> Self {
                r.fetch_add(v)
            }
            #[inline]
            fn atom_min(r: &Self::Repr, v: Self) -> Self {
                r.fetch_min(v)
            }
            #[inline]
            fn atom_max(r: &Self::Repr, v: Self) -> Self {
                r.fetch_max(v)
            }
            #[inline]
            fn atom_mul(r: &Self::Repr, v: Self) -> Self {
                r.fetch_mul(v)
            }
            #[inline]
            fn atom_or(_r: &Self::Repr, _v: Self) -> Self {
                unimplemented!("bitwise OR is not defined for float atomics")
            }
            #[inline]
            fn atom_cas(r: &Self::Repr, cur: Self, new: Self) -> Result<Self, Self> {
                // Bit-exact CAS through the underlying integer atomic.
                let r_bits: &$bits = r.as_bits();
                match r_bits.compare_exchange(
                    cur.to_bits(),
                    new.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(b) => Ok(<$ty>::from_bits(b)),
                    Err(b) => Err(<$ty>::from_bits(b)),
                }
            }
        }
    };
}

float_atom!(f64, AtomicF64, AtomicU64);
float_atom!(f32, AtomicF32, AtomicU32);

/// Shared metadata of one instrumented allocation.
#[derive(Clone)]
pub(crate) struct ArrayMeta {
    pub id: AllocId,
    pub name: String,
    pub placement: Placement,
    pub elem: usize,
    pub machine: Machine,
}

impl ArrayMeta {
    #[inline]
    fn record(&self, ctx: &mut AccessCtx, idx: usize, rw: Rw) {
        let off = idx * self.elem;
        let dst = self.placement.node_of(off);
        ctx.record(self.id, off, self.elem, rw, dst);
    }
}

/// A read-mostly instrumented array (graph topology data).
pub struct NumaArray<T> {
    data: Box<[T]>,
    meta: ArrayMeta,
}

impl<T: Copy> NumaArray<T> {
    pub(crate) fn new(machine: Machine, id: AllocId, placement: Placement, data: Box<[T]>) -> Self {
        let name = machine.alloc_name(id);
        NumaArray {
            data,
            meta: ArrayMeta {
                id,
                name,
                placement,
                elem: std::mem::size_of::<T>().max(1),
                machine,
            },
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted read of element `i` by the simulated thread behind `ctx`.
    #[inline]
    pub fn get(&self, ctx: &mut AccessCtx, i: usize) -> T {
        self.meta.record(ctx, i, Rw::Read);
        self.data[i]
    }

    /// Unaccounted view of the data (construction, verification, tests).
    #[inline]
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Unaccounted mutable view, for the construction stage only.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Home node of element `i`.
    #[inline]
    pub fn node_of(&self, i: usize) -> usize {
        self.meta.placement.node_of(i * self.meta.elem)
    }

    /// The allocation id, which keys per-array access statistics.
    #[inline]
    pub fn alloc_id(&self) -> AllocId {
        self.meta.id
    }
}

impl<T> std::fmt::Debug for NumaArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaArray")
            .field("name", &self.meta.name)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T> Drop for NumaArray<T> {
    fn drop(&mut self) {
        let bytes = (self.data.len() * self.meta.elem) as u64;
        self.meta
            .machine
            .on_free(self.meta.id, &self.meta.name, bytes);
    }
}

/// A mutable shared instrumented array (application data, runtime states).
pub struct NumaAtomicArray<T: Atom> {
    data: Box<[T::Repr]>,
    meta: ArrayMeta,
}

impl<T: Atom> NumaAtomicArray<T> {
    pub(crate) fn new(
        machine: Machine,
        id: AllocId,
        placement: Placement,
        data: Box<[T::Repr]>,
    ) -> Self {
        let name = machine.alloc_name(id);
        NumaAtomicArray {
            data,
            meta: ArrayMeta {
                id,
                name,
                placement,
                elem: std::mem::size_of::<T>().max(1),
                machine,
            },
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted relaxed load.
    #[inline]
    pub fn load(&self, ctx: &mut AccessCtx, i: usize) -> T {
        self.meta.record(ctx, i, Rw::Read);
        T::atom_load(&self.data[i])
    }

    /// Accounted relaxed store.
    #[inline]
    pub fn store(&self, ctx: &mut AccessCtx, i: usize, v: T) {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_store(&self.data[i], v);
    }

    /// Accounted atomic add; the read-modify-write is charged as one write
    /// transaction, matching how the paper counts accesses.
    #[inline]
    pub fn fetch_add(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_add(&self.data[i], v)
    }

    /// Accounted atomic min.
    #[inline]
    pub fn fetch_min(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_min(&self.data[i], v)
    }

    /// Accounted atomic max.
    #[inline]
    pub fn fetch_max(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_max(&self.data[i], v)
    }

    /// Accounted atomic multiply.
    #[inline]
    pub fn fetch_mul(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_mul(&self.data[i], v)
    }

    /// Accounted atomic bitwise OR (integers only).
    #[inline]
    pub fn fetch_or(&self, ctx: &mut AccessCtx, i: usize, v: T) -> T {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_or(&self.data[i], v)
    }

    /// Accounted compare-and-swap.
    #[inline]
    pub fn cas(&self, ctx: &mut AccessCtx, i: usize, cur: T, new: T) -> Result<T, T> {
        self.meta.record(ctx, i, Rw::Write);
        T::atom_cas(&self.data[i], cur, new)
    }

    /// Unaccounted load (construction, verification, tests).
    #[inline]
    pub fn raw_load(&self, i: usize) -> T {
        T::atom_load(&self.data[i])
    }

    /// Unaccounted store (construction stage).
    #[inline]
    pub fn raw_store(&self, i: usize, v: T) {
        T::atom_store(&self.data[i], v)
    }

    /// Copy out all values, unaccounted.
    pub fn snapshot(&self) -> Vec<T> {
        self.data.iter().map(T::atom_load).collect()
    }

    /// Home node of element `i`.
    #[inline]
    pub fn node_of(&self, i: usize) -> usize {
        self.meta.placement.node_of(i * self.meta.elem)
    }

    /// The allocation id, which keys per-array access statistics.
    #[inline]
    pub fn alloc_id(&self) -> AllocId {
        self.meta.id
    }
}

impl<T: Atom> std::fmt::Debug for NumaAtomicArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaAtomicArray")
            .field("name", &self.meta.name)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T: Atom> Drop for NumaAtomicArray<T> {
    fn drop(&mut self) {
        let bytes = (self.data.len() * self.meta.elem) as u64;
        self.meta
            .machine
            .on_free(self.meta.id, &self.meta.name, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::test2())
    }

    #[test]
    fn plain_array_reads_are_accounted() {
        let m = machine();
        let a = m.alloc_array_with("a", 1024, AllocPolicy::OnNode(0), |i| i as u64);
        let mut ctx = AccessCtx::new(&m, 0);
        assert_eq!(a.get(&mut ctx, 7), 7);
        assert_eq!(a.get(&mut ctx, 8), 8);
        let s = ctx.take_stats();
        assert_eq!(s.total_count(), 2);
        assert_eq!(s.total_bytes(), 16);
    }

    #[test]
    fn atomic_array_ops() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("x", 8, AllocPolicy::Interleaved);
        let mut ctx = AccessCtx::new(&m, 0);
        a.store(&mut ctx, 0, 5);
        assert_eq!(a.fetch_add(&mut ctx, 0, 3), 5);
        assert_eq!(a.load(&mut ctx, 0), 8);
        assert_eq!(a.fetch_min(&mut ctx, 0, 2), 8);
        assert_eq!(a.fetch_max(&mut ctx, 0, 100), 2);
        assert_eq!(a.cas(&mut ctx, 0, 100, 1), Ok(100));
        assert_eq!(a.cas(&mut ctx, 0, 100, 2), Err(1));
        assert_eq!(a.raw_load(0), 1);
    }

    #[test]
    fn float_atomic_array() {
        let m = machine();
        let a = m.alloc_atomic::<f64>("r", 4, AllocPolicy::OnNode(1));
        let mut ctx = AccessCtx::new(&m, 0);
        a.fetch_add(&mut ctx, 2, 1.5);
        a.fetch_add(&mut ctx, 2, 1.5);
        assert_eq!(a.load(&mut ctx, 2), 3.0);
        a.fetch_mul(&mut ctx, 2, 2.0);
        assert_eq!(a.raw_load(2), 6.0);
        assert_eq!(a.cas(&mut ctx, 2, 6.0, 0.5), Ok(6.0));
    }

    #[test]
    fn node_of_follows_placement() {
        let m = machine();
        // 1024 u64 = 2 pages: page 0 -> node 0, page 1 -> node 1.
        let a = m.alloc_array::<u64>("p", 1024, AllocPolicy::Interleaved);
        assert_eq!(a.node_of(0), 0);
        assert_eq!(a.node_of(511), 0);
        assert_eq!(a.node_of(512), 1);
    }

    #[test]
    fn snapshot_copies_values() {
        let m = machine();
        let a = m.alloc_atomic_with::<u32>("s", 3, AllocPolicy::OnNode(0), |i| i as u32 * 10);
        assert_eq!(a.snapshot(), vec![0, 10, 20]);
    }

    #[test]
    fn atomic_array_is_sync_under_real_threads() {
        let m = machine();
        let a = m.alloc_atomic::<u64>("c", 1, AllocPolicy::OnNode(0));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        u64::atom_add(&a.data[0], 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(a.raw_load(0), 4000);
    }
}
