//! Experiment reports: remote-access profiles (paper Table 4) and memory
//! consumption (paper Table 5).
//!
//! Both reports are pure views over state the substrate already tracks — a
//! [`RemoteAccessReport`] is derived from an accumulated [`PhaseCost`], a
//! [`MemoryReport`] snapshots a [`Machine`]'s peak counters — so harness
//! code can produce them at any point without instrumenting the engines.
//! They serialize with `serde` and appear verbatim in the `BENCH_*` /
//! table JSON files under `results/` (field taxonomy in
//! `docs/OBSERVABILITY.md`).
//!
//! ```
//! use polymer_numa::{Machine, MachineSpec, AllocPolicy, MemoryReport,
//!                    RemoteAccessReport, SimExecutor};
//!
//! let machine = Machine::new(MachineSpec::test2());
//! let data = machine.alloc_array::<u64>("demo/data", 1 << 14, AllocPolicy::Centralized);
//! let mut sim = SimExecutor::new(&machine, 4); // spans both of test2's nodes
//! sim.run_phase("scan", |tid, ctx| {
//!     let chunk = data.len() / 4;
//!     for i in tid * chunk..(tid + 1) * chunk {
//!         data.get(ctx, i);
//!     }
//! });
//!
//! // Table 4 view: centralized placement makes node 1's accesses remote.
//! let remote = RemoteAccessReport::from_cost(&sim.clock().total);
//! assert!(remote.access_rate_remote > 0.0 && remote.access_rate_remote < 1.0);
//!
//! // Table 5 view: the array dominates the peak, attributed to its tag.
//! let mem = MemoryReport::from_machine(&machine);
//! assert_eq!(mem.tag_peak("demo"), mem.peak_bytes);
//! ```

use serde::{Deserialize, Serialize};

use crate::cost::PhaseCost;
use crate::machine::Machine;

/// The three columns of the paper's Table 4 for one system/algorithm pair:
/// the fraction of memory transactions that were remote, their absolute
/// count, and the LLC miss rate attributable to remote accesses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RemoteAccessReport {
    /// Remote transactions / total transactions.
    pub access_rate_remote: f64,
    /// Absolute number of remote transactions.
    pub num_accesses_remote: u64,
    /// Estimated LLC-missing remote transactions / total transactions.
    pub llc_miss_rate_remote: f64,
}

impl RemoteAccessReport {
    /// Derive the report from an accumulated run cost.
    pub fn from_cost(total: &PhaseCost) -> Self {
        let all = (total.count_local + total.count_remote) as f64;
        if all == 0.0 {
            return RemoteAccessReport {
                access_rate_remote: 0.0,
                num_accesses_remote: 0,
                llc_miss_rate_remote: 0.0,
            };
        }
        RemoteAccessReport {
            access_rate_remote: total.count_remote as f64 / all,
            num_accesses_remote: total.count_remote,
            llc_miss_rate_remote: total.miss_count_remote / all,
        }
    }
}

/// Peak memory consumption of one run, with per-tag attribution — the
/// paper's Table 5 shows Polymer's agent share in brackets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Peak bytes over the whole run.
    pub peak_bytes: u64,
    /// Peak bytes per allocation tag (name prefix before `'/'`).
    pub tags: Vec<(String, u64)>,
    /// Pages placed off their requested node because a capacity-limited node
    /// was full — the degradation column for capacity-pressure experiments.
    #[serde(default)]
    pub spilled_pages: u64,
    /// Spilled pages broken down by the node that was full (empty on
    /// machines that never spilled).
    #[serde(default)]
    pub spilled_by_node: Vec<u64>,
    /// Pages demoted fast→slow per destination node (tiered machines only).
    #[serde(default)]
    pub demoted_by_node: Vec<u64>,
    /// Pages promoted slow→fast per destination node (tiered machines only).
    #[serde(default)]
    pub promoted_by_node: Vec<u64>,
}

impl MemoryReport {
    /// Snapshot the peak counters of a machine.
    pub fn from_machine(machine: &Machine) -> Self {
        MemoryReport {
            peak_bytes: machine.mem_usage().peak,
            tags: machine
                .tag_usages()
                .into_iter()
                .map(|(t, u)| (t, u.peak))
                .collect(),
            spilled_pages: machine.spilled_pages(),
            spilled_by_node: machine.spilled_pages_by_node(),
            demoted_by_node: machine.demoted_pages_by_node(),
            promoted_by_node: machine.promoted_pages_by_node(),
        }
    }

    /// Total pages demoted to the slow tier (alloc-time overflow plus
    /// runtime migrations).
    pub fn demoted_pages(&self) -> u64 {
        self.demoted_by_node.iter().sum()
    }

    /// Total pages promoted to the fast tier by runtime migrations.
    pub fn promoted_pages(&self) -> u64 {
        self.promoted_by_node.iter().sum()
    }

    /// Peak bytes of one tag (0 when absent).
    pub fn tag_peak(&self, tag: &str) -> u64 {
        self.tags
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }

    /// Peak in GiB, as Table 5 reports.
    pub fn peak_gib(&self) -> f64 {
        self.peak_bytes as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    #[test]
    fn remote_report_from_cost() {
        let total = PhaseCost {
            count_local: 75,
            count_remote: 25,
            miss_count_remote: 10.0,
            ..Default::default()
        };
        let r = RemoteAccessReport::from_cost(&total);
        assert!((r.access_rate_remote - 0.25).abs() < 1e-12);
        assert_eq!(r.num_accesses_remote, 25);
        assert!((r.llc_miss_rate_remote - 0.10).abs() < 1e-12);
    }

    #[test]
    fn remote_report_empty_run() {
        let r = RemoteAccessReport::from_cost(&PhaseCost::default());
        assert_eq!(r.access_rate_remote, 0.0);
        assert_eq!(r.num_accesses_remote, 0);
    }

    #[test]
    fn memory_report_tier_counters() {
        let m = Machine::new(MachineSpec::test2_tiered());
        let a = m.alloc_array::<u64>("data/x", 2 * 512, AllocPolicy::OnNode(2));
        // Promote both pages, then demote one back.
        assert!(m.migrate_page(a.alloc_id(), 0, 0).is_some());
        assert!(m.migrate_page(a.alloc_id(), 1, 1).is_some());
        assert!(m.migrate_page(a.alloc_id(), 0, 3).is_some());
        let r = MemoryReport::from_machine(&m);
        assert_eq!(r.promoted_pages(), 2);
        assert_eq!(r.demoted_pages(), 1);
        assert_eq!(r.promoted_by_node[0], 1);
        assert_eq!(r.promoted_by_node[1], 1);
        assert_eq!(r.demoted_by_node[3], 1);
        // Round-trips through serde with the new fields.
        let json = serde_json::to_string(&r).unwrap();
        let back: MemoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.promoted_by_node, r.promoted_by_node);
        // Old documents without the vectors still parse.
        let old: MemoryReport = serde_json::from_str(r#"{"peak_bytes": 1, "tags": []}"#).unwrap();
        assert_eq!(old.promoted_pages(), 0);
    }

    #[test]
    fn memory_report_tags() {
        let m = Machine::new(MachineSpec::test2());
        let _a = m.alloc_array::<u64>("agents/x", 1000, AllocPolicy::OnNode(0));
        let _t = m.alloc_array::<u64>("topo/v", 500, AllocPolicy::OnNode(1));
        let r = MemoryReport::from_machine(&m);
        assert_eq!(r.peak_bytes, 12_000);
        assert_eq!(r.tag_peak("agents"), 8_000);
        assert_eq!(r.tag_peak("topo"), 4_000);
        assert_eq!(r.tag_peak("nope"), 0);
        assert!(r.peak_gib() > 0.0);
    }
}
