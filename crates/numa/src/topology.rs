//! NUMA machine topologies.
//!
//! A topology describes the sockets (memory nodes), the cores attached to each
//! node, and the hop distance between every pair of nodes. Two presets model
//! the paper's evaluation machines:
//!
//! * [`MachineSpec::intel80`] — 8 sockets × 10 cores of Intel Xeon E7-8850
//!   connected by QPI in a *twisted hypercube*, which bounds the distance
//!   between any two sockets to two hops (paper Section 6).
//! * [`MachineSpec::amd64`] — 4 sockets × 2 dies × 8 cores of AMD Opteron
//!   connected by HyperTransport. Dies within a socket are one hop apart, and
//!   only "primary" dies have direct links to other sockets, so some die
//!   pairs are two hops apart (paper Sections 2.2 and 3.3).

use serde::{Deserialize, Serialize};

use crate::tables::{BandwidthTable, DistClass, LatencyTable, TierClass};

/// Identifier of a NUMA memory node (socket or die with its own controller).
pub type NodeId = usize;

/// Simulated page size in bytes, matching the Linux default of 4 KiB that the
/// paper's first-touch discussion assumes.
pub const PAGE_SIZE: usize = 4096;

/// Upper bound on the number of memory nodes any topology may have. Access
/// statistics use fixed-size per-node buckets of this width.
pub const MAX_NODES: usize = 16;

/// The interconnect family, which determines how hop distances are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interconnect {
    /// Intel QPI arranged as a twisted hypercube: distance is the Hamming
    /// distance between socket ids, clamped to two hops.
    TwistedHypercube,
    /// AMD HyperTransport with two dies per socket: intra-socket die pairs
    /// are one hop; inter-socket links join primary (even) dies, so a pair of
    /// nodes is one hop only if at least one endpoint is a primary die of its
    /// socket and the other is the primary die of another socket.
    HyperTransport,
    /// Fully symmetric: every remote node is exactly one hop away. Useful for
    /// unit tests and for modelling small SMP boxes.
    FullMesh,
}

/// A complete description of a simulated NUMA machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable machine name, e.g. `"intel80"`.
    pub name: String,
    /// Number of memory nodes (sockets, or dies on AMD).
    pub nodes: usize,
    /// Cores attached to each memory node.
    pub cores_per_node: usize,
    /// Interconnect family, from which hop distances are derived.
    pub interconnect: Interconnect,
    /// CPU frequency in GHz; converts cycle latencies to time.
    pub ghz: f64,
    /// Last-level cache per memory node, in bytes (Intel: 24 MiB, AMD: 16 MiB
    /// per the paper's Section 6.3).
    pub llc_bytes: usize,
    /// Load/store latency per distance class.
    pub latency: LatencyTable,
    /// Sequential/random bandwidth per distance class.
    pub bandwidth: BandwidthTable,
    /// Multiplier on charged barrier costs. The experiment harness sets it
    /// to `scaled edges / paper edges` so that synchronization overhead —
    /// which does not shrink with the dataset — keeps the paper's
    /// work-to-synchronization ratio on the scaled-down graphs. Figure
    /// 10(a) reports the unscaled model.
    #[serde(default = "default_barrier_scale")]
    pub barrier_scale: f64,
    /// Multiplier on the effective LLC capacity. The experiment harness sets
    /// it to `scaled vertices / paper vertices`: a 24 MiB cache against a
    /// 334 MB vertex array behaves like a proportionally smaller cache
    /// against our scaled arrays, preserving the residency transitions that
    /// drive the paper's super-linear socket scaling (Section 6.3).
    #[serde(default = "default_barrier_scale")]
    pub llc_scale: f64,
    /// Page size in bytes (power of two). 4 KiB by default; set to 2 MiB to
    /// model transparent huge pages (the "large pages may be harmful on
    /// NUMA" study the paper cites).
    #[serde(default = "default_page_bytes")]
    pub page_bytes: usize,
    /// Usable memory per node in bytes, page-granular. `None` (the default)
    /// models unbounded node memory, which is what the paper's experiments
    /// assume. When set, allocations whose placement would overfill a node
    /// either spill to other nodes or fail, per the machine's
    /// [`crate::SpillPolicy`].
    #[serde(default)]
    pub node_capacity_bytes: Option<u64>,
    /// Memory tier of each node, indexed by [`NodeId`]. Empty (the default,
    /// and what every legacy spec deserializes to) means *all nodes are
    /// fast*, which reproduces the single-tier model bit-for-bit. When
    /// non-empty it must have exactly `nodes` entries and all fast nodes
    /// must precede all slow nodes in the id space — threads bind
    /// node-major, so this convention keeps compute on the fast tier
    /// whenever the thread count fits there.
    #[serde(default)]
    pub node_tiers: Vec<TierClass>,
    /// Usable memory per *fast-tier* node in bytes. Overrides
    /// `node_capacity_bytes` for fast nodes when set; this is the knob the
    /// tiering experiments turn to make the fast tier smaller than the
    /// graph.
    #[serde(default)]
    pub fast_capacity_bytes: Option<u64>,
    /// Usable memory per *slow-tier* node in bytes. Overrides
    /// `node_capacity_bytes` for slow nodes when set; `None` models an
    /// effectively unbounded capacity tier.
    #[serde(default)]
    pub slow_capacity_bytes: Option<u64>,
}

fn default_page_bytes() -> usize {
    PAGE_SIZE
}

fn default_barrier_scale() -> f64 {
    1.0
}

impl MachineSpec {
    /// The paper's 80-core Intel Xeon E7-8850 machine: 8 sockets × 10 cores,
    /// 2.0 GHz, QPI twisted hypercube (max 2 hops), 24 MiB LLC per socket.
    /// Latency and bandwidth values are the paper's Figure 3(b) and Figure 4
    /// measurements.
    pub fn intel80() -> Self {
        MachineSpec {
            name: "intel80".to_string(),
            nodes: 8,
            cores_per_node: 10,
            interconnect: Interconnect::TwistedHypercube,
            ghz: 2.0,
            llc_bytes: 24 << 20,
            latency: LatencyTable::intel80(),
            bandwidth: BandwidthTable::intel80(),
            barrier_scale: 1.0,
            llc_scale: 1.0,
            page_bytes: PAGE_SIZE,
            node_capacity_bytes: None,
            node_tiers: Vec::new(),
            fast_capacity_bytes: None,
            slow_capacity_bytes: None,
        }
    }

    /// The paper's 64-core AMD Opteron machine: 4 sockets × 2 dies × 8 cores,
    /// 16 MiB LLC per die, HyperTransport interconnect. 8 memory nodes total.
    pub fn amd64() -> Self {
        MachineSpec {
            name: "amd64".to_string(),
            nodes: 8,
            cores_per_node: 8,
            interconnect: Interconnect::HyperTransport,
            ghz: 2.1,
            llc_bytes: 16 << 20,
            latency: LatencyTable::amd64(),
            bandwidth: BandwidthTable::amd64(),
            barrier_scale: 1.0,
            llc_scale: 1.0,
            page_bytes: PAGE_SIZE,
            node_capacity_bytes: None,
            node_tiers: Vec::new(),
            fast_capacity_bytes: None,
            slow_capacity_bytes: None,
        }
    }

    /// A small 2-node machine useful for unit tests and doc examples.
    pub fn test2() -> Self {
        MachineSpec {
            name: "test2".to_string(),
            nodes: 2,
            cores_per_node: 2,
            interconnect: Interconnect::FullMesh,
            ghz: 2.0,
            llc_bytes: 1 << 20,
            latency: LatencyTable::intel80(),
            bandwidth: BandwidthTable::intel80(),
            barrier_scale: 1.0,
            llc_scale: 1.0,
            page_bytes: PAGE_SIZE,
            node_capacity_bytes: None,
            node_tiers: Vec::new(),
            fast_capacity_bytes: None,
            slow_capacity_bytes: None,
        }
    }

    /// A small tiered sibling of [`MachineSpec::test2`]: 2 fast nodes (with
    /// cores, same tables as `test2`) in front of 2 slow capacity nodes,
    /// full-mesh. Thread counts up to 4 bind node-major onto the fast
    /// nodes only, so compute stays on the fast tier and the slow nodes act
    /// purely as memory — the shape the tier tests and the `tiering-smoke`
    /// CI job assume. Capacities are unbounded by default; tests cap the
    /// fast tier via [`MachineSpec::with_fast_capacity`].
    pub fn test2_tiered() -> Self {
        let mut s = MachineSpec::test2();
        s.name = "test2_tiered".to_string();
        s.nodes = 4;
        s.node_tiers = vec![
            TierClass::Fast,
            TierClass::Fast,
            TierClass::Slow,
            TierClass::Slow,
        ];
        s
    }

    /// A tiered sibling of [`MachineSpec::intel80`]: the same 8-node twisted
    /// hypercube, with nodes 4–7 reclassified as the slow capacity tier
    /// (Optane-calibrated latency/bandwidth rows). Thread counts up to 40
    /// bind node-major onto the fast nodes 0–3 only, so the slow nodes act
    /// purely as far memory — the shape `bench_tiering` runs.
    pub fn intel80_tiered() -> Self {
        let mut s = MachineSpec::intel80();
        s.name = "intel80_tiered".to_string();
        s.node_tiers = (0..8)
            .map(|n| {
                if n < 4 {
                    TierClass::Fast
                } else {
                    TierClass::Slow
                }
            })
            .collect();
        s
    }

    /// The tier of a node: the `node_tiers` entry, or `Fast` when the spec
    /// is single-tier (empty `node_tiers`).
    #[inline]
    pub fn tier_of(&self, node: NodeId) -> TierClass {
        self.node_tiers
            .get(node)
            .copied()
            .unwrap_or(TierClass::Fast)
    }

    /// True when any node sits in the slow tier.
    pub fn is_tiered(&self) -> bool {
        self.node_tiers.iter().any(|t| t.is_slow())
    }

    /// Ids of the fast-tier nodes (all nodes on a single-tier spec).
    pub fn fast_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|&n| !self.tier_of(n).is_slow())
            .collect()
    }

    /// Ids of the slow-tier nodes (empty on a single-tier spec).
    pub fn slow_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|&n| self.tier_of(n).is_slow())
            .collect()
    }

    /// Usable memory of one node in bytes: the per-tier capacity when set,
    /// else the legacy uniform `node_capacity_bytes`, else unbounded.
    pub fn capacity_of(&self, node: NodeId) -> Option<u64> {
        let tier_cap = match self.tier_of(node) {
            TierClass::Fast => self.fast_capacity_bytes,
            TierClass::Slow => self.slow_capacity_bytes,
        };
        tier_cap.or(self.node_capacity_bytes)
    }

    /// A copy of this spec with each fast-tier node's usable memory capped
    /// at `bytes`.
    pub fn with_fast_capacity(mut self, bytes: u64) -> Self {
        self.fast_capacity_bytes = Some(bytes);
        self
    }

    /// A copy of this spec with each slow-tier node's usable memory capped
    /// at `bytes`.
    pub fn with_slow_capacity(mut self, bytes: u64) -> Self {
        self.slow_capacity_bytes = Some(bytes);
        self
    }

    /// Panic unless the tier layout is well-formed: `node_tiers` is empty or
    /// exactly `nodes` long, fast nodes precede slow nodes, and at least one
    /// node is fast. Called by the topology and machine constructors.
    pub fn validate_tiers(&self) {
        if self.node_tiers.is_empty() {
            return;
        }
        assert_eq!(
            self.node_tiers.len(),
            self.nodes,
            "node_tiers length must match node count"
        );
        assert!(
            self.node_tiers.iter().any(|t| !t.is_slow()),
            "at least one node must be fast"
        );
        let first_slow = self
            .node_tiers
            .iter()
            .position(|t| t.is_slow())
            .unwrap_or(self.nodes);
        assert!(
            self.node_tiers[first_slow..].iter().all(|t| t.is_slow()),
            "fast nodes must precede slow nodes in the id space"
        );
    }

    /// A copy of this spec restricted to the first `nodes` memory nodes and
    /// `cores` cores per node, used by the socket-scaling experiments
    /// (Figures 5, 7, 8, 9). Sockets are chosen with minimized total distance
    /// exactly as the paper's footnote 5 describes — for the hypercube this is
    /// the natural prefix of the id space.
    pub fn subset(&self, nodes: usize, cores: usize) -> Self {
        assert!(
            nodes >= 1 && nodes <= self.nodes,
            "node subset out of range"
        );
        assert!(
            cores >= 1 && cores <= self.cores_per_node,
            "core subset out of range"
        );
        let mut s = self.clone();
        s.nodes = nodes;
        s.cores_per_node = cores;
        if !s.node_tiers.is_empty() {
            s.node_tiers.truncate(nodes);
        }
        s
    }

    /// A copy of this spec with each node's usable memory capped at `bytes`
    /// (rounded down to whole pages when compared against allocations).
    pub fn with_node_capacity(mut self, bytes: u64) -> Self {
        self.node_capacity_bytes = Some(bytes);
        self
    }

    /// Build the concrete topology (hop matrix etc.) for this spec.
    pub fn topology(&self) -> NumaTopology {
        NumaTopology::from_spec(self)
    }
}

/// The concrete topology of a [`MachineSpec`]: core→node mapping and the
/// distance class between every pair of nodes.
#[derive(Clone, Debug)]
pub struct NumaTopology {
    nodes: usize,
    cores_per_node: usize,
    ghz: f64,
    llc_bytes: usize,
    /// `dist[a * nodes + b]` — distance class between nodes `a` and `b`.
    dist: Vec<DistClass>,
    /// Tier of each node (all `Fast` for single-tier specs).
    tiers: Vec<TierClass>,
}

impl NumaTopology {
    /// Derive the topology from a machine spec.
    pub fn from_spec(spec: &MachineSpec) -> Self {
        assert!(spec.nodes >= 1 && spec.nodes <= MAX_NODES, "node count");
        assert!(spec.cores_per_node >= 1, "cores per node");
        spec.validate_tiers();
        let n = spec.nodes;
        let mut dist = vec![DistClass::Local; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = Self::class_for(spec.interconnect, a, b);
            }
        }
        NumaTopology {
            nodes: n,
            cores_per_node: spec.cores_per_node,
            ghz: spec.ghz,
            llc_bytes: ((spec.llc_bytes as f64 * spec.llc_scale) as usize).max(1),
            dist,
            tiers: (0..n).map(|i| spec.tier_of(i)).collect(),
        }
    }

    fn class_for(kind: Interconnect, a: NodeId, b: NodeId) -> DistClass {
        if a == b {
            return DistClass::Local;
        }
        match kind {
            Interconnect::FullMesh => DistClass::OneHop,
            Interconnect::TwistedHypercube => {
                let h = (a ^ b).count_ones().min(2);
                if h <= 1 {
                    DistClass::OneHop
                } else {
                    DistClass::TwoHop
                }
            }
            Interconnect::HyperTransport => {
                let (sa, da) = (a / 2, a % 2);
                let (sb, db) = (b / 2, b % 2);
                if sa == sb {
                    // Two dies of the same multi-chip module.
                    DistClass::OneHopIntra
                } else if da == 0 && db == 0 {
                    // Primary dies have direct HT links to other sockets.
                    DistClass::OneHop
                } else {
                    // Route through at least one primary die.
                    DistClass::TwoHop
                }
            }
        }
    }

    /// Number of memory nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Cores attached to each node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total core count of the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// CPU frequency in GHz.
    pub fn ghz(&self) -> f64 {
        self.ghz
    }

    /// Last-level cache capacity of one node, in bytes.
    pub fn llc_bytes(&self) -> usize {
        self.llc_bytes
    }

    /// The memory node a core belongs to. Cores are numbered node-major:
    /// cores `[n * cores_per_node, (n + 1) * cores_per_node)` sit on node `n`.
    pub fn node_of_core(&self, core: usize) -> NodeId {
        assert!(core < self.total_cores(), "core id out of range");
        core / self.cores_per_node
    }

    /// Distance class between two memory nodes.
    pub fn dist(&self, a: NodeId, b: NodeId) -> DistClass {
        self.dist[a * self.nodes + b]
    }

    /// Memory tier of a node.
    #[inline]
    pub fn tier_of(&self, node: NodeId) -> TierClass {
        self.tiers[node]
    }

    /// True when any node sits in the slow tier.
    pub fn is_tiered(&self) -> bool {
        self.tiers.iter().any(|t| t.is_slow())
    }

    /// Hop count (0, 1 or 2) between two nodes, collapsing the AMD
    /// intra/inter one-hop distinction.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        self.dist(a, b).hops()
    }

    /// Maximum hop distance present in this topology.
    pub fn max_hops(&self) -> usize {
        (0..self.nodes)
            .flat_map(|a| (0..self.nodes).map(move |b| (a, b)))
            .map(|(a, b)| self.hops(a, b))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel80_shape() {
        let t = MachineSpec::intel80().topology();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.cores_per_node(), 10);
        assert_eq!(t.total_cores(), 80);
        assert_eq!(t.max_hops(), 2);
    }

    #[test]
    fn intel80_twisted_hypercube_distances() {
        let t = MachineSpec::intel80().topology();
        assert_eq!(t.dist(0, 0), DistClass::Local);
        assert_eq!(t.dist(0, 1), DistClass::OneHop);
        assert_eq!(t.dist(0, 2), DistClass::OneHop);
        assert_eq!(t.dist(0, 3), DistClass::TwoHop);
        // The twist bounds 0b000 -> 0b111 to two hops.
        assert_eq!(t.dist(0, 7), DistClass::TwoHop);
        // Symmetry.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.dist(a, b), t.dist(b, a));
            }
        }
    }

    #[test]
    fn amd64_shape_and_die_classes() {
        let t = MachineSpec::amd64().topology();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.total_cores(), 64);
        // Two dies of socket 0.
        assert_eq!(t.dist(0, 1), DistClass::OneHopIntra);
        // Primary die to primary die of another socket: direct HT link.
        assert_eq!(t.dist(0, 2), DistClass::OneHop);
        // Secondary die to secondary die of another socket: two hops.
        assert_eq!(t.dist(1, 3), DistClass::TwoHop);
        assert_eq!(t.max_hops(), 2);
    }

    #[test]
    fn core_to_node_mapping_is_node_major() {
        let t = MachineSpec::intel80().topology();
        assert_eq!(t.node_of_core(0), 0);
        assert_eq!(t.node_of_core(9), 0);
        assert_eq!(t.node_of_core(10), 1);
        assert_eq!(t.node_of_core(79), 7);
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn core_out_of_range_panics() {
        let t = MachineSpec::test2().topology();
        t.node_of_core(99);
    }

    #[test]
    fn subset_restricts_nodes_and_cores() {
        let s = MachineSpec::intel80().subset(4, 5);
        let t = s.topology();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.total_cores(), 20);
        // Prefix sockets {0..3} of the hypercube stay within 2 hops.
        assert!(t.max_hops() <= 2);
    }

    #[test]
    #[should_panic(expected = "node subset out of range")]
    fn subset_rejects_too_many_nodes() {
        MachineSpec::test2().subset(3, 1);
    }

    #[test]
    fn spec_serde_round_trip_with_defaults() {
        let spec = MachineSpec::intel80();
        let json = serde_json::to_string(&spec).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes, 8);
        assert_eq!(back.page_bytes, PAGE_SIZE);
        assert_eq!(back.barrier_scale, 1.0);
        // Older specs without the scaling fields still deserialize.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("barrier_scale");
        obj.remove("llc_scale");
        obj.remove("page_bytes");
        obj.remove("node_capacity_bytes");
        let legacy: MachineSpec = serde_json::from_value(v).unwrap();
        assert_eq!(legacy.llc_scale, 1.0);
        assert_eq!(legacy.page_bytes, PAGE_SIZE);
        assert_eq!(legacy.node_capacity_bytes, None);
    }

    #[test]
    fn with_node_capacity_sets_cap() {
        let spec = MachineSpec::test2().with_node_capacity(1 << 20);
        assert_eq!(spec.node_capacity_bytes, Some(1 << 20));
    }

    #[test]
    fn llc_scale_shrinks_effective_cache() {
        let mut spec = MachineSpec::intel80();
        spec.llc_scale = 0.5;
        assert_eq!(spec.topology().llc_bytes(), 12 << 20);
        spec.llc_scale = 1e-9;
        assert!(spec.topology().llc_bytes() >= 1);
    }

    #[test]
    fn test2_tiered_shape() {
        let s = MachineSpec::test2_tiered();
        assert_eq!(s.nodes, 4);
        assert!(s.is_tiered());
        assert_eq!(s.fast_nodes(), vec![0, 1]);
        assert_eq!(s.slow_nodes(), vec![2, 3]);
        let t = s.topology();
        assert_eq!(t.tier_of(0), TierClass::Fast);
        assert_eq!(t.tier_of(3), TierClass::Slow);
        assert!(t.is_tiered());
        // Threads bind node-major: 4 threads land on the two fast nodes.
        assert_eq!(t.node_of_core(3), 1);
    }

    #[test]
    fn single_tier_specs_report_all_fast() {
        let s = MachineSpec::test2();
        assert!(!s.is_tiered());
        assert_eq!(s.fast_nodes(), vec![0, 1]);
        assert!(s.slow_nodes().is_empty());
        assert_eq!(s.tier_of(1), TierClass::Fast);
        assert!(!s.topology().is_tiered());
    }

    #[test]
    fn per_tier_capacity_resolution() {
        let s = MachineSpec::test2_tiered()
            .with_fast_capacity(1 << 16)
            .with_slow_capacity(1 << 24);
        assert_eq!(s.capacity_of(0), Some(1 << 16));
        assert_eq!(s.capacity_of(2), Some(1 << 24));
        // Per-tier caps fall back to the legacy uniform cap when unset.
        let mut s = MachineSpec::test2_tiered().with_node_capacity(1 << 20);
        assert_eq!(s.capacity_of(0), Some(1 << 20));
        assert_eq!(s.capacity_of(3), Some(1 << 20));
        s.fast_capacity_bytes = Some(1 << 12);
        assert_eq!(s.capacity_of(0), Some(1 << 12));
        assert_eq!(s.capacity_of(3), Some(1 << 20));
    }

    #[test]
    #[should_panic(expected = "fast nodes must precede slow nodes")]
    fn slow_before_fast_rejected() {
        let mut s = MachineSpec::test2();
        s.node_tiers = vec![TierClass::Slow, TierClass::Fast];
        s.topology();
    }

    #[test]
    #[should_panic(expected = "at least one node must be fast")]
    fn all_slow_rejected() {
        let mut s = MachineSpec::test2();
        s.node_tiers = vec![TierClass::Slow, TierClass::Slow];
        s.topology();
    }

    #[test]
    fn subset_truncates_tiers() {
        let s = MachineSpec::test2_tiered().subset(2, 2);
        assert!(!s.is_tiered());
        assert_eq!(s.node_tiers.len(), 2);
        let s3 = MachineSpec::test2_tiered().subset(3, 1);
        assert_eq!(s3.slow_nodes(), vec![2]);
    }

    #[test]
    fn legacy_spec_json_defaults_to_single_tier() {
        let json = serde_json::to_string(&MachineSpec::test2()).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("node_tiers");
        obj.remove("fast_capacity_bytes");
        obj.remove("slow_capacity_bytes");
        let legacy: MachineSpec = serde_json::from_value(v).unwrap();
        assert!(legacy.node_tiers.is_empty());
        assert!(!legacy.is_tiered());
        assert_eq!(legacy.capacity_of(0), None);
    }

    #[test]
    fn full_mesh_all_one_hop() {
        let t = MachineSpec::test2().topology();
        assert_eq!(t.dist(0, 1), DistClass::OneHop);
        assert_eq!(t.max_hops(), 1);
    }
}
