//! Per-simulated-thread access context and access statistics.
//!
//! Every instrumented array access is classified along the three dimensions
//! the paper's Figure 2 uses to label execution flows:
//!
//! * **pattern** — sequential ([`Pattern::Seq`]) when the access continues a
//!   forward stream on the same array (within two cache lines of the previous
//!   access's end), random ([`Pattern::Rand`]) otherwise;
//! * **direction** — read or write ([`Rw`]); read-modify-writes are charged
//!   as one write transaction;
//! * **destination node** — the home node of the touched page, from which
//!   local/remote and the hop distance follow.
//!
//! Statistics are kept per allocation so the cost model can apply its cache
//! model per array and the reports can attribute traffic to graph topology,
//! application data, and runtime state separately.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::machine::{AllocId, Machine};
use crate::policy::Placement;
use crate::topology::{NodeId, NumaTopology, MAX_NODES};

/// Global switch for the run-coalesced accounting fast path. On (the
/// default), bulk accessors charge whole page-runs with one classification;
/// off, they fall back to per-element [`AccessCtx`] recording — the scalar
/// oracle the equivalence tests and `bench_hotpath` compare against. Both
/// paths produce bit-identical [`AccessStats`], so flipping this mid-run
/// changes wall-clock only, never simulated results.
static BULK_ACCOUNTING: AtomicBool = AtomicBool::new(true);

/// Enable or disable the run-coalesced accounting fast path.
pub fn set_bulk_accounting(enabled: bool) {
    BULK_ACCOUNTING.store(enabled, Ordering::SeqCst);
}

/// True when the run-coalesced fast path is active.
#[inline]
pub fn bulk_accounting() -> bool {
    BULK_ACCOUNTING.load(Ordering::Relaxed)
}

/// Access pattern: sequential stream vs. random.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Continues a forward stream on the same array.
    Seq,
    /// Anything else, including the first touch of an array in a phase.
    Rand,
}

impl Pattern {
    /// Index into per-pattern tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Pattern::Seq => 0,
            Pattern::Rand => 1,
        }
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rw {
    /// A load.
    Read,
    /// A store or read-modify-write.
    Write,
}

impl Rw {
    /// Index into per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Rw::Read => 0,
            Rw::Write => 1,
        }
    }
}

/// How far ahead of the previous access's end an access may land and still
/// count as sequential (two cache lines).
const SEQ_WINDOW_FWD: u64 = 128;
/// How far *behind* the previous end an access may start and still count as
/// sequential (re-touching the current cache line).
const SEQ_WINDOW_BACK: u64 = 64;

/// Access counters of one allocation: `bytes[rw][pattern][dst_node]` and the
/// matching transaction counts.
#[derive(Clone, Debug)]
pub struct ArrStat {
    /// Bytes moved, indexed by `[Rw::index()][Pattern::index()][dst node]`.
    pub bytes: [[[u64; MAX_NODES]; 2]; 2],
    /// Transactions, same indexing.
    pub count: [[[u64; MAX_NODES]; 2]; 2],
}

impl Default for ArrStat {
    fn default() -> Self {
        ArrStat {
            bytes: [[[0; MAX_NODES]; 2]; 2],
            count: [[[0; MAX_NODES]; 2]; 2],
        }
    }
}

impl ArrStat {
    fn merge(&mut self, other: &ArrStat) {
        for rw in 0..2 {
            for pat in 0..2 {
                for n in 0..MAX_NODES {
                    self.bytes[rw][pat][n] += other.bytes[rw][pat][n];
                    self.count[rw][pat][n] += other.count[rw][pat][n];
                }
            }
        }
    }

    /// Total bytes over all buckets.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().flatten().sum()
    }

    /// Total transactions over all buckets.
    pub fn total_count(&self) -> u64 {
        self.count.iter().flatten().flatten().sum()
    }
}

/// Classified access statistics of one simulated thread (or a merge of
/// several), keyed by allocation.
#[derive(Clone, Debug, Default)]
pub struct AccessStats {
    per: Vec<Option<Box<ArrStat>>>,
    /// Extra CPU cycles charged via [`AccessCtx::charge_cycles`]
    /// (per-edge arithmetic beyond the memory accesses).
    pub extra_cycles: f64,
}

impl AccessStats {
    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        if other.per.len() > self.per.len() {
            self.per.resize_with(other.per.len(), || None);
        }
        for (i, o) in other.per.iter().enumerate() {
            if let Some(o) = o {
                self.per[i].get_or_insert_with(Default::default).merge(o);
            }
        }
        self.extra_cycles += other.extra_cycles;
    }

    /// Iterate over the allocations with any recorded accesses.
    pub fn iter_arrays(&self) -> impl Iterator<Item = (AllocId, &ArrStat)> {
        self.per
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|s| (i as AllocId, s)))
    }

    /// Total transactions.
    pub fn total_count(&self) -> u64 {
        self.iter_arrays().map(|(_, s)| s.total_count()).sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.iter_arrays().map(|(_, s)| s.total_bytes()).sum()
    }

    /// Transactions whose destination differs from `from` under `topo`.
    pub fn remote_count(&self, topo: &NumaTopology, from: NodeId) -> u64 {
        self.iter_arrays()
            .map(|(_, s)| {
                let mut c = 0;
                for rw in 0..2 {
                    for pat in 0..2 {
                        for dst in 0..topo.num_nodes() {
                            if dst != from {
                                c += s.count[rw][pat][dst];
                            }
                        }
                    }
                }
                c
            })
            .sum()
    }

    /// Bytes moved per `(pattern, dst)` summed over read/write, for one
    /// allocation. Returns `None` when the allocation was never touched.
    pub fn array_bytes(&self, alloc: AllocId) -> Option<&ArrStat> {
        self.per.get(alloc as usize).and_then(|s| s.as_deref())
    }

    /// True when no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.per.iter().all(|s| s.is_none())
    }
}

/// Per-allocation scratch of one context: the sequential-stream tracker, a
/// one-entry page→home-node cache, and the allocation's counters — all in
/// one struct so the hot [`AccessCtx::record`] path resolves everything it
/// needs with a single indexed lookup. The page cache is safe to keep across
/// phases because allocation ids are never reused and placements are
/// immutable.
#[derive(Clone)]
struct AllocState {
    /// End offset of the previous access (`u64::MAX` = never touched).
    last_end: u64,
    /// Last resolved page (`u64::MAX` = nothing cached).
    page: u64,
    /// Home node of `page`.
    node: NodeId,
    /// Whether any access landed since the last [`AccessCtx::take_stats`];
    /// gates which allocations materialize in the harvested stats.
    touched: bool,
    /// The counters themselves, inline (no box, no option) so the hot path
    /// is lookup → classify → two adds.
    stat: ArrStat,
}

impl AllocState {
    fn cold() -> AllocState {
        AllocState {
            last_end: u64::MAX,
            page: u64::MAX,
            node: 0,
            touched: false,
            stat: ArrStat::default(),
        }
    }
}

/// How a context samples per-page access heat for the tier promotion
/// policies. `Off` (the default, and the only mode single-tier runs ever
/// see) adds no work to the access paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum HeatMode {
    /// No heat tracking.
    #[default]
    Off,
    /// Count every access per page (the hot-page LRU policy's input).
    Full,
    /// Count one access in `N` (AutoNUMA-style sampled scanning; the
    /// sampled promotion policy's input). Run-recorded accesses attribute
    /// their samples to the run's first page.
    Sampled(u32),
}

/// The execution context of one simulated thread: which core it is bound to,
/// and the classified statistics of everything it has touched since the last
/// [`AccessCtx::take_stats`].
pub struct AccessCtx {
    tid: usize,
    core: usize,
    node: NodeId,
    num_threads: usize,
    /// Extra CPU cycles charged via [`AccessCtx::charge_cycles`].
    extra_cycles: f64,
    /// Per-allocation trackers + counters, indexed by [`AllocId`].
    per: Vec<AllocState>,
    /// True on tiered machines: page→node caches are dropped at phase
    /// boundaries because the promotion layer may migrate pages between
    /// phases. Single-tier machines keep the caches forever, as before.
    tiered: bool,
    /// Heat-sampling mode (set by the executor when a promotion policy
    /// needs it; [`HeatMode::Off`] otherwise).
    heat_mode: HeatMode,
    /// Per-allocation per-page access counts since the last
    /// [`AccessCtx::take_heat`]. Only populated when `heat_mode != Off`.
    heat: Vec<Vec<u32>>,
    /// Rolling access tick for [`HeatMode::Sampled`].
    heat_tick: u64,
}

impl AccessCtx {
    /// A context bound to `core` of `machine`, with thread id = core id.
    pub fn new(machine: &Machine, core: usize) -> Self {
        let topo = machine.topology();
        AccessCtx {
            tid: core,
            core,
            node: topo.node_of_core(core),
            num_threads: topo.total_cores(),
            extra_cycles: 0.0,
            per: Vec::new(),
            tiered: topo.is_tiered(),
            heat_mode: HeatMode::Off,
            heat: Vec::new(),
            heat_tick: 0,
        }
    }

    pub(crate) fn with_threads(machine: &Machine, tid: usize, core: usize, n: usize) -> Self {
        let mut c = Self::new(machine, core);
        c.tid = tid;
        c.num_threads = n;
        c
    }

    /// Simulated thread id within the executor.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The core this thread is bound to.
    #[inline]
    pub fn core(&self) -> usize {
        self.core
    }

    /// The memory node of the bound core.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of simulated threads in the current executor.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The combined tracker + counters of one allocation. The grow path is
    /// out-of-line: after the first touch of each allocation the hot path is
    /// one predictable bounds check.
    #[inline]
    fn alloc_state(&mut self, alloc: AllocId) -> &mut AllocState {
        let i = alloc as usize;
        if i >= self.per.len() {
            self.grow(i);
        }
        &mut self.per[i]
    }

    #[cold]
    #[inline(never)]
    fn grow(&mut self, i: usize) {
        self.per.resize_with(i + 1, AllocState::cold);
    }

    /// Sequential-window classification against a stream's previous end.
    #[inline]
    fn classify(last: u64, off: u64) -> Pattern {
        if last != u64::MAX && off + SEQ_WINDOW_BACK >= last && off <= last + SEQ_WINDOW_FWD {
            Pattern::Seq
        } else {
            Pattern::Rand
        }
    }

    /// Record one classified access (called by the instrumented arrays).
    /// Destination-node resolution goes through the per-allocation page
    /// cache, so repeated touches of the same page skip the placement-table
    /// lookup entirely.
    #[inline]
    pub(crate) fn record(
        &mut self,
        alloc: AllocId,
        placement: &Placement,
        off: usize,
        len: usize,
        rw: Rw,
    ) {
        let off64 = off as u64;
        let page = (off >> placement.page_shift()) as u64;
        let st = self.alloc_state(alloc);
        let pat = Self::classify(st.last_end, off64);
        st.last_end = off64 + len as u64;
        let dst = if st.page == page {
            st.node
        } else {
            let n = placement.node_of(off);
            st.page = page;
            st.node = n;
            n
        };
        st.touched = true;
        st.stat.bytes[rw.index()][pat.index()][dst] += len as u64;
        st.stat.count[rw.index()][pat.index()][dst] += 1;
        if self.heat_mode != HeatMode::Off {
            self.note_heat_scalar(alloc, page as usize);
        }
    }

    /// Record a contiguous forward run of `n` elements of `elem` bytes
    /// starting at byte offset `off` — the coalesced equivalent of calling
    /// [`AccessCtx::record`] once per element, charged with one
    /// classification per page-run instead.
    ///
    /// Bit-identical to the per-element path by construction: the first
    /// element is classified against the stream tracker exactly as the
    /// scalar path would, and every subsequent element of a contiguous
    /// forward run is sequential by the window rule (`off_next == last_end`
    /// always satisfies both window bounds). Destination nodes follow each
    /// element's start byte, so runs split precisely where the per-element
    /// walk would switch pages. With [`bulk_accounting`] disabled this
    /// *is* the per-element loop, which is what the equivalence proptest
    /// exercises.
    #[inline]
    pub(crate) fn record_run(
        &mut self,
        alloc: AllocId,
        placement: &Placement,
        off: usize,
        elem: usize,
        n: usize,
        rw: Rw,
    ) {
        if n == 0 {
            return;
        }
        if !bulk_accounting() {
            for k in 0..n {
                self.record(alloc, placement, off + k * elem, elem, rw);
            }
            return;
        }
        let off64 = off as u64;
        let elem64 = elem as u64;
        let st = self.alloc_state(alloc);
        let first_pat = Self::classify(st.last_end, off64);
        st.last_end = off64 + elem64 * n as u64;
        // Leave the page cache where the scalar walk would have left it:
        // at the run's final element.
        let last_off = off + (n - 1) * elem;
        st.page = (last_off >> placement.page_shift()) as u64;
        st.node = placement.node_of(last_off);
        st.touched = true;
        let s = &mut st.stat;
        let rwi = rw.index();
        let seqi = Pattern::Seq.index();
        let mut first = Some(first_pat.index());
        placement.for_each_elem_run(off, elem, n, |node, cnt| {
            let mut seq_cnt = cnt as u64;
            if let Some(pi) = first.take() {
                // The run's head keeps its stream-dependent classification.
                s.bytes[rwi][pi][node] += elem64;
                s.count[rwi][pi][node] += 1;
                seq_cnt -= 1;
            }
            if seq_cnt > 0 {
                s.bytes[rwi][seqi][node] += seq_cnt * elem64;
                s.count[rwi][seqi][node] += seq_cnt;
            }
        });
        if self.heat_mode != HeatMode::Off {
            self.note_heat_run(alloc, placement, off, elem, n);
        }
    }

    /// Record page heat for a coalesced run: in `Full` mode each page is
    /// credited with the elements that start on it; in `Sampled` mode the
    /// run advances the access tick and credits any samples it crosses to
    /// the run's first page (the coarse attribution AutoNUMA's periodic
    /// scan would make).
    fn note_heat_run(
        &mut self,
        alloc: AllocId,
        placement: &Placement,
        off: usize,
        elem: usize,
        n: usize,
    ) {
        match self.heat_mode {
            HeatMode::Off => {}
            HeatMode::Full => {
                let shift = placement.page_shift();
                let mut k = 0usize;
                while k < n {
                    let cur = off + k * elem;
                    let page = cur >> shift;
                    let boundary = (page + 1) << shift;
                    let cnt = (boundary - cur).div_ceil(elem.max(1)).min(n - k);
                    self.note_heat(alloc, page, cnt as u32);
                    k += cnt;
                }
            }
            HeatMode::Sampled(p) => {
                let p = u64::from(p.max(1));
                let crossed = (self.heat_tick + n as u64) / p - self.heat_tick / p;
                self.heat_tick += n as u64;
                if crossed > 0 {
                    self.note_heat(alloc, off >> placement.page_shift(), crossed as u32);
                }
            }
        }
    }

    /// Heat hook of the scalar [`AccessCtx::record`] path: full mode counts
    /// the access, sampled mode advances the tick and counts only when it
    /// lands on a sample boundary. Runs pre-aggregate instead (see
    /// [`AccessCtx::note_heat_run`]).
    fn note_heat_scalar(&mut self, alloc: AllocId, page: usize) {
        if let HeatMode::Sampled(p) = self.heat_mode {
            self.heat_tick += 1;
            if !self.heat_tick.is_multiple_of(u64::from(p.max(1))) {
                return;
            }
        }
        self.note_heat(alloc, page, 1);
    }

    /// Credit `by` accesses of heat to one page of one allocation
    /// (unconditional raw bump; sampling is the callers' concern).
    fn note_heat(&mut self, alloc: AllocId, page: usize, by: u32) {
        let i = alloc as usize;
        if i >= self.heat.len() {
            self.heat.resize_with(i + 1, Vec::new);
        }
        let v = &mut self.heat[i];
        if page >= v.len() {
            v.resize(page + 1, 0);
        }
        v[page] = v[page].saturating_add(by);
    }

    /// Set the heat-sampling mode (executor-controlled; only promotion
    /// policies that need heat turn it on).
    pub(crate) fn set_heat_mode(&mut self, mode: HeatMode) {
        self.heat_mode = mode;
    }

    /// Drain the accumulated page heat: `(alloc, per-page counts)` for every
    /// allocation with any recorded heat.
    pub(crate) fn take_heat(&mut self) -> Vec<(AllocId, Vec<u32>)> {
        let mut out = Vec::new();
        for (i, v) in self.heat.iter_mut().enumerate() {
            if v.iter().any(|&c| c > 0) {
                out.push((i as AllocId, std::mem::take(v)));
            }
        }
        out
    }

    /// Charge a page migration as explicit memory traffic: a sequential
    /// read of `bytes` from `from` plus a sequential write to `to`,
    /// attributed to the migrated allocation, counted in cache-line (64 B)
    /// transactions. The tier runtime calls this so promotion/demotion
    /// overhead flows through the ordinary [`crate::CostModel`] integration
    /// and stays visible in `PhaseCost` and the per-socket trace counters.
    pub(crate) fn record_migration(
        &mut self,
        alloc: AllocId,
        bytes: u64,
        from: NodeId,
        to: NodeId,
    ) {
        let lines = bytes.div_ceil(64);
        let st = self.alloc_state(alloc);
        st.touched = true;
        let seqi = Pattern::Seq.index();
        st.stat.bytes[Rw::Read.index()][seqi][from] += bytes;
        st.stat.count[Rw::Read.index()][seqi][from] += lines;
        st.stat.bytes[Rw::Write.index()][seqi][to] += bytes;
        st.stat.count[Rw::Write.index()][seqi][to] += lines;
    }

    /// Charge extra CPU cycles (per-edge arithmetic) to this thread's
    /// current phase.
    #[inline]
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.extra_cycles += cycles;
    }

    /// Take and reset the accumulated statistics; also resets the
    /// sequential-stream trackers (a new phase starts new streams). On
    /// single-tier machines the page→node caches survive: placements are
    /// immutable and allocation ids never reused, so cached resolutions stay
    /// valid across phases. On tiered machines the caches are dropped too,
    /// because the promotion layer migrates pages between phases.
    pub fn take_stats(&mut self) -> AccessStats {
        let mut out = AccessStats {
            extra_cycles: self.extra_cycles,
            ..AccessStats::default()
        };
        self.extra_cycles = 0.0;
        let tiered = self.tiered;
        for (i, st) in self.per.iter_mut().enumerate() {
            st.last_end = u64::MAX;
            if tiered {
                st.page = u64::MAX;
            }
            if st.touched {
                if out.per.len() <= i {
                    out.per.resize_with(i + 1, || None);
                }
                out.per[i] = Some(Box::new(std::mem::take(&mut st.stat)));
                st.touched = false;
            }
        }
        out
    }

    /// Snapshot the statistics accumulated since the last
    /// [`AccessCtx::take_stats`], without resetting anything.
    pub fn stats(&self) -> AccessStats {
        let mut out = AccessStats {
            extra_cycles: self.extra_cycles,
            ..AccessStats::default()
        };
        for (i, st) in self.per.iter().enumerate() {
            if st.touched {
                if out.per.len() <= i {
                    out.per.resize_with(i + 1, || None);
                }
                out.per[i] = Some(Box::new(st.stat.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    fn setup() -> (Machine, AccessCtx) {
        let m = Machine::new(MachineSpec::test2());
        let ctx = AccessCtx::new(&m, 0);
        (m, ctx)
    }

    #[test]
    fn streaming_is_sequential_after_first_touch() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        for i in 0..100 {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        // First access is cold (random); the rest stream sequentially.
        assert_eq!(st.count[Rw::Read.index()][Pattern::Rand.index()][0], 1);
        assert_eq!(st.count[Rw::Read.index()][Pattern::Seq.index()][0], 99);
    }

    #[test]
    fn strided_access_is_random() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        for i in (0..4096).step_by(512) {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Rand.index()][0], 8);
        assert_eq!(st.count[0][Pattern::Seq.index()][0], 0);
    }

    #[test]
    fn small_forward_gaps_stay_sequential() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        // Stride of 8 elements = 64 bytes: within the 128-byte window.
        for i in (0..1024).step_by(8) {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Seq.index()][0], 127);
    }

    #[test]
    fn destination_node_follows_pages() {
        let (m, mut ctx) = setup();
        // Interleaved: elements 0..511 on node 0, 512..1023 on node 1.
        let a = m.alloc_array::<u64>("a", 1024, AllocPolicy::Interleaved);
        a.get(&mut ctx, 0);
        a.get(&mut ctx, 600);
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        let total_node0: u64 = (0..2).map(|p| st.count[0][p][0]).sum();
        let total_node1: u64 = (0..2).map(|p| st.count[0][p][1]).sum();
        assert_eq!(total_node0, 1);
        assert_eq!(total_node1, 1);
        assert_eq!(s.remote_count(m.topology(), 0), 1);
    }

    #[test]
    fn take_stats_resets_streams() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array::<u64>("a", 64, AllocPolicy::OnNode(0));
        a.get(&mut ctx, 0);
        a.get(&mut ctx, 1);
        let s1 = ctx.take_stats();
        assert_eq!(s1.total_count(), 2);
        // After reset the next access is cold again.
        a.get(&mut ctx, 2);
        let s2 = ctx.take_stats();
        let st = s2.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Rand.index()][0], 1);
    }

    #[test]
    fn ctx_accessors_reflect_binding() {
        let m = Machine::new(MachineSpec::test2());
        let ctx = AccessCtx::new(&m, 3);
        assert_eq!(ctx.core(), 3);
        assert_eq!(ctx.node(), 1);
        assert_eq!(ctx.tid(), 3);
        assert_eq!(ctx.num_threads(), 4);
    }

    #[test]
    fn charge_cycles_accumulates_and_merges() {
        let m = Machine::new(MachineSpec::test2());
        let mut ctx = AccessCtx::new(&m, 0);
        ctx.charge_cycles(10.0);
        ctx.charge_cycles(5.5);
        let s1 = ctx.take_stats();
        assert_eq!(s1.extra_cycles, 15.5);
        ctx.charge_cycles(1.0);
        let mut total = AccessStats::default();
        total.merge(&s1);
        total.merge(&ctx.take_stats());
        assert_eq!(total.extra_cycles, 16.5);
    }

    #[test]
    fn full_heat_counts_every_access_per_page() {
        let (m, mut ctx) = setup();
        ctx.set_heat_mode(HeatMode::Full);
        // 1024 u64 elements = 2 pages of 512 elements.
        let a = m.alloc_array_with("a", 1024, AllocPolicy::OnNode(0), |i| i as u64);
        for i in 0..600 {
            a.get(&mut ctx, i);
        }
        a.get(&mut ctx, 5); // one extra random touch of page 0
        let heat = ctx.take_heat();
        assert_eq!(heat.len(), 1);
        let (id, pages) = &heat[0];
        assert_eq!(*id, a.alloc_id());
        assert_eq!(pages[0], 513);
        assert_eq!(pages[1], 88);
        // Drained: a second take is empty.
        assert!(ctx.take_heat().is_empty());
    }

    #[test]
    fn bulk_and_scalar_full_heat_agree() {
        let (m, mut ctx) = setup();
        ctx.set_heat_mode(HeatMode::Full);
        let a = m.alloc_array_with("a", 2048, AllocPolicy::Interleaved, |i| i as u64);
        let mut sum = 0u64;
        for i in 100..1600 {
            sum += a.get(&mut ctx, i);
        }
        let scalar = ctx.take_heat();
        let mut ctx2 = AccessCtx::new(&m, 0);
        ctx2.set_heat_mode(HeatMode::Full);
        sum += a.iter_seq(&mut ctx2, 100..1600).sum::<u64>();
        let bulk = ctx2.take_heat();
        assert_eq!(scalar, bulk);
        assert!(sum > 0);
    }

    #[test]
    fn sampled_heat_counts_one_in_n() {
        let (m, mut ctx) = setup();
        ctx.set_heat_mode(HeatMode::Sampled(10));
        let a = m.alloc_array_with("a", 512, AllocPolicy::OnNode(0), |i| i as u64);
        for i in 0..100 {
            a.get(&mut ctx, i % 512);
        }
        let heat = ctx.take_heat();
        let total: u32 = heat.iter().flat_map(|(_, v)| v.iter()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn record_migration_charges_both_endpoints() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array::<u64>("a", 512, AllocPolicy::OnNode(0));
        ctx.record_migration(a.alloc_id(), 4096, 1, 0);
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        let seqi = Pattern::Seq.index();
        assert_eq!(st.bytes[Rw::Read.index()][seqi][1], 4096);
        assert_eq!(st.count[Rw::Read.index()][seqi][1], 64);
        assert_eq!(st.bytes[Rw::Write.index()][seqi][0], 4096);
        assert_eq!(st.count[Rw::Write.index()][seqi][0], 64);
    }

    #[test]
    fn tiered_ctx_reresolves_pages_after_take_stats() {
        let m = Machine::new(MachineSpec::test2_tiered());
        let mut ctx = AccessCtx::new(&m, 0);
        let a = m.alloc_array_with("a", 512, AllocPolicy::OnNode(0), |i| i as u64);
        a.get(&mut ctx, 0);
        ctx.take_stats();
        // Migrate page 0 to the slow tier between phases.
        assert_eq!(m.migrate_page(a.alloc_id(), 0, 2), Some(0));
        a.get(&mut ctx, 1);
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        let hit_node2: u64 = (0..2).map(|p| st.count[0][p][2]).sum();
        assert_eq!(
            hit_node2, 1,
            "post-migration access must resolve the new home"
        );
    }

    #[test]
    fn merge_accumulates() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array::<u64>("a", 64, AllocPolicy::OnNode(0));
        a.get(&mut ctx, 0);
        let mut total = AccessStats::default();
        total.merge(&ctx.take_stats());
        a.get(&mut ctx, 1);
        a.get(&mut ctx, 2);
        total.merge(&ctx.take_stats());
        assert_eq!(total.total_count(), 3);
        assert_eq!(total.total_bytes(), 24);
        assert!(!total.is_empty());
    }
}
