//! Per-simulated-thread access context and access statistics.
//!
//! Every instrumented array access is classified along the three dimensions
//! the paper's Figure 2 uses to label execution flows:
//!
//! * **pattern** — sequential ([`Pattern::Seq`]) when the access continues a
//!   forward stream on the same array (within two cache lines of the previous
//!   access's end), random ([`Pattern::Rand`]) otherwise;
//! * **direction** — read or write ([`Rw`]); read-modify-writes are charged
//!   as one write transaction;
//! * **destination node** — the home node of the touched page, from which
//!   local/remote and the hop distance follow.
//!
//! Statistics are kept per allocation so the cost model can apply its cache
//! model per array and the reports can attribute traffic to graph topology,
//! application data, and runtime state separately.

use crate::machine::{AllocId, Machine};
use crate::topology::{NodeId, NumaTopology, MAX_NODES};

/// Access pattern: sequential stream vs. random.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Continues a forward stream on the same array.
    Seq,
    /// Anything else, including the first touch of an array in a phase.
    Rand,
}

impl Pattern {
    /// Index into per-pattern tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Pattern::Seq => 0,
            Pattern::Rand => 1,
        }
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rw {
    /// A load.
    Read,
    /// A store or read-modify-write.
    Write,
}

impl Rw {
    /// Index into per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Rw::Read => 0,
            Rw::Write => 1,
        }
    }
}

/// How far ahead of the previous access's end an access may land and still
/// count as sequential (two cache lines).
const SEQ_WINDOW_FWD: u64 = 128;
/// How far *behind* the previous end an access may start and still count as
/// sequential (re-touching the current cache line).
const SEQ_WINDOW_BACK: u64 = 64;

/// Access counters of one allocation: `bytes[rw][pattern][dst_node]` and the
/// matching transaction counts.
#[derive(Clone, Debug)]
pub struct ArrStat {
    /// Bytes moved, indexed by `[Rw::index()][Pattern::index()][dst node]`.
    pub bytes: [[[u64; MAX_NODES]; 2]; 2],
    /// Transactions, same indexing.
    pub count: [[[u64; MAX_NODES]; 2]; 2],
}

impl Default for ArrStat {
    fn default() -> Self {
        ArrStat {
            bytes: [[[0; MAX_NODES]; 2]; 2],
            count: [[[0; MAX_NODES]; 2]; 2],
        }
    }
}

impl ArrStat {
    fn merge(&mut self, other: &ArrStat) {
        for rw in 0..2 {
            for pat in 0..2 {
                for n in 0..MAX_NODES {
                    self.bytes[rw][pat][n] += other.bytes[rw][pat][n];
                    self.count[rw][pat][n] += other.count[rw][pat][n];
                }
            }
        }
    }

    /// Total bytes over all buckets.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().flatten().sum()
    }

    /// Total transactions over all buckets.
    pub fn total_count(&self) -> u64 {
        self.count.iter().flatten().flatten().sum()
    }
}

/// Classified access statistics of one simulated thread (or a merge of
/// several), keyed by allocation.
#[derive(Clone, Debug, Default)]
pub struct AccessStats {
    per: Vec<Option<Box<ArrStat>>>,
    /// Extra CPU cycles charged via [`AccessCtx::charge_cycles`]
    /// (per-edge arithmetic beyond the memory accesses).
    pub extra_cycles: f64,
}

impl AccessStats {
    #[inline]
    fn slot(&mut self, alloc: AllocId) -> &mut ArrStat {
        let i = alloc as usize;
        if i >= self.per.len() {
            self.per.resize_with(i + 1, || None);
        }
        self.per[i].get_or_insert_with(Default::default)
    }

    #[inline]
    pub(crate) fn add(&mut self, alloc: AllocId, rw: Rw, pat: Pattern, dst: NodeId, bytes: u64) {
        let s = self.slot(alloc);
        s.bytes[rw.index()][pat.index()][dst] += bytes;
        s.count[rw.index()][pat.index()][dst] += 1;
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        if other.per.len() > self.per.len() {
            self.per.resize_with(other.per.len(), || None);
        }
        for (i, o) in other.per.iter().enumerate() {
            if let Some(o) = o {
                self.per[i].get_or_insert_with(Default::default).merge(o);
            }
        }
        self.extra_cycles += other.extra_cycles;
    }

    /// Iterate over the allocations with any recorded accesses.
    pub fn iter_arrays(&self) -> impl Iterator<Item = (AllocId, &ArrStat)> {
        self.per
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|s| (i as AllocId, s)))
    }

    /// Total transactions.
    pub fn total_count(&self) -> u64 {
        self.iter_arrays().map(|(_, s)| s.total_count()).sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.iter_arrays().map(|(_, s)| s.total_bytes()).sum()
    }

    /// Transactions whose destination differs from `from` under `topo`.
    pub fn remote_count(&self, topo: &NumaTopology, from: NodeId) -> u64 {
        self.iter_arrays()
            .map(|(_, s)| {
                let mut c = 0;
                for rw in 0..2 {
                    for pat in 0..2 {
                        for dst in 0..topo.num_nodes() {
                            if dst != from {
                                c += s.count[rw][pat][dst];
                            }
                        }
                    }
                }
                c
            })
            .sum()
    }

    /// Bytes moved per `(pattern, dst)` summed over read/write, for one
    /// allocation. Returns `None` when the allocation was never touched.
    pub fn array_bytes(&self, alloc: AllocId) -> Option<&ArrStat> {
        self.per.get(alloc as usize).and_then(|s| s.as_deref())
    }

    /// True when no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.per.iter().all(|s| s.is_none())
    }
}

/// The execution context of one simulated thread: which core it is bound to,
/// and the classified statistics of everything it has touched since the last
/// [`AccessCtx::take_stats`].
pub struct AccessCtx {
    tid: usize,
    core: usize,
    node: NodeId,
    num_threads: usize,
    stats: AccessStats,
    /// Per-allocation end offset of the previous access (`u64::MAX` = never
    /// touched), for sequential-stream detection.
    last_end: Vec<u64>,
}

impl AccessCtx {
    /// A context bound to `core` of `machine`, with thread id = core id.
    pub fn new(machine: &Machine, core: usize) -> Self {
        let topo = machine.topology();
        AccessCtx {
            tid: core,
            core,
            node: topo.node_of_core(core),
            num_threads: topo.total_cores(),
            stats: AccessStats::default(),
            last_end: Vec::new(),
        }
    }

    pub(crate) fn with_threads(machine: &Machine, tid: usize, core: usize, n: usize) -> Self {
        let mut c = Self::new(machine, core);
        c.tid = tid;
        c.num_threads = n;
        c
    }

    /// Simulated thread id within the executor.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The core this thread is bound to.
    #[inline]
    pub fn core(&self) -> usize {
        self.core
    }

    /// The memory node of the bound core.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of simulated threads in the current executor.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Record one classified access (called by the instrumented arrays).
    #[inline]
    pub(crate) fn record(&mut self, alloc: AllocId, off: usize, len: usize, rw: Rw, dst: NodeId) {
        let i = alloc as usize;
        if i >= self.last_end.len() {
            self.last_end.resize(i + 1, u64::MAX);
        }
        let off = off as u64;
        let last = self.last_end[i];
        let pat =
            if last != u64::MAX && off + SEQ_WINDOW_BACK >= last && off <= last + SEQ_WINDOW_FWD {
                Pattern::Seq
            } else {
                Pattern::Rand
            };
        self.last_end[i] = off + len as u64;
        self.stats.add(alloc, rw, pat, dst, len as u64);
    }

    /// Charge extra CPU cycles (per-edge arithmetic) to this thread's
    /// current phase.
    #[inline]
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.stats.extra_cycles += cycles;
    }

    /// Take and reset the accumulated statistics; also resets the
    /// sequential-stream trackers (a new phase starts new streams).
    pub fn take_stats(&mut self) -> AccessStats {
        self.last_end.clear();
        std::mem::take(&mut self.stats)
    }

    /// Peek at the statistics without resetting.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    fn setup() -> (Machine, AccessCtx) {
        let m = Machine::new(MachineSpec::test2());
        let ctx = AccessCtx::new(&m, 0);
        (m, ctx)
    }

    #[test]
    fn streaming_is_sequential_after_first_touch() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        for i in 0..100 {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        // First access is cold (random); the rest stream sequentially.
        assert_eq!(st.count[Rw::Read.index()][Pattern::Rand.index()][0], 1);
        assert_eq!(st.count[Rw::Read.index()][Pattern::Seq.index()][0], 99);
    }

    #[test]
    fn strided_access_is_random() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        for i in (0..4096).step_by(512) {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Rand.index()][0], 8);
        assert_eq!(st.count[0][Pattern::Seq.index()][0], 0);
    }

    #[test]
    fn small_forward_gaps_stay_sequential() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array_with("a", 4096, AllocPolicy::OnNode(0), |i| i as u64);
        // Stride of 8 elements = 64 bytes: within the 128-byte window.
        for i in (0..1024).step_by(8) {
            a.get(&mut ctx, i);
        }
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Seq.index()][0], 127);
    }

    #[test]
    fn destination_node_follows_pages() {
        let (m, mut ctx) = setup();
        // Interleaved: elements 0..511 on node 0, 512..1023 on node 1.
        let a = m.alloc_array::<u64>("a", 1024, AllocPolicy::Interleaved);
        a.get(&mut ctx, 0);
        a.get(&mut ctx, 600);
        let s = ctx.take_stats();
        let st = s.array_bytes(a.alloc_id()).unwrap();
        let total_node0: u64 = (0..2).map(|p| st.count[0][p][0]).sum();
        let total_node1: u64 = (0..2).map(|p| st.count[0][p][1]).sum();
        assert_eq!(total_node0, 1);
        assert_eq!(total_node1, 1);
        assert_eq!(s.remote_count(m.topology(), 0), 1);
    }

    #[test]
    fn take_stats_resets_streams() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array::<u64>("a", 64, AllocPolicy::OnNode(0));
        a.get(&mut ctx, 0);
        a.get(&mut ctx, 1);
        let s1 = ctx.take_stats();
        assert_eq!(s1.total_count(), 2);
        // After reset the next access is cold again.
        a.get(&mut ctx, 2);
        let s2 = ctx.take_stats();
        let st = s2.array_bytes(a.alloc_id()).unwrap();
        assert_eq!(st.count[0][Pattern::Rand.index()][0], 1);
    }

    #[test]
    fn ctx_accessors_reflect_binding() {
        let m = Machine::new(MachineSpec::test2());
        let ctx = AccessCtx::new(&m, 3);
        assert_eq!(ctx.core(), 3);
        assert_eq!(ctx.node(), 1);
        assert_eq!(ctx.tid(), 3);
        assert_eq!(ctx.num_threads(), 4);
    }

    #[test]
    fn charge_cycles_accumulates_and_merges() {
        let m = Machine::new(MachineSpec::test2());
        let mut ctx = AccessCtx::new(&m, 0);
        ctx.charge_cycles(10.0);
        ctx.charge_cycles(5.5);
        let s1 = ctx.take_stats();
        assert_eq!(s1.extra_cycles, 15.5);
        ctx.charge_cycles(1.0);
        let mut total = AccessStats::default();
        total.merge(&s1);
        total.merge(&ctx.take_stats());
        assert_eq!(total.extra_cycles, 16.5);
    }

    #[test]
    fn merge_accumulates() {
        let (m, mut ctx) = setup();
        let a = m.alloc_array::<u64>("a", 64, AllocPolicy::OnNode(0));
        a.get(&mut ctx, 0);
        let mut total = AccessStats::default();
        total.merge(&ctx.take_stats());
        a.get(&mut ctx, 1);
        a.get(&mut ctx, 2);
        total.merge(&ctx.take_stats());
        assert_eq!(total.total_count(), 3);
        assert_eq!(total.total_bytes(), 24);
        assert!(!total.is_empty());
    }
}
