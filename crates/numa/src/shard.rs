//! Sharded simulation: host-parallel execution of per-thread phase tasks.
//!
//! The simulator owns one [`AccessCtx`] per simulated
//! thread, and all accounting a task performs lands in its own context —
//! classification windows, page caches, and counters are per-`(context,
//! allocation)` state with no cross-thread coupling. That makes the compute
//! half of a phase embarrassingly parallel *on the host*: contexts can be
//! split into disjoint shards (one per simulated socket, since threads bind
//! node-major) and driven by real host threads, then merged at the phase
//! boundary by the serial cost integration that already runs in
//! thread-id order.
//!
//! Determinism is the hard invariant, and it holds by construction rather
//! than by synchronization:
//!
//! * A task's access stream depends only on its own context and on values it
//!   reads, never on the host interleaving, **provided** phases are split
//!   into a side-effect-free compute half and a serially replayed publish
//!   half ([`SimExecutor::run_phase_split`](crate::SimExecutor::run_phase_split)).
//! * Statistics are keyed by allocation id
//!   ([`AccessStats`](crate::AccessStats)`::per` is indexed, not
//!   insertion-ordered), so first-touch order cannot leak into the merge.
//! * The merge itself ([`CostModel::phase_cost`](crate::CostModel)) walks
//!   shards in thread-id order on the calling thread, so floating-point
//!   accumulation order is fixed.
//!
//! The [`SimShardMode`] global selects whether the compute half actually
//! spawns host threads. The simulated result is bit-identical in every mode;
//! the mode only trades host wall-clock for thread-spawn overhead.

use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::ctx::AccessCtx;
use crate::topology::NodeId;

/// Host-parallelism policy for the compute half of
/// [`SimExecutor::run_phase_split`](crate::SimExecutor::run_phase_split).
///
/// Simulated results are bit-identical under every mode; this only controls
/// whether shards run on real host threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimShardMode {
    /// Never spawn host threads; shards run serially in thread-id order.
    Off,
    /// Always spawn one host thread per shard (even on single-core hosts —
    /// useful for exercising the parallel path deterministically in tests).
    On,
    /// Spawn host threads when the host has more than one core and the phase
    /// has more than one shard; serial otherwise. This is the default.
    Auto,
}

const MODE_OFF: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_AUTO: u8 = 2;

static SIM_SHARDING: AtomicU8 = AtomicU8::new(MODE_AUTO);

/// Set the global [`SimShardMode`]. Takes effect at the next phase.
pub fn set_sim_sharding(mode: SimShardMode) {
    let v = match mode {
        SimShardMode::Off => MODE_OFF,
        SimShardMode::On => MODE_ON,
        SimShardMode::Auto => MODE_AUTO,
    };
    SIM_SHARDING.store(v, Ordering::SeqCst);
}

/// The current global [`SimShardMode`].
pub fn sim_sharding() -> SimShardMode {
    match SIM_SHARDING.load(Ordering::Relaxed) {
        MODE_OFF => SimShardMode::Off,
        MODE_ON => SimShardMode::On,
        _ => SimShardMode::Auto,
    }
}

/// Whether the compute half of a phase with `num_shards` shards should spawn
/// host threads under the current mode.
pub(crate) fn parallel_enabled(num_shards: usize) -> bool {
    match sim_sharding() {
        SimShardMode::Off => false,
        SimShardMode::On => num_shards > 1,
        SimShardMode::Auto => {
            num_shards > 1
                && std::thread::available_parallelism()
                    .map(|n| n.get() > 1)
                    .unwrap_or(false)
        }
    }
}

/// Contiguous thread-id ranges with a common home node. Threads bind
/// node-major, so each simulated socket owns one contiguous tid range; those
/// ranges are the shards.
pub(crate) fn shard_ranges(nodes: &[NodeId]) -> Vec<Range<usize>> {
    let mut shards: Vec<Range<usize>> = Vec::new();
    for (t, &node) in nodes.iter().enumerate() {
        match shards.last_mut() {
            Some(r) if nodes[r.start] == node => r.end = t + 1,
            _ => shards.push(t..t + 1),
        }
    }
    shards
}

/// Run `compute` for every simulated thread, one host thread per shard.
/// Within a shard, tids run serially in ascending order; results are
/// returned in tid order regardless of host scheduling. Panics from shard
/// threads are re-raised on the caller (first shard in tid order wins), with
/// the original payload preserved.
pub(crate) fn run_sharded<D: Send>(
    ctxs: &mut [AccessCtx],
    shards: &[Range<usize>],
    compute: &(impl Fn(usize, &mut AccessCtx) -> D + Sync),
) -> Vec<D> {
    let total = ctxs.len();
    // Split the contexts into one disjoint &mut chunk per shard.
    let mut chunks: Vec<(usize, &mut [AccessCtx])> = Vec::with_capacity(shards.len());
    let mut rest = ctxs;
    let mut consumed = 0usize;
    for r in shards {
        let (head, tail) = rest.split_at_mut(r.end - consumed);
        chunks.push((r.start, head));
        consumed = r.end;
        rest = tail;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(k, ctx)| compute(start + k, ctx))
                        .collect::<Vec<D>>()
                })
            })
            .collect();
        let mut out: Vec<D> = Vec::with_capacity(total);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

/// Serializes tests that mutate the process-wide shard mode.
#[cfg(test)]
pub(crate) static TEST_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_group_contiguous_nodes() {
        assert_eq!(shard_ranges(&[0, 0, 1, 1, 2]), vec![0..2, 2..4, 4..5]);
        assert_eq!(shard_ranges(&[0]), vec![0..1]);
        assert_eq!(shard_ranges(&[]), Vec::<Range<usize>>::new());
    }

    #[test]
    fn mode_roundtrips() {
        let _guard = TEST_MODE_LOCK.lock().unwrap();
        let prev = sim_sharding();
        for m in [SimShardMode::Off, SimShardMode::On, SimShardMode::Auto] {
            set_sim_sharding(m);
            assert_eq!(sim_sharding(), m);
        }
        set_sim_sharding(prev);
    }
}
