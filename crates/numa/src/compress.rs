//! Compressed-topology storage: encoded neighbour lists charged at their
//! encoded size.
//!
//! `polymer-graph` provides the delta/varint codec; this module provides the
//! NUMA-placed, access-accounted home for the encoded payload. A
//! [`CompressedLists`] pairs a per-list byte-offset array with one
//! concatenated payload array, both ordinary instrumented
//! [`NumaArray`]s, and [`CompressedLists::list`] charges a
//! list read as one offset-pair read plus one coalesced sequential run over
//! the *encoded* bytes. The cost model therefore sees the compressed
//! traffic: fewer bytes moved per edge, which is exactly the paper's
//! bandwidth-bound argument applied to topology data. Decoding work itself
//! is a register-level transform of already-charged bytes and is not billed
//! separately, matching how the raw path bills only the memory traffic of
//! `u32` neighbour loads.
//!
//! The [`compressed_topology`] global gates whether engines build and
//! traverse compressed topology. It defaults to off so the committed golden
//! fixtures keep replaying bit-identically; `bench_hotpath` flips it to
//! measure the simulated byte reduction.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::array::NumaArray;
use crate::ctx::AccessCtx;
use crate::machine::Machine;
use crate::policy::AllocPolicy;

static COMPRESSED_TOPOLOGY: AtomicBool = AtomicBool::new(false);

/// Enable or disable compressed-topology mode globally. Engines consult this
/// at graph-build time; it must not change mid-run. Default: disabled, so
/// existing fixtures replay unchanged.
pub fn set_compressed_topology(enabled: bool) {
    COMPRESSED_TOPOLOGY.store(enabled, Ordering::SeqCst);
}

/// Whether engines should build and traverse compressed topology.
pub fn compressed_topology() -> bool {
    COMPRESSED_TOPOLOGY.load(Ordering::Relaxed)
}

/// A set of variable-length encoded lists (compressed CSR neighbour lists)
/// in instrumented NUMA memory: `offs[i]..offs[i + 1]` bounds list `i`'s
/// payload inside `bytes`.
pub struct CompressedLists {
    offs: NumaArray<u64>,
    bytes: NumaArray<u8>,
}

impl CompressedLists {
    /// Place pre-encoded lists into instrumented memory. `offs` must have
    /// one more entry than there are lists, start at 0, be non-decreasing,
    /// and end at `bytes.len()`. The offsets and payload each take their own
    /// placement policy so engines can home both alongside the partition
    /// that owns them.
    pub fn from_encoded(
        machine: &Machine,
        name: &str,
        offs: Vec<u64>,
        bytes: Vec<u8>,
        offs_policy: AllocPolicy,
        bytes_policy: AllocPolicy,
    ) -> CompressedLists {
        assert!(
            !offs.is_empty(),
            "offset table must have at least one entry"
        );
        assert_eq!(offs[0], 0, "offset table must start at 0");
        assert_eq!(
            *offs.last().unwrap(),
            bytes.len() as u64,
            "offset table must end at the payload length"
        );
        let offs =
            machine.alloc_array_with(&format!("{name}.coffs"), offs.len(), offs_policy, |i| {
                offs[i]
            });
        let payload_len = bytes.len();
        let bytes =
            machine.alloc_array_with(&format!("{name}.cbytes"), payload_len, bytes_policy, |i| {
                bytes[i]
            });
        CompressedLists { offs, bytes }
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.offs.len() - 1
    }

    /// Total encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Accounted read of list `i`'s encoded payload: the bounding offset
    /// pair is charged as one two-element run and the payload as one
    /// coalesced sequential byte run of the *encoded* length.
    #[inline]
    pub fn list(&self, ctx: &mut AccessCtx, i: usize) -> &[u8] {
        let pair = self.offs.load_range(ctx, i..i + 2);
        let (s, e) = (pair[0] as usize, pair[1] as usize);
        self.bytes.load_range(ctx, s..e)
    }

    /// Unaccounted read of list `i`'s payload (construction, verification).
    pub fn raw_list(&self, i: usize) -> &[u8] {
        let offs = self.offs.raw();
        &self.bytes.raw()[offs[i] as usize..offs[i + 1] as usize]
    }
}

impl std::fmt::Debug for CompressedLists {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedLists")
            .field("lists", &self.num_lists())
            .field("encoded_bytes", &self.encoded_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineSpec;

    #[test]
    fn charged_list_reads_bill_encoded_bytes() {
        let m = Machine::new(MachineSpec::test2());
        // Three lists: 2, 0, and 3 encoded bytes.
        let cl = CompressedLists::from_encoded(
            &m,
            "adj",
            vec![0, 2, 2, 5],
            vec![10, 11, 20, 21, 22],
            AllocPolicy::OnNode(0),
            AllocPolicy::OnNode(0),
        );
        assert_eq!(cl.num_lists(), 3);
        assert_eq!(cl.encoded_bytes(), 5);
        let mut ctx = AccessCtx::new(&m, 0);
        assert_eq!(cl.list(&mut ctx, 0), &[10, 11]);
        assert_eq!(cl.list(&mut ctx, 1), &[] as &[u8]);
        assert_eq!(cl.list(&mut ctx, 2), &[20, 21, 22]);
        assert_eq!(cl.raw_list(2), &[20, 21, 22]);
        let s = ctx.take_stats();
        // 3 offset pairs (u64) + 5 payload bytes.
        assert_eq!(s.total_bytes(), 3 * 16 + 5);
    }

    #[test]
    fn toggle_roundtrips() {
        assert!(!compressed_topology());
        set_compressed_topology(true);
        assert!(compressed_topology());
        set_compressed_topology(false);
    }
}
