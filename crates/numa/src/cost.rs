//! The simulated-time cost model.
//!
//! Converts the classified access statistics of one bulk-synchronous phase
//! into simulated time. The model is deliberately simple and fully
//! documented, because its purpose is to reproduce the *shape* of the paper's
//! results from the mechanisms the paper identifies, not absolute numbers:
//!
//! 1. **Single-stream time.** Each thread's bytes are divided by the paper's
//!    measured bandwidth for their (pattern, distance) bucket (Figure 4) —
//!    this is where sequential-remote beating random-local (2.92×–6.85×)
//!    enters. A per-access CPU cost floor models instruction overhead.
//! 2. **Cache model.** Per (node, array), an analytic last-level-cache hit
//!    rate `min(max_hit, resident × reuse)` is applied: `resident` is the
//!    fraction of the node's touched footprint that fits in its LLC, and
//!    `reuse` is the fraction of accesses that revisit a line — 1 for arrays
//!    warm from an earlier phase, `1 − footprint/bytes` within a cold phase.
//!    Hits are charged at LLC bandwidth instead of DRAM. Smaller per-node
//!    partitions at higher socket counts thus stay warm across iterations —
//!    the source of Polymer's super-linear PageRank scaling (Section 6.3).
//! 3. **Congestion.** Total DRAM bytes served by each node and total bytes
//!    crossing each interconnect link are divided by aggregate capacities;
//!    the phase cannot finish faster than its most congested resource
//!    (paper Sections 3.1 and 6.8: centralized/interleaved allocation and
//!    imbalance both amplify through congestion).
//!
//! Phase time = max(slowest thread, most congested memory controller, most
//! congested link). Barrier costs between phases come from
//! [`BarrierKind::cost_us`], calibrated to the paper's Figure 10(a).
//!
//! Every integrated phase yields a [`PhaseCost`]: the simulated time, its
//! binding resource (thread / DRAM / link), and the full classified access
//! census — including [`PhaseCost::per_socket`], the per-issuing-socket
//! decomposition (pattern × hop distance) that the tracing layer turns into
//! per-socket counter lanes. The decomposition is lossless: socket sums
//! reproduce the aggregate fields exactly (pinned by a workspace property
//! test).
//!
//! ```
//! use polymer_numa::{BarrierKind, Machine, MachineSpec, SimExecutor};
//!
//! // Figure 10(a)'s calibration at eight sockets: each barrier family is
//! // roughly an order of magnitude apart.
//! let p = BarrierKind::Pthread.cost_us(8);
//! let h = BarrierKind::Hierarchical.cost_us(8);
//! let n = BarrierKind::SenseNuma.cost_us(8);
//! assert!(p > 10.0 * h && h > 10.0 * n);
//!
//! // A phase's cost decomposes per socket without loss.
//! let machine = Machine::new(MachineSpec::test2());
//! let data = machine.alloc_array::<u64>("doc/cost", 1 << 14,
//!     polymer_numa::AllocPolicy::Interleaved);
//! let mut sim = SimExecutor::new(&machine, 2);
//! let cost = sim.run_phase("scan", |_, ctx| {
//!     for i in 0..data.len() {
//!         data.get(ctx, i);
//!     }
//! });
//! let per_socket: u64 = cost
//!     .per_socket
//!     .iter()
//!     .map(|s| s.loads + s.stores)
//!     .sum();
//! assert_eq!(per_socket, cost.count_local + cost.count_remote);
//! ```

use serde::{Deserialize, Serialize};

use crate::ctx::AccessStats;
use crate::machine::Machine;
use crate::topology::{NodeId, MAX_NODES};

/// Tunable constants of the cost model. Defaults are documented estimates for
/// the paper's Intel machine; only ratios matter for the reproduced shapes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostConfig {
    /// Aggregate DRAM bandwidth of one node's memory controller, MB/s.
    /// Roughly 4× the single-stream sequential bandwidth — ten cores cannot
    /// each get the full single-stream rate.
    pub node_dram_mbs: f64,
    /// Aggregate bandwidth of one interconnect link (QPI/HT), MB/s.
    pub link_mbs: f64,
    /// Bandwidth of sequential accesses that hit in the LLC, MB/s.
    pub llc_seq_mbs: f64,
    /// Bandwidth of random accesses that hit in the LLC, MB/s.
    pub llc_rand_mbs: f64,
    /// Cap on the analytic LLC hit rate (cold misses always remain).
    pub max_hit_rate: f64,
    /// CPU cycles charged per access as an instruction-overhead floor.
    pub cpu_cycles_per_access: f64,
    /// Aggregate bandwidth of one *slow-tier* node's controller, MB/s.
    /// Follows the Optane calibration: the capacity tier's aggregate
    /// bandwidth is roughly the DRAM controller's divided by
    /// [`crate::SLOW_SEQ_BW_DIVISOR`]. Only consulted for slow nodes, so
    /// single-tier machines never read it.
    #[serde(default = "default_slow_node_dram_mbs")]
    pub slow_node_dram_mbs: f64,
}

fn default_slow_node_dram_mbs() -> f64 {
    4_900.0
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            node_dram_mbs: 12_800.0,
            link_mbs: 6_400.0,
            llc_seq_mbs: 20_000.0,
            llc_rand_mbs: 6_000.0,
            max_hit_rate: 0.95,
            cpu_cycles_per_access: 1.0,
            slow_node_dram_mbs: default_slow_node_dram_mbs(),
        }
    }
}

/// The integrated cost of one phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Simulated phase time in microseconds.
    pub time_us: f64,
    /// Time of the slowest thread (before congestion), µs.
    pub max_thread_us: f64,
    /// Time dictated by the most congested memory controller, µs.
    pub dram_bound_us: f64,
    /// Time dictated by the most congested interconnect link, µs.
    pub link_bound_us: f64,
    /// Per-thread compute+memory times, µs.
    pub per_thread_us: Vec<f64>,
    /// Local / remote transaction counts.
    pub count_local: u64,
    /// Remote transaction count.
    pub count_remote: u64,
    /// Local / remote bytes moved (before cache filtering).
    pub bytes_local: u64,
    /// Remote bytes moved.
    pub bytes_remote: u64,
    /// DRAM (LLC-miss) bytes attributed to local accesses.
    pub miss_bytes_local: f64,
    /// DRAM (LLC-miss) bytes attributed to remote accesses.
    pub miss_bytes_remote: f64,
    /// Estimated LLC-missing transactions attributed to local accesses.
    pub miss_count_local: f64,
    /// Estimated LLC-missing transactions attributed to remote accesses.
    pub miss_count_remote: f64,
    /// Transaction counts split `[Pattern::index()][is_remote as usize]` —
    /// verifies the paper's Figure 2/6 access-pattern labels directly
    /// (Polymer's remote traffic is sequential, Ligra's is random).
    pub count_by_pattern: [[u64; 2]; 2],
    /// Counters attributed to the *issuing* socket (the home node of the
    /// threads that performed the accesses), one entry per machine node.
    /// Socket sums reproduce the aggregate fields exactly: summing
    /// [`SocketCost::count`] over sockets with distance class 0 gives
    /// `count_local`, classes 1–3 give `count_remote`, and likewise for
    /// bytes and LLC-miss bytes (see the workspace property tests).
    #[serde(default)]
    pub per_socket: Vec<SocketCost>,
}

/// Per-socket slice of a [`PhaseCost`]: what one socket's threads did during
/// the phase, split by access pattern × hop distance. Indices follow
/// [`crate::Pattern::index`] (0 = sequential, 1 = random) and
/// [`crate::DistClass::index`] (0 = local … 3 = two hops).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SocketCost {
    /// Load (read) transactions issued by this socket's threads.
    pub loads: u64,
    /// Store (write) transactions issued by this socket's threads.
    pub stores: u64,
    /// Transactions by `[pattern][hop distance]`.
    pub count: [[u64; 4]; 2],
    /// Bytes moved by `[pattern][hop distance]` (before cache filtering).
    pub bytes: [[u64; 4]; 2],
    /// Bytes served from this socket's LLC.
    pub llc_hit_bytes: f64,
    /// Bytes that missed the LLC and went to DRAM.
    pub llc_miss_bytes: f64,
    /// Busy time of the socket's slowest thread, µs (sums over phases when
    /// accumulated, like [`PhaseCost::time_us`]).
    pub busy_us: f64,
}

impl SocketCost {
    /// Fold another socket cost into this one (counters and times add).
    pub fn accumulate(&mut self, other: &SocketCost) {
        self.loads += other.loads;
        self.stores += other.stores;
        for p in 0..2 {
            for d in 0..4 {
                self.count[p][d] += other.count[p][d];
                self.bytes[p][d] += other.bytes[p][d];
            }
        }
        self.llc_hit_bytes += other.llc_hit_bytes;
        self.llc_miss_bytes += other.llc_miss_bytes;
        self.busy_us += other.busy_us;
    }
}

impl PhaseCost {
    /// Fold another phase's cost into an accumulating total. `time_us` and
    /// the bound fields become sums; counters add.
    pub fn accumulate(&mut self, other: &PhaseCost) {
        self.time_us += other.time_us;
        self.max_thread_us += other.max_thread_us;
        self.dram_bound_us += other.dram_bound_us;
        self.link_bound_us += other.link_bound_us;
        if self.per_thread_us.len() < other.per_thread_us.len() {
            self.per_thread_us.resize(other.per_thread_us.len(), 0.0);
        }
        for (a, b) in self.per_thread_us.iter_mut().zip(&other.per_thread_us) {
            *a += *b;
        }
        self.count_local += other.count_local;
        self.count_remote += other.count_remote;
        self.bytes_local += other.bytes_local;
        self.bytes_remote += other.bytes_remote;
        self.miss_bytes_local += other.miss_bytes_local;
        self.miss_bytes_remote += other.miss_bytes_remote;
        self.miss_count_local += other.miss_count_local;
        self.miss_count_remote += other.miss_count_remote;
        for pat in 0..2 {
            for loc in 0..2 {
                self.count_by_pattern[pat][loc] += other.count_by_pattern[pat][loc];
            }
        }
        if self.per_socket.len() < other.per_socket.len() {
            self.per_socket
                .resize_with(other.per_socket.len(), SocketCost::default);
        }
        for (a, b) in self.per_socket.iter_mut().zip(&other.per_socket) {
            a.accumulate(b);
        }
    }
}

/// Barrier families of the paper's Section 5 / Figure 10(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierKind {
    /// `pthread_barrier`: flat, traps into the kernel.
    Pthread,
    /// Hierarchical barrier built from `pthread_barrier` per group.
    Hierarchical,
    /// Polymer's hierarchical sense-reversing user-level barrier.
    SenseNuma,
}

impl BarrierKind {
    /// Synchronization cost in µs for `sockets` participating sockets,
    /// calibrated to the paper's measured endpoints: pthread 30 µs intra /
    /// 570 µs at two sockets / 6182 µs at eight; hierarchical 612 µs at
    /// eight; sense-reversing 8 µs at eight.
    pub fn cost_us(self, sockets: usize) -> f64 {
        let s = sockets.max(1) as f64;
        match self {
            BarrierKind::Pthread => 30.0 + 483.5 * (s - 1.0) + 56.5 * (s - 1.0) * (s - 1.0),
            BarrierKind::Hierarchical => 30.0 + 83.14 * (s - 1.0),
            BarrierKind::SenseNuma => s,
        }
    }
}

/// The cost model bound to one machine. Stateful: it remembers which
/// (node, array) pairs are *warm* — touched in an earlier phase — so that
/// re-streamed data whose footprint fits in the LLC hits across iterations.
/// This cross-iteration reuse is what produces the paper's super-linear
/// PageRank scaling when per-node partitions shrink into cache.
pub struct CostModel {
    machine: Machine,
    config: CostConfig,
    /// `warm[node * stride + alloc]` — the node's LLC has seen this array.
    warm: Vec<bool>,
    warm_stride: usize,
}

impl CostModel {
    /// Build a model for a machine with the given constants.
    pub fn new(machine: &Machine, config: CostConfig) -> Self {
        CostModel {
            machine: machine.clone(),
            config,
            warm: Vec::new(),
            warm_stride: 0,
        }
    }

    /// The model's constants.
    pub fn config(&self) -> &CostConfig {
        &self.config
    }

    /// Forget all cache warmth (e.g. between independent experiment runs).
    pub fn reset_warmth(&mut self) {
        self.warm.clear();
        self.warm_stride = 0;
    }

    fn warm_slot(&mut self, nnodes: usize, nallocs: usize) {
        if self.warm_stride < nallocs {
            // Re-grow with a larger stride, preserving old flags.
            let old_stride = self.warm_stride;
            let mut fresh = vec![false; nnodes * nallocs];
            for n in 0..nnodes {
                for a in 0..old_stride {
                    if self.warm.get(n * old_stride + a).copied().unwrap_or(false) {
                        fresh[n * nallocs + a] = true;
                    }
                }
            }
            self.warm = fresh;
            self.warm_stride = nallocs;
        }
    }

    /// Integrate one phase: `threads` pairs each thread's home node with its
    /// access statistics for the phase.
    // Index loops here traverse several parallel arrays at once; iterator
    // chains would obscure the bucket arithmetic.
    #[allow(clippy::needless_range_loop)]
    pub fn phase_cost(&mut self, threads: &[(NodeId, AccessStats)]) -> PhaseCost {
        let machine = self.machine.clone();
        let topo = machine.topology();
        let spec = machine.spec();
        let nnodes = topo.num_nodes();
        let llc = topo.llc_bytes() as f64;
        let max_hit = self.config.max_hit_rate;

        // Snapshot allocation sizes once (avoids per-access locking).
        let nallocs = machine.num_allocs();
        let alloc_bytes: Vec<u64> = (0..nallocs as u32)
            .map(|i| machine.alloc_bytes(i))
            .collect();
        self.warm_slot(nnodes, nallocs);
        let cfg = &self.config;

        // Pass 1 — per (node, array): bytes accessed, cache-line footprint
        // (sequential streams occupy their byte span; each random access
        // occupies one 64-byte line), and from those an analytic hit rate:
        //   resident = min(1, LLC / node total footprint)
        //   reuse    = 1 if warm from an earlier phase, else the fraction of
        //              accesses that revisit a resident line (1 - fp/bytes)
        //   hit      = min(max_hit, resident * reuse)
        let mut acc_bytes = vec![0u64; nnodes * nallocs];
        let mut seq_bytes = vec![0u64; nnodes * nallocs];
        let mut rand_cnt = vec![0u64; nnodes * nallocs];
        for (node, stats) in threads {
            for (a, s) in stats.iter_arrays() {
                let k = *node * nallocs + a as usize;
                for rw in 0..2 {
                    for dst in 0..nnodes {
                        acc_bytes[k] += s.bytes[rw][0][dst] + s.bytes[rw][1][dst];
                        seq_bytes[k] += s.bytes[rw][0][dst];
                        rand_cnt[k] += s.count[rw][1][dst];
                    }
                }
            }
        }
        let mut footprint = vec![0u64; nnodes * nallocs];
        let mut node_fp = vec![0u64; nnodes];
        for n in 0..nnodes {
            for a in 0..nallocs {
                let k = n * nallocs + a;
                if acc_bytes[k] == 0 {
                    continue;
                }
                footprint[k] = (seq_bytes[k] + 64 * rand_cnt[k]).min(alloc_bytes[a]);
                node_fp[n] += footprint[k];
            }
        }
        // LLC capacity is allocated greedily by access density (accesses
        // per footprint byte): hot small arrays — state bitmaps, value
        // arrays — stay resident ahead of huge cold edge streams, as an LRU
        // cache would keep them. Each array's resident fraction is the share
        // of its footprint that fits in what remains of the node's LLC.
        let mut hit_rate = vec![0.0f64; nnodes * nallocs];
        for n in 0..nnodes {
            if node_fp[n] == 0 {
                continue;
            }
            let mut order: Vec<usize> = (0..nallocs)
                .filter(|&a| acc_bytes[n * nallocs + a] > 0)
                .collect();
            order.sort_by(|&a, &b| {
                let ka = n * nallocs + a;
                let kb = n * nallocs + b;
                let da = acc_bytes[ka] as f64 / footprint[ka].max(1) as f64;
                let db = acc_bytes[kb] as f64 / footprint[kb].max(1) as f64;
                db.partial_cmp(&da).unwrap()
            });
            let mut free = llc;
            for a in order {
                let k = n * nallocs + a;
                let fp = footprint[k] as f64;
                let resident = if fp <= free {
                    1.0
                } else {
                    (free / fp).max(0.0)
                };
                free = (free - fp).max(0.0);
                let reuse = if self.warm[k] {
                    1.0
                } else {
                    (1.0 - fp / acc_bytes[k] as f64).max(0.0)
                };
                hit_rate[k] = (resident * reuse).min(max_hit);
            }
        }

        let cycles_to_us = 1.0 / (spec.ghz * 1000.0);
        let mut cost = PhaseCost {
            per_thread_us: vec![0.0; threads.len()],
            per_socket: vec![SocketCost::default(); nnodes],
            ..Default::default()
        };
        let mut dram_bytes = vec![0.0f64; nnodes];
        let mut link_bytes = vec![[0.0f64; MAX_NODES]; MAX_NODES];

        for (t, (node, stats)) in threads.iter().enumerate() {
            let node = *node;
            let mut time = stats.extra_cycles * cycles_to_us;
            for (a, s) in stats.iter_arrays() {
                let hit = hit_rate[node * nallocs + a as usize];
                for rw in 0..2 {
                    for pat in 0..2 {
                        let seq = pat == 0;
                        for dst in 0..nnodes {
                            let b = s.bytes[rw][pat][dst] as f64;
                            if b == 0.0 {
                                continue;
                            }
                            let c = s.count[rw][pat][dst];
                            let dist = topo.dist(node, dst);
                            let miss_b = b * (1.0 - hit);
                            let hit_b = b * hit;
                            // The destination node's tier selects the table
                            // row; `bw_t(.., Fast)` is exactly `bw(..)`, so
                            // single-tier machines charge bit-identically.
                            let dram_bw = spec.bandwidth.bw_t(seq, dist, topo.tier_of(dst));
                            let llc_bw = if seq {
                                cfg.llc_seq_mbs
                            } else {
                                cfg.llc_rand_mbs
                            };
                            // 1 MB/s = 1 byte/µs.
                            time += miss_b / dram_bw + hit_b / llc_bw;
                            time += c as f64 * cfg.cpu_cycles_per_access * cycles_to_us;
                            dram_bytes[dst] += miss_b;
                            cost.count_by_pattern[pat][dist.is_remote() as usize] += c;
                            let sc = &mut cost.per_socket[node];
                            sc.count[pat][dist.index()] += c;
                            sc.bytes[pat][dist.index()] += b as u64;
                            sc.llc_hit_bytes += hit_b;
                            sc.llc_miss_bytes += miss_b;
                            if rw == 0 {
                                sc.loads += c;
                            } else {
                                sc.stores += c;
                            }
                            if dist.is_remote() {
                                let (lo, hi) = (node.min(dst), node.max(dst));
                                link_bytes[lo][hi] += miss_b;
                                cost.count_remote += c;
                                cost.bytes_remote += b as u64;
                                cost.miss_bytes_remote += miss_b;
                                cost.miss_count_remote += c as f64 * (1.0 - hit);
                            } else {
                                cost.count_local += c;
                                cost.bytes_local += b as u64;
                                cost.miss_bytes_local += miss_b;
                                cost.miss_count_local += c as f64 * (1.0 - hit);
                            }
                        }
                    }
                }
            }
            cost.per_thread_us[t] = time;
            let busy = &mut cost.per_socket[node].busy_us;
            *busy = busy.max(time);
        }

        // Arrays touched this phase are warm for the next one; how much of a
        // warm array actually survives in cache is the greedy residency
        // fraction computed above, so no explicit eviction pass is needed.
        for n in 0..nnodes {
            for a in 0..nallocs {
                let k = n * nallocs + a;
                if acc_bytes[k] > 0 {
                    self.warm[k] = true;
                }
            }
        }

        // Debugging aid: POLYMER_COST_DEBUG=1 dumps per-array classified
        // transaction counts for this phase to stderr.
        if std::env::var_os("POLYMER_COST_DEBUG").is_some() {
            let mut per: std::collections::HashMap<String, [[u64; 2]; 2]> = Default::default();
            for (node, stats) in threads {
                for (a, st) in stats.iter_arrays() {
                    let e = per.entry(machine.alloc_name(a)).or_default();
                    for rw in 0..2 {
                        for pat in 0..2 {
                            for dst in 0..nnodes {
                                let loc = topo.dist(*node, dst).is_remote() as usize;
                                e[pat][loc] += st.count[rw][pat][dst];
                            }
                        }
                    }
                }
            }
            let mut rows: Vec<_> = per.into_iter().collect();
            rows.sort_by_key(|(_, c)| std::cmp::Reverse(c[1][1]));
            for (name, c) in rows {
                eprintln!(
                    "[cost] {name:24} seqL {:>9} seqR {:>9} randL {:>9} randR {:>9}",
                    c[0][0], c[0][1], c[1][0], c[1][1]
                );
            }
        }

        cost.max_thread_us = cost.per_thread_us.iter().cloned().fold(0.0, f64::max);
        // Congestion folds each node's miss bytes over its *own* controller
        // capacity: slow-tier controllers saturate earlier. For all-fast
        // machines every divisor is `node_dram_mbs`, as before.
        cost.dram_bound_us = dram_bytes
            .iter()
            .enumerate()
            .map(|(n, b)| {
                let mbs = if topo.tier_of(n).is_slow() {
                    cfg.slow_node_dram_mbs
                } else {
                    cfg.node_dram_mbs
                };
                b / mbs
            })
            .fold(0.0, f64::max);
        cost.link_bound_us = link_bytes
            .iter()
            .flatten()
            .map(|b| b / cfg.link_mbs)
            .fold(0.0, f64::max);
        cost.time_us = cost
            .max_thread_us
            .max(cost.dram_bound_us)
            .max(cost.link_bound_us);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::AccessCtx;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    fn stats_for(
        m: &Machine,
        core: usize,
        f: impl FnOnce(&mut AccessCtx),
    ) -> (NodeId, AccessStats) {
        let mut ctx = AccessCtx::new(m, core);
        f(&mut ctx);
        (ctx.node(), ctx.take_stats())
    }

    #[test]
    fn barrier_costs_match_paper_endpoints() {
        assert!((BarrierKind::Pthread.cost_us(1) - 30.0).abs() < 1.0);
        assert!((BarrierKind::Pthread.cost_us(2) - 570.0).abs() < 5.0);
        assert!((BarrierKind::Pthread.cost_us(8) - 6182.0).abs() < 20.0);
        assert!((BarrierKind::Hierarchical.cost_us(8) - 612.0).abs() < 5.0);
        assert!((BarrierKind::SenseNuma.cost_us(8) - 8.0).abs() < 0.5);
        // Ordering: N < H < P at every socket count above one.
        for s in 2..=8 {
            assert!(BarrierKind::SenseNuma.cost_us(s) < BarrierKind::Hierarchical.cost_us(s));
            assert!(BarrierKind::Hierarchical.cost_us(s) < BarrierKind::Pthread.cost_us(s));
        }
    }

    #[test]
    fn local_sequential_cheaper_than_remote_random() {
        let m = Machine::new(MachineSpec::test2());
        // Big arrays so the LLC hit rate stays low and DRAM dominates.
        let local = m.alloc_array::<u64>("l", 1 << 20, AllocPolicy::OnNode(0));
        let remote = m.alloc_array::<u64>("r", 1 << 20, AllocPolicy::OnNode(1));
        let mut model = CostModel::new(&m, CostConfig::default());

        let seq_local = stats_for(&m, 0, |ctx| {
            for i in 0..100_000 {
                local.get(ctx, i);
            }
        });
        let rand_remote = stats_for(&m, 0, |ctx| {
            let mut i = 1usize;
            for _ in 0..100_000 {
                i = (i.wrapping_mul(2862933555777941757).wrapping_add(3037000493)) % (1 << 20);
                remote.get(ctx, i);
            }
        });
        let c1 = model.phase_cost(&[seq_local]);
        let c2 = model.phase_cost(&[rand_remote]);
        assert!(c1.time_us > 0.0);
        // Same byte volume; random remote must be several times slower.
        assert!(
            c2.time_us > 3.0 * c1.time_us,
            "{} vs {}",
            c2.time_us,
            c1.time_us
        );
        assert!(c2.count_remote > 90_000);
        assert_eq!(c2.count_local, 0);
    }

    #[test]
    fn sequential_remote_beats_random_local() {
        // The paper's key insight, reproduced by the model end-to-end.
        let m = Machine::new(MachineSpec::test2());
        let local = m.alloc_array::<u64>("l", 1 << 21, AllocPolicy::OnNode(0));
        let remote = m.alloc_array::<u64>("r", 1 << 21, AllocPolicy::OnNode(1));
        let mut model = CostModel::new(&m, CostConfig::default());
        let n = 200_000;
        let seq_remote = stats_for(&m, 0, |ctx| {
            for i in 0..n {
                remote.get(ctx, i);
            }
        });
        let rand_local = stats_for(&m, 0, |ctx| {
            let mut i = 1usize;
            for _ in 0..n {
                i = (i.wrapping_mul(2862933555777941757).wrapping_add(3037000493)) % (1 << 21);
                local.get(ctx, i);
            }
        });
        let c_sr = model.phase_cost(&[seq_remote]);
        let c_rl = model.phase_cost(&[rand_local]);
        assert!(
            c_rl.time_us > 1.5 * c_sr.time_us,
            "random local {} should exceed sequential remote {}",
            c_rl.time_us,
            c_sr.time_us
        );
    }

    #[test]
    fn congestion_binds_when_all_threads_hammer_one_node() {
        let m = Machine::new(MachineSpec::intel80());
        let central = m.alloc_array::<u64>("c", 1 << 22, AllocPolicy::Centralized);
        let mut model = CostModel::new(&m, CostConfig::default());
        let mut threads = Vec::new();
        for core in 0..80 {
            threads.push(stats_for(&m, core, |ctx| {
                for i in 0..50_000 {
                    central.get(ctx, i);
                }
            }));
        }
        let c = model.phase_cost(&threads);
        // All traffic funnels into node 0's controller.
        assert!(c.dram_bound_us > c.max_thread_us);
        assert_eq!(c.time_us, c.dram_bound_us.max(c.link_bound_us));
    }

    #[test]
    fn small_working_set_hits_in_llc() {
        let m = Machine::new(MachineSpec::intel80());
        let tiny = m.alloc_array::<u64>("t", 1024, AllocPolicy::OnNode(0));
        let huge = m.alloc_array::<u64>("h", 1 << 24, AllocPolicy::OnNode(0));
        let mut model = CostModel::new(&m, CostConfig::default());
        let n = 100_000;
        let hot = stats_for(&m, 0, |ctx| {
            let mut i = 1usize;
            for _ in 0..n {
                i = (i * 31 + 7) % 1024;
                tiny.get(ctx, i);
            }
        });
        let cold = stats_for(&m, 0, |ctx| {
            let mut i = 1usize;
            for _ in 0..n {
                i = (i.wrapping_mul(2862933555777941757).wrapping_add(3037000493)) % (1 << 24);
                huge.get(ctx, i);
            }
        });
        let c_hot = model.phase_cost(&[hot]);
        let c_cold = model.phase_cost(&[cold]);
        assert!(c_cold.time_us > 2.0 * c_hot.time_us);
    }

    #[test]
    fn slow_tier_bytes_charge_slower() {
        // Same workload against a fast-homed and a slow-homed array on a
        // tiered machine: the slow copy must cost several times more for
        // random accesses (the Optane ÷8 row) and more for sequential too.
        let m = Machine::new(MachineSpec::test2_tiered());
        let fast = m.alloc_array::<u64>("f", 1 << 20, AllocPolicy::OnNode(1));
        let slow = m.alloc_array::<u64>("s", 1 << 20, AllocPolicy::OnNode(2));
        let mut model = CostModel::new(&m, CostConfig::default());
        let n = 100_000;
        let run = |arr: &crate::NumaArray<u64>, rand: bool| {
            stats_for(&m, 0, |ctx| {
                let mut i = 1usize;
                for k in 0..n {
                    let idx = if rand {
                        i = (i.wrapping_mul(2862933555777941757).wrapping_add(3037000493))
                            % (1 << 20);
                        i
                    } else {
                        k
                    };
                    arr.get(ctx, idx);
                }
            })
        };
        let seq_fast = model.phase_cost(&[run(&fast, false)]);
        let seq_slow = model.phase_cost(&[run(&slow, false)]);
        let mut model2 = CostModel::new(&m, CostConfig::default());
        let rand_fast = model2.phase_cost(&[run(&fast, true)]);
        let rand_slow = model2.phase_cost(&[run(&slow, true)]);
        assert!(
            seq_slow.time_us > 1.5 * seq_fast.time_us,
            "seq slow {} vs fast {}",
            seq_slow.time_us,
            seq_fast.time_us
        );
        assert!(
            rand_slow.time_us > 4.0 * rand_fast.time_us,
            "rand slow {} vs fast {}",
            rand_slow.time_us,
            rand_fast.time_us
        );
    }

    #[test]
    fn slow_controller_congests_earlier() {
        // Many threads hammering one node: congestion binds, and the bound
        // is deeper when the hammered node is a slow one.
        let spec = MachineSpec {
            nodes: 4,
            cores_per_node: 4,
            node_tiers: vec![
                crate::TierClass::Fast,
                crate::TierClass::Fast,
                crate::TierClass::Slow,
                crate::TierClass::Slow,
            ],
            ..MachineSpec::test2()
        };
        let m = Machine::new(spec);
        let on_fast = m.alloc_array::<u64>("f", 1 << 22, AllocPolicy::OnNode(1));
        let on_slow = m.alloc_array::<u64>("s", 1 << 22, AllocPolicy::OnNode(2));
        let run = |arr: &crate::NumaArray<u64>| {
            let mut model = CostModel::new(&m, CostConfig::default());
            let threads: Vec<_> = (0..8)
                .map(|core| {
                    stats_for(&m, core, |ctx| {
                        for i in 0..50_000 {
                            arr.get(ctx, i);
                        }
                    })
                })
                .collect();
            model.phase_cost(&threads)
        };
        let cf = run(&on_fast);
        let cs = run(&on_slow);
        assert!(cs.dram_bound_us > 2.0 * cf.dram_bound_us);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = PhaseCost {
            time_us: 1.0,
            per_thread_us: vec![1.0],
            count_local: 5,
            ..Default::default()
        };
        let b = PhaseCost {
            time_us: 2.0,
            per_thread_us: vec![2.0, 3.0],
            count_remote: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.time_us, 3.0);
        assert_eq!(a.per_thread_us, vec![3.0, 3.0]);
        assert_eq!(a.count_local, 5);
        assert_eq!(a.count_remote, 7);
    }
}
