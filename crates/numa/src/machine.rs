//! The simulated machine: topology + allocation registry + memory accounting.
//!
//! A [`Machine`] is a cheaply clonable handle (an `Arc` internally). Arrays
//! allocated from it register their size and placement, so the experiment
//! harness can report peak memory consumption per system and per tag exactly
//! as the paper's Table 5 does (total, with the agent-replica share shown
//! separately).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::array::{Atom, NumaArray, NumaAtomicArray};
use crate::policy::{AllocPolicy, Placement};
use crate::topology::{MachineSpec, NumaTopology};

/// Identifier of one allocation within a machine; indexes per-array access
/// statistics.
pub type AllocId = u32;

/// Live/peak byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemUsage {
    /// Bytes currently allocated.
    pub live: u64,
    /// High-water mark of `live` since the last reset.
    pub peak: u64,
}

#[derive(Debug)]
pub(crate) struct AllocInfo {
    pub name: String,
    pub bytes: u64,
    pub live: bool,
}

pub(crate) struct MachineInner {
    spec: MachineSpec,
    topology: NumaTopology,
    pub(crate) allocs: Mutex<Vec<AllocInfo>>,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    /// Per-tag (live, peak) bytes; the tag is the allocation name's prefix up
    /// to the first `'/'`, so `"agents/out"` and `"agents/in"` share a tag.
    tags: Mutex<HashMap<String, MemUsage>>,
}

/// Handle to a simulated NUMA machine. Clones share all state.
#[derive(Clone)]
pub struct Machine {
    pub(crate) inner: Arc<MachineInner>,
}

impl Machine {
    /// Build a machine from a spec.
    pub fn new(spec: MachineSpec) -> Self {
        let topology = spec.topology();
        Machine {
            inner: Arc::new(MachineInner {
                spec,
                topology,
                allocs: Mutex::new(Vec::new()),
                live_bytes: AtomicU64::new(0),
                peak_bytes: AtomicU64::new(0),
                tags: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The machine's topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.inner.topology
    }

    /// The spec the machine was built from.
    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    /// Allocate a zero-initialized plain (read-mostly) array.
    pub fn alloc_array<T: Copy + Default>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> NumaArray<T> {
        self.alloc_array_with(name, len, policy, |_| T::default())
    }

    /// Allocate a plain array initialized element-by-element. Initialization
    /// models the construction stage and is not charged to simulated time.
    pub fn alloc_array_with<T: Copy>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        mut init: impl FnMut(usize) -> T,
    ) -> NumaArray<T> {
        let (id, placement) = self.register::<T>(name, len, &policy);
        let data: Box<[T]> = (0..len).map(&mut init).collect();
        NumaArray::new(self.clone(), id, placement, data)
    }

    /// Allocate an atomic array (mutable shared data such as the `next`
    /// application-data array or runtime-state bitmaps), zero-initialized.
    pub fn alloc_atomic<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> NumaAtomicArray<T> {
        self.alloc_atomic_with(name, len, policy, |_| T::zero())
    }

    /// Allocate an atomic array initialized element-by-element.
    pub fn alloc_atomic_with<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        mut init: impl FnMut(usize) -> T,
    ) -> NumaAtomicArray<T> {
        let (id, placement) = self.register::<T>(name, len, &policy);
        let data: Box<[T::Repr]> = (0..len).map(|i| T::new_atomic(init(i))).collect();
        NumaAtomicArray::new(self.clone(), id, placement, data)
    }

    fn register<T>(&self, name: &str, len: usize, policy: &AllocPolicy) -> (AllocId, Placement) {
        let elem = std::mem::size_of::<T>();
        let placement = Placement::resolve_paged(
            policy,
            len,
            elem.max(1),
            self.topology().num_nodes(),
            self.inner.spec.page_bytes,
        );
        let bytes = (len * elem) as u64;
        let mut allocs = self.inner.allocs.lock();
        let id = allocs.len() as AllocId;
        allocs.push(AllocInfo {
            name: name.to_string(),
            bytes,
            live: true,
        });
        drop(allocs);
        self.on_alloc(name, bytes);
        (id, placement)
    }

    pub(crate) fn on_alloc(&self, name: &str, bytes: u64) {
        let live = self.inner.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak_bytes.fetch_max(live, Ordering::Relaxed);
        let tag = Self::tag_of(name);
        let mut tags = self.inner.tags.lock();
        let u = tags.entry(tag).or_default();
        u.live += bytes;
        u.peak = u.peak.max(u.live);
    }

    pub(crate) fn on_free(&self, id: AllocId, name: &str, bytes: u64) {
        self.inner.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(info) = self.inner.allocs.lock().get_mut(id as usize) {
            info.live = false;
        }
        let tag = Self::tag_of(name);
        if let Some(u) = self.inner.tags.lock().get_mut(&tag) {
            u.live = u.live.saturating_sub(bytes);
        }
    }

    fn tag_of(name: &str) -> String {
        name.split('/').next().unwrap_or(name).to_string()
    }

    /// Total live and peak bytes across all allocations.
    pub fn mem_usage(&self) -> MemUsage {
        MemUsage {
            live: self.inner.live_bytes.load(Ordering::Relaxed),
            peak: self.inner.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Live/peak bytes of one tag (allocation-name prefix before `'/'`).
    pub fn tag_usage(&self, tag: &str) -> MemUsage {
        self.inner.tags.lock().get(tag).copied().unwrap_or_default()
    }

    /// All tags with their usage, sorted by tag name.
    pub fn tag_usages(&self) -> Vec<(String, MemUsage)> {
        let mut v: Vec<_> = self
            .inner
            .tags
            .lock()
            .iter()
            .map(|(k, u)| (k.clone(), *u))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Reset the peak trackers to the current live values (used between
    /// experiment runs that share a machine).
    pub fn reset_peak(&self) {
        let live = self.inner.live_bytes.load(Ordering::Relaxed);
        self.inner.peak_bytes.store(live, Ordering::Relaxed);
        for u in self.inner.tags.lock().values_mut() {
            u.peak = u.live;
        }
    }

    /// Number of allocations ever registered (live or freed).
    pub fn num_allocs(&self) -> usize {
        self.inner.allocs.lock().len()
    }

    /// Size in bytes of an allocation (live or freed).
    pub fn alloc_bytes(&self, id: AllocId) -> u64 {
        self.inner.allocs.lock()[id as usize].bytes
    }

    /// Name of an allocation.
    pub fn alloc_name(&self, id: AllocId) -> String {
        self.inner.allocs.lock()[id as usize].name.clone()
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("spec", &self.inner.spec.name)
            .field("nodes", &self.topology().num_nodes())
            .field("cores", &self.topology().total_cores())
            .field("mem", &self.mem_usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineSpec;

    #[test]
    fn alloc_tracks_live_and_peak() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1000, AllocPolicy::Interleaved);
        assert_eq!(m.mem_usage().live, 8000);
        let b = m.alloc_array::<u32>("b", 1000, AllocPolicy::Centralized);
        assert_eq!(m.mem_usage().live, 12000);
        assert_eq!(m.mem_usage().peak, 12000);
        drop(a);
        assert_eq!(m.mem_usage().live, 4000);
        assert_eq!(m.mem_usage().peak, 12000);
        drop(b);
        assert_eq!(m.mem_usage().live, 0);
    }

    #[test]
    fn tag_accounting_groups_by_prefix() {
        let m = Machine::new(MachineSpec::test2());
        let _a = m.alloc_array::<u64>("agents/out", 100, AllocPolicy::OnNode(0));
        let _b = m.alloc_array::<u64>("agents/in", 100, AllocPolicy::OnNode(1));
        let _c = m.alloc_array::<u64>("topo/vertices", 100, AllocPolicy::OnNode(0));
        assert_eq!(m.tag_usage("agents").live, 1600);
        assert_eq!(m.tag_usage("topo").live, 800);
        assert_eq!(m.tag_usage("missing"), MemUsage::default());
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let m = Machine::new(MachineSpec::test2());
        {
            let _big = m.alloc_array::<u64>("big", 10_000, AllocPolicy::Interleaved);
        }
        assert_eq!(m.mem_usage().peak, 80_000);
        m.reset_peak();
        assert_eq!(m.mem_usage().peak, 0);
    }

    #[test]
    fn alloc_with_initializer() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array_with("sq", 10, AllocPolicy::OnNode(0), |i| (i * i) as u64);
        assert_eq!(a.raw()[3], 9);
        assert_eq!(m.alloc_name(0), "sq");
        assert_eq!(m.alloc_bytes(0), 80);
    }
}
