//! The simulated machine: topology + allocation registry + memory accounting.
//!
//! A [`Machine`] is a cheaply clonable handle (an `Arc` internally). Arrays
//! allocated from it register their size and placement, so the experiment
//! harness can report peak memory consumption per system and per tag exactly
//! as the paper's Table 5 does (total, with the agent-replica share shown
//! separately).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use polymer_faults::{panic_with, FaultPlan, PolymerError, PolymerResult};

use crate::array::{Atom, NumaArray, NumaAtomicArray};
use crate::policy::{AllocPolicy, PageMap, Placement};
use crate::tables::TierClass;
use crate::topology::{MachineSpec, NodeId, NumaTopology};

/// Identifier of one allocation within a machine; indexes per-array access
/// statistics.
pub type AllocId = u32;

/// What to do when a placement would overfill a capacity-limited node
/// (spec [`MachineSpec::node_capacity_bytes`] or a fault-plan clamp).
///
/// Real `numa_alloc_onnode` falls back to other nodes under pressure unless
/// strict binding is requested; these variants model that spectrum so
/// Table-5-style reports can show graceful degradation instead of an OOM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Strict binding: return [`PolymerError::NodeCapacityExceeded`] instead
    /// of placing any page off its requested node.
    Fail,
    /// Place overflowing pages on the nearest node (by hop distance, ties
    /// broken by node id) that still has room. Mirrors the kernel's zone
    /// fallback order.
    #[default]
    NearestRemote,
    /// Round-robin overflowing pages across all nodes with room, trading
    /// locality for balance.
    Interleave,
    /// Tiered machines: overflow from a full fast node *demotes* to the
    /// nearest slow node with room (ties broken by node id) instead of
    /// spilling sideways within the fast tier; when no slow node has room
    /// (or the machine is single-tier) it falls back to
    /// [`SpillPolicy::NearestRemote`] order. This is the default pressure
    /// valve of the tiered model.
    Demote,
}

/// Result of charging one allocation's pages against node capacities.
struct ChargeOutcome {
    placement: Placement,
    node_bytes: Vec<u64>,
    spilled: u64,
    spilled_by_node: Vec<u64>,
    demoted_by_node: Vec<u64>,
}

/// Live/peak byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemUsage {
    /// Bytes currently allocated.
    pub live: u64,
    /// High-water mark of `live` since the last reset.
    pub peak: u64,
}

#[derive(Debug)]
pub(crate) struct AllocInfo {
    pub name: String,
    pub bytes: u64,
    pub live: bool,
    /// Page-granular bytes charged to each node by this allocation, so a
    /// free returns exactly what was taken even after spilling — and, on
    /// tiered machines, even after page migrations.
    pub node_bytes: Vec<u64>,
    /// The shared mutable page→node map, present on tiered machines (every
    /// allocation is registered in the explicit paged form there so its
    /// pages can migrate between tiers) and on spilled allocations.
    pub page_map: Option<Arc<PageMap>>,
    /// Page size of the allocation's placement, in bytes.
    pub page_bytes: u64,
}

pub(crate) struct MachineInner {
    spec: MachineSpec,
    topology: NumaTopology,
    pub(crate) allocs: Mutex<Vec<AllocInfo>>,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    /// Per-tag (live, peak) bytes; the tag is the allocation name's prefix up
    /// to the first `'/'`, so `"agents/out"` and `"agents/in"` share a tag.
    tags: Mutex<HashMap<String, MemUsage>>,
    /// Page-granular live bytes per node (index = NodeId).
    node_live: Mutex<Vec<u64>>,
    /// Pages that landed off their requested node due to capacity pressure.
    spilled_pages: AtomicU64,
    /// Effective per-node capacity: the spec's (per-tier) limit tightened by
    /// any fault-plan clamp. `None` = unbounded node.
    node_capacity: Vec<Option<u64>>,
    /// Pages that landed on node `n` while off their requested node
    /// (cumulative, alloc-time spills only).
    spilled_by_node: Mutex<Vec<u64>>,
    /// Pages demoted to slow node `n` (alloc-time `Demote` overflow plus
    /// runtime fast→slow migrations). Cumulative.
    demoted_by_node: Mutex<Vec<u64>>,
    /// Pages promoted to fast node `n` (runtime slow→fast migrations).
    /// Cumulative.
    promoted_by_node: Mutex<Vec<u64>>,
    /// Allocation-name tags (prefix before `'/'`) routed to the slow tier
    /// at allocation time — the out-of-core mode's edge-streaming hook.
    slow_tags: Mutex<Vec<String>>,
    /// Promotion policy every new executor on this machine attaches
    /// automatically ([`crate::SimExecutor`] reads it at construction), so
    /// engines inherit tiering without any per-engine logic.
    tier_policy: Mutex<Option<crate::tier::TierPolicy>>,
    spill_policy: SpillPolicy,
    plan: FaultPlan,
}

/// Handle to a simulated NUMA machine. Clones share all state.
#[derive(Clone)]
pub struct Machine {
    pub(crate) inner: Arc<MachineInner>,
}

impl Machine {
    /// Build a machine from a spec, with the default spill policy and no
    /// injected faults.
    pub fn new(spec: MachineSpec) -> Self {
        Self::with_faults(spec, SpillPolicy::default(), FaultPlan::default())
    }

    /// Build a machine with an explicit spill policy and fault-injection
    /// plan. The effective per-node capacity is the tighter of the spec's
    /// [`MachineSpec::node_capacity_bytes`] and the plan's capacity clamp.
    pub fn with_faults(spec: MachineSpec, spill_policy: SpillPolicy, plan: FaultPlan) -> Self {
        let topology = spec.topology();
        let clamp = plan.node_capacity_clamp();
        let node_capacity = (0..topology.num_nodes())
            .map(|n| match (spec.capacity_of(n), clamp) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            })
            .collect();
        let nodes = topology.num_nodes();
        Machine {
            inner: Arc::new(MachineInner {
                spec,
                topology,
                allocs: Mutex::new(Vec::new()),
                live_bytes: AtomicU64::new(0),
                peak_bytes: AtomicU64::new(0),
                tags: Mutex::new(HashMap::new()),
                node_live: Mutex::new(vec![0; nodes]),
                spilled_pages: AtomicU64::new(0),
                node_capacity,
                spilled_by_node: Mutex::new(vec![0; nodes]),
                demoted_by_node: Mutex::new(vec![0; nodes]),
                promoted_by_node: Mutex::new(vec![0; nodes]),
                slow_tags: Mutex::new(Vec::new()),
                tier_policy: Mutex::new(None),
                spill_policy,
                plan,
            }),
        }
    }

    /// The machine's topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.inner.topology
    }

    /// The spec the machine was built from.
    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    /// The fault-injection plan this machine honors.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// The policy applied when a node's capacity would be exceeded.
    pub fn spill_policy(&self) -> SpillPolicy {
        self.inner.spill_policy
    }

    /// Effective uniform per-node capacity in bytes (the spec's legacy
    /// `node_capacity_bytes` tightened by any fault-plan clamp); `None`
    /// means unbounded. Tiered machines resolve per-tier capacities through
    /// [`Machine::capacity_of_node`] instead.
    pub fn node_capacity_bytes(&self) -> Option<u64> {
        match (
            self.inner.spec.node_capacity_bytes,
            self.inner.plan.node_capacity_clamp(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Effective capacity of one node in bytes, after per-tier resolution
    /// and any fault-plan clamp; `None` means unbounded.
    pub fn capacity_of_node(&self, node: NodeId) -> Option<u64> {
        self.inner.node_capacity[node]
    }

    /// Page-granular live bytes currently charged to each node.
    pub fn node_live_bytes(&self) -> Vec<u64> {
        self.inner.node_live.lock().clone()
    }

    /// Number of pages that landed off their requested node because of
    /// capacity pressure since the machine was built.
    pub fn spilled_pages(&self) -> u64 {
        self.inner.spilled_pages.load(Ordering::Relaxed)
    }

    /// Pages that landed on each node while off their requested node
    /// (cumulative alloc-time spills, indexed by landing node).
    pub fn spilled_pages_by_node(&self) -> Vec<u64> {
        self.inner.spilled_by_node.lock().clone()
    }

    /// Pages demoted to each slow node — alloc-time `Demote` overflow plus
    /// runtime fast→slow migrations. Cumulative, indexed by landing node.
    pub fn demoted_pages_by_node(&self) -> Vec<u64> {
        self.inner.demoted_by_node.lock().clone()
    }

    /// Pages promoted to each fast node by runtime slow→fast migrations.
    /// Cumulative, indexed by landing node.
    pub fn promoted_pages_by_node(&self) -> Vec<u64> {
        self.inner.promoted_by_node.lock().clone()
    }

    /// True when any node of this machine sits in the slow tier.
    pub fn is_tiered(&self) -> bool {
        self.inner.topology.is_tiered()
    }

    /// Route allocations whose tag (name prefix before `'/'`) is in `tags`
    /// to the slow tier, pages interleaved across the slow nodes. This is
    /// the out-of-core mode's hook: registering `"topo"` before loading a
    /// graph streams the edge arrays from the capacity tier while vertex
    /// state keeps the fast tier. The wildcard tag `"*"` routes every
    /// allocation (the slow-only ablation). No effect on single-tier
    /// machines. Affects only allocations made after the call.
    pub fn route_tags_to_slow(&self, tags: &[&str]) {
        let mut slow = self.inner.slow_tags.lock();
        for t in tags {
            if !slow.iter().any(|s| s == t) {
                slow.push(t.to_string());
            }
        }
    }

    /// The tags currently routed to the slow tier.
    pub fn slow_routed_tags(&self) -> Vec<String> {
        self.inner.slow_tags.lock().clone()
    }

    /// Set the promotion policy every subsequently created executor on this
    /// machine attaches automatically (a fresh [`crate::TierRuntime`] each).
    /// `None` (the default) freezes placements — static tiering. Ignored by
    /// executors on single-tier machines.
    pub fn set_tier_policy(&self, policy: Option<crate::tier::TierPolicy>) {
        *self.inner.tier_policy.lock() = policy;
    }

    /// The promotion policy configured via [`Machine::set_tier_policy`].
    pub fn tier_policy(&self) -> Option<crate::tier::TierPolicy> {
        *self.inner.tier_policy.lock()
    }

    /// Allocate a zero-initialized plain (read-mostly) array. Panics on
    /// capacity exhaustion or injected faults; use
    /// [`Machine::try_alloc_array`] on fallible paths.
    pub fn alloc_array<T: Copy + Default>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> NumaArray<T> {
        self.try_alloc_array(name, len, policy)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// Allocate a plain array initialized element-by-element. Initialization
    /// models the construction stage and is not charged to simulated time.
    pub fn alloc_array_with<T: Copy>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        init: impl FnMut(usize) -> T,
    ) -> NumaArray<T> {
        self.try_alloc_array_with(name, len, policy, init)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// Allocate an atomic array (mutable shared data such as the `next`
    /// application-data array or runtime-state bitmaps), zero-initialized.
    pub fn alloc_atomic<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> NumaAtomicArray<T> {
        self.try_alloc_atomic(name, len, policy)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// Allocate an atomic array initialized element-by-element.
    pub fn alloc_atomic_with<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        init: impl FnMut(usize) -> T,
    ) -> NumaAtomicArray<T> {
        self.try_alloc_atomic_with(name, len, policy, init)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// Fallible counterpart of [`Machine::alloc_array`].
    pub fn try_alloc_array<T: Copy + Default>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> PolymerResult<NumaArray<T>> {
        self.try_alloc_array_with(name, len, policy, |_| T::default())
    }

    /// Fallible counterpart of [`Machine::alloc_array_with`]. Returns
    /// [`PolymerError::AllocFailed`] when the fault plan fails this
    /// allocation, or [`PolymerError::NodeCapacityExceeded`] when capacity
    /// accounting cannot place every page.
    pub fn try_alloc_array_with<T: Copy>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        mut init: impl FnMut(usize) -> T,
    ) -> PolymerResult<NumaArray<T>> {
        let (id, placement) = self.try_register::<T>(name, len, &policy)?;
        let data: Box<[T]> = (0..len).map(&mut init).collect();
        Ok(NumaArray::new(self.clone(), id, placement, data))
    }

    /// Fallible counterpart of [`Machine::alloc_atomic`].
    pub fn try_alloc_atomic<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
    ) -> PolymerResult<NumaAtomicArray<T>> {
        self.try_alloc_atomic_with(name, len, policy, |_| T::zero())
    }

    /// Fallible counterpart of [`Machine::alloc_atomic_with`].
    pub fn try_alloc_atomic_with<T: Atom>(
        &self,
        name: &str,
        len: usize,
        policy: AllocPolicy,
        mut init: impl FnMut(usize) -> T,
    ) -> PolymerResult<NumaAtomicArray<T>> {
        let (id, placement) = self.try_register::<T>(name, len, &policy)?;
        let data: Box<[T::Repr]> = (0..len).map(|i| T::new_atomic(init(i))).collect();
        Ok(NumaAtomicArray::new(self.clone(), id, placement, data))
    }

    fn try_register<T>(
        &self,
        name: &str,
        len: usize,
        policy: &AllocPolicy,
    ) -> PolymerResult<(AllocId, Placement)> {
        if self.inner.plan.should_fail_alloc() {
            return Err(PolymerError::AllocFailed {
                name: name.to_string(),
                index: self.inner.plan.failed_alloc_index(),
            });
        }
        let elem = std::mem::size_of::<T>();
        let mut placement = Placement::resolve_paged(
            policy,
            len,
            elem.max(1),
            self.topology().num_nodes(),
            self.inner.spec.page_bytes,
        );
        let bytes = (len * elem) as u64;
        let tiered = self.inner.topology.is_tiered();
        if tiered {
            // Out-of-core routing: slow-tagged allocations interleave their
            // pages across the slow nodes regardless of requested policy
            // (`"*"` routes every tag — the slow-only ablation).
            let tag = Self::tag_of(name);
            let routed_slow = self
                .inner
                .slow_tags
                .lock()
                .iter()
                .any(|t| t == "*" || *t == tag);
            if routed_slow {
                let slow: Vec<NodeId> = self.inner.spec.slow_nodes();
                if !slow.is_empty() {
                    let pages = placement.num_pages(bytes as usize);
                    let map: Vec<u8> = (0..pages).map(|p| slow[p % slow.len()] as u8).collect();
                    placement =
                        Placement::from_page_map(map, placement.page_bytes().trailing_zeros());
                }
            } else if matches!(policy, AllocPolicy::Interleaved) {
                // Tier preference: node-agnostic interleaving spreads across
                // the fast prefix only — the slow tier is reached through
                // tag routing, demotion spill, or an explicit node request.
                let fast = self.inner.spec.fast_nodes().len();
                placement = Placement::resolve_paged(
                    policy,
                    len,
                    elem.max(1),
                    fast,
                    self.inner.spec.page_bytes,
                );
            }
            // Tiered machines register everything in the explicit paged
            // form so the promotion/demotion layer can migrate pages later.
            placement = placement.to_paged(bytes as usize);
        }
        let outcome = self.charge_nodes(name, bytes, placement)?;
        let ChargeOutcome {
            placement,
            node_bytes,
            spilled,
            spilled_by_node,
            demoted_by_node,
        } = outcome;
        if spilled > 0 {
            self.inner
                .spilled_pages
                .fetch_add(spilled, Ordering::Relaxed);
            let mut by = self.inner.spilled_by_node.lock();
            for (n, c) in spilled_by_node.iter().enumerate() {
                by[n] += c;
            }
        }
        if demoted_by_node.iter().any(|&c| c > 0) {
            let mut by = self.inner.demoted_by_node.lock();
            for (n, c) in demoted_by_node.iter().enumerate() {
                by[n] += c;
            }
        }
        let page_map = placement.page_map().cloned();
        let mut allocs = self.inner.allocs.lock();
        let id = allocs.len() as AllocId;
        allocs.push(AllocInfo {
            name: name.to_string(),
            bytes,
            live: true,
            node_bytes,
            page_map,
            page_bytes: placement.page_bytes() as u64,
        });
        drop(allocs);
        self.on_alloc(name, bytes);
        Ok((id, placement))
    }

    /// Charge an allocation's pages against per-node capacity, spilling pages
    /// to other nodes per the spill policy when the requested node is full.
    /// All-or-nothing: on error, no page is charged.
    fn charge_nodes(
        &self,
        name: &str,
        bytes: u64,
        placement: Placement,
    ) -> PolymerResult<ChargeOutcome> {
        let nodes = self.topology().num_nodes();
        let page_bytes = placement.page_bytes() as u64;
        let wanted = placement.page_nodes(bytes as usize);
        let mut charged = vec![0u64; nodes];
        let mut node_live = self.inner.node_live.lock();

        let caps = &self.inner.node_capacity;
        if caps.iter().all(|c| c.is_none()) {
            for &n in &wanted {
                charged[n] += page_bytes;
                node_live[n] += page_bytes;
            }
            return Ok(ChargeOutcome {
                placement,
                node_bytes: charged,
                spilled: 0,
                spilled_by_node: vec![0; nodes],
                demoted_by_node: vec![0; nodes],
            });
        }

        // Place page by page against a working copy so a failure midway
        // leaves the shared accounting untouched.
        let mut work = node_live.clone();
        let mut map = Vec::with_capacity(wanted.len());
        let mut spilled = 0u64;
        let mut spilled_by_node = vec![0u64; nodes];
        let mut demoted_by_node = vec![0u64; nodes];
        let mut rr = 0usize;
        for &want in &wanted {
            let fits = |w: &[u64], n: NodeId| match caps[n] {
                Some(cap) => w[n] + page_bytes <= cap,
                None => true,
            };
            let chosen = if fits(&work, want) {
                Some(want)
            } else {
                match self.inner.spill_policy {
                    SpillPolicy::Fail => None,
                    SpillPolicy::NearestRemote => {
                        let mut cands: Vec<NodeId> = (0..nodes).filter(|&n| n != want).collect();
                        cands.sort_by_key(|&n| (self.topology().hops(want, n), n));
                        cands.into_iter().find(|&n| fits(&work, n))
                    }
                    SpillPolicy::Interleave => {
                        let mut found = None;
                        for k in 0..nodes {
                            let n = (rr + k) % nodes;
                            if fits(&work, n) {
                                rr = (n + 1) % nodes;
                                found = Some(n);
                                break;
                            }
                        }
                        found
                    }
                    SpillPolicy::Demote => {
                        // Prefer the nearest slow node with room; fall back
                        // to nearest-remote order over all nodes.
                        let topo = self.topology();
                        let mut slow: Vec<NodeId> = (0..nodes)
                            .filter(|&n| n != want && topo.tier_of(n).is_slow())
                            .collect();
                        slow.sort_by_key(|&n| (topo.hops(want, n), n));
                        slow.into_iter().find(|&n| fits(&work, n)).or_else(|| {
                            let mut cands: Vec<NodeId> =
                                (0..nodes).filter(|&n| n != want).collect();
                            cands.sort_by_key(|&n| (topo.hops(want, n), n));
                            cands.into_iter().find(|&n| fits(&work, n))
                        })
                    }
                }
            };
            let Some(n) = chosen else {
                return Err(PolymerError::NodeCapacityExceeded {
                    node: want,
                    requested_bytes: bytes,
                    capacity_bytes: caps[want].unwrap_or(u64::MAX),
                    name: name.to_string(),
                });
            };
            work[n] += page_bytes;
            charged[n] += page_bytes;
            if n != want {
                spilled += 1;
                spilled_by_node[n] += 1;
                let topo = self.topology();
                if topo.tier_of(n).is_slow() && !topo.tier_of(want).is_slow() {
                    demoted_by_node[n] += 1;
                }
            }
            map.push(n as u8);
        }
        *node_live = work;
        let placement = if spilled > 0 {
            Placement::from_page_map(map, page_bytes.trailing_zeros())
        } else {
            placement
        };
        Ok(ChargeOutcome {
            placement,
            node_bytes: charged,
            spilled,
            spilled_by_node,
            demoted_by_node,
        })
    }

    /// Move one page of a live allocation to a new home node, respecting the
    /// target node's capacity. Returns the page's previous home on success
    /// (`None` when the page already lives on `to`, the target is full, or
    /// the allocation is not migratable). Promotion (slow→fast) and demotion
    /// (fast→slow) counters are updated; the *caller* — the promotion policy
    /// layer in [`crate::tier`] — is responsible for charging the migration
    /// as memory traffic so tiering overhead stays visible in `PhaseCost`.
    ///
    /// Only called between phases: the shared page map must not change while
    /// a phase's accesses are being recorded.
    pub fn migrate_page(&self, id: AllocId, page: usize, to: NodeId) -> Option<NodeId> {
        let (map, page_bytes) = {
            let allocs = self.inner.allocs.lock();
            let info = allocs.get(id as usize)?;
            if !info.live {
                return None;
            }
            (info.page_map.clone()?, info.page_bytes)
        };
        if page >= map.len() || to >= self.topology().num_nodes() {
            return None;
        }
        let from = map.get(page);
        if from == to {
            return None;
        }
        {
            let mut node_live = self.inner.node_live.lock();
            if let Some(cap) = self.inner.node_capacity[to] {
                if node_live[to] + page_bytes > cap {
                    return None;
                }
            }
            node_live[from] = node_live[from].saturating_sub(page_bytes);
            node_live[to] += page_bytes;
        }
        map.set(page, to);
        {
            let mut allocs = self.inner.allocs.lock();
            let info = &mut allocs[id as usize];
            info.node_bytes[from] = info.node_bytes[from].saturating_sub(page_bytes);
            info.node_bytes[to] += page_bytes;
        }
        let topo = self.topology();
        let (ft, tt) = (topo.tier_of(from), topo.tier_of(to));
        if ft.is_slow() && tt == TierClass::Fast {
            self.inner.promoted_by_node.lock()[to] += 1;
        } else if ft == TierClass::Fast && tt.is_slow() {
            self.inner.demoted_by_node.lock()[to] += 1;
        }
        Some(from)
    }

    /// The shared page map and page size of a live allocation, when it is in
    /// the migratable explicit-paged form (always true on tiered machines).
    pub fn page_map_of(&self, id: AllocId) -> Option<(Arc<PageMap>, u64)> {
        let allocs = self.inner.allocs.lock();
        let info = allocs.get(id as usize)?;
        if !info.live {
            return None;
        }
        Some((info.page_map.clone()?, info.page_bytes))
    }

    pub(crate) fn on_alloc(&self, name: &str, bytes: u64) {
        let live = self.inner.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak_bytes.fetch_max(live, Ordering::Relaxed);
        let tag = Self::tag_of(name);
        let mut tags = self.inner.tags.lock();
        let u = tags.entry(tag).or_default();
        u.live += bytes;
        u.peak = u.peak.max(u.live);
    }

    pub(crate) fn on_free(&self, id: AllocId, name: &str, bytes: u64) {
        self.inner.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
        let mut freed_nodes = Vec::new();
        if let Some(info) = self.inner.allocs.lock().get_mut(id as usize) {
            info.live = false;
            freed_nodes = std::mem::take(&mut info.node_bytes);
        }
        if !freed_nodes.is_empty() {
            let mut node_live = self.inner.node_live.lock();
            for (n, c) in freed_nodes.into_iter().enumerate() {
                node_live[n] = node_live[n].saturating_sub(c);
            }
        }
        let tag = Self::tag_of(name);
        if let Some(u) = self.inner.tags.lock().get_mut(&tag) {
            u.live = u.live.saturating_sub(bytes);
        }
    }

    fn tag_of(name: &str) -> String {
        name.split('/').next().unwrap_or(name).to_string()
    }

    /// Total live and peak bytes across all allocations.
    pub fn mem_usage(&self) -> MemUsage {
        MemUsage {
            live: self.inner.live_bytes.load(Ordering::Relaxed),
            peak: self.inner.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Live/peak bytes of one tag (allocation-name prefix before `'/'`).
    pub fn tag_usage(&self, tag: &str) -> MemUsage {
        self.inner.tags.lock().get(tag).copied().unwrap_or_default()
    }

    /// All tags with their usage, sorted by tag name.
    pub fn tag_usages(&self) -> Vec<(String, MemUsage)> {
        let mut v: Vec<_> = self
            .inner
            .tags
            .lock()
            .iter()
            .map(|(k, u)| (k.clone(), *u))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Reset the peak trackers to the current live values (used between
    /// experiment runs that share a machine).
    pub fn reset_peak(&self) {
        let live = self.inner.live_bytes.load(Ordering::Relaxed);
        self.inner.peak_bytes.store(live, Ordering::Relaxed);
        for u in self.inner.tags.lock().values_mut() {
            u.peak = u.live;
        }
    }

    /// Number of allocations ever registered (live or freed).
    pub fn num_allocs(&self) -> usize {
        self.inner.allocs.lock().len()
    }

    /// Size in bytes of an allocation (live or freed).
    pub fn alloc_bytes(&self, id: AllocId) -> u64 {
        self.inner.allocs.lock()[id as usize].bytes
    }

    /// Name of an allocation.
    pub fn alloc_name(&self, id: AllocId) -> String {
        self.inner.allocs.lock()[id as usize].name.clone()
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("spec", &self.inner.spec.name)
            .field("nodes", &self.topology().num_nodes())
            .field("cores", &self.topology().total_cores())
            .field("mem", &self.mem_usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineSpec;

    #[test]
    fn alloc_tracks_live_and_peak() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1000, AllocPolicy::Interleaved);
        assert_eq!(m.mem_usage().live, 8000);
        let b = m.alloc_array::<u32>("b", 1000, AllocPolicy::Centralized);
        assert_eq!(m.mem_usage().live, 12000);
        assert_eq!(m.mem_usage().peak, 12000);
        drop(a);
        assert_eq!(m.mem_usage().live, 4000);
        assert_eq!(m.mem_usage().peak, 12000);
        drop(b);
        assert_eq!(m.mem_usage().live, 0);
    }

    #[test]
    fn tag_accounting_groups_by_prefix() {
        let m = Machine::new(MachineSpec::test2());
        let _a = m.alloc_array::<u64>("agents/out", 100, AllocPolicy::OnNode(0));
        let _b = m.alloc_array::<u64>("agents/in", 100, AllocPolicy::OnNode(1));
        let _c = m.alloc_array::<u64>("topo/vertices", 100, AllocPolicy::OnNode(0));
        assert_eq!(m.tag_usage("agents").live, 1600);
        assert_eq!(m.tag_usage("topo").live, 800);
        assert_eq!(m.tag_usage("missing"), MemUsage::default());
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let m = Machine::new(MachineSpec::test2());
        {
            let _big = m.alloc_array::<u64>("big", 10_000, AllocPolicy::Interleaved);
        }
        assert_eq!(m.mem_usage().peak, 80_000);
        m.reset_peak();
        assert_eq!(m.mem_usage().peak, 0);
    }

    #[test]
    fn alloc_with_initializer() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array_with("sq", 10, AllocPolicy::OnNode(0), |i| (i * i) as u64);
        assert_eq!(a.raw()[3], 9);
        assert_eq!(m.alloc_name(0), "sq");
        assert_eq!(m.alloc_bytes(0), 80);
    }

    use crate::topology::PAGE_SIZE;
    use polymer_faults::{FaultPlan, PolymerError};

    const PAGE: u64 = PAGE_SIZE as u64;

    fn capped(pages: u64, spill: SpillPolicy) -> Machine {
        Machine::with_faults(
            MachineSpec::test2().with_node_capacity(pages * PAGE),
            spill,
            FaultPlan::default(),
        )
    }

    #[test]
    fn fail_policy_rejects_overfull_node() {
        let m = capped(2, SpillPolicy::Fail);
        // 3 pages requested on node 0 against a 2-page cap.
        let err = m
            .try_alloc_array::<u8>("big", 3 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap_err();
        match err {
            PolymerError::NodeCapacityExceeded {
                node,
                capacity_bytes,
                ..
            } => {
                assert_eq!(node, 0);
                assert_eq!(capacity_bytes, 2 * PAGE);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // All-or-nothing: the failed allocation charged no node.
        assert_eq!(m.node_live_bytes(), vec![0, 0]);
        assert_eq!(m.spilled_pages(), 0);
    }

    #[test]
    fn nearest_remote_spills_and_uncharges_on_free() {
        let m = capped(2, SpillPolicy::NearestRemote);
        let a = m
            .try_alloc_array::<u8>("a", 4 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap();
        // 2 pages fit on node 0; 2 spill to node 1.
        assert_eq!(m.spilled_pages(), 2);
        assert_eq!(m.node_live_bytes(), vec![2 * PAGE, 2 * PAGE]);
        assert_eq!(a.node_of(0), 0);
        assert_eq!(a.node_of((2 * PAGE) as usize), 1);
        assert_eq!(a.node_of((3 * PAGE) as usize), 1);
        drop(a);
        assert_eq!(m.node_live_bytes(), vec![0, 0]);
        // The spill counter is cumulative, not live.
        assert_eq!(m.spilled_pages(), 2);
    }

    #[test]
    fn spill_fails_when_no_node_has_room() {
        let m = capped(2, SpillPolicy::NearestRemote);
        // 5 pages cannot fit in 2 nodes × 2 pages.
        let err = m
            .try_alloc_array::<u8>("big", 5 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap_err();
        assert!(matches!(err, PolymerError::NodeCapacityExceeded { .. }));
        assert_eq!(m.node_live_bytes(), vec![0, 0]);
    }

    #[test]
    fn interleave_spreads_spilled_pages() {
        let spec = MachineSpec {
            nodes: 4,
            cores_per_node: 1,
            ..MachineSpec::test2()
        }
        .with_node_capacity(2 * PAGE);
        let m = Machine::with_faults(spec, SpillPolicy::Interleave, FaultPlan::default());
        // 6 pages on node 0: 2 fit, 4 interleave over the other nodes.
        let a = m
            .try_alloc_array::<u8>("a", 6 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap();
        assert_eq!(m.spilled_pages(), 4);
        let live = m.node_live_bytes();
        assert_eq!(live.iter().sum::<u64>(), 6 * PAGE);
        assert_eq!(live[0], 2 * PAGE);
        assert!(live[1..].iter().all(|&b| b <= 2 * PAGE));
        drop(a);
    }

    #[test]
    fn fault_plan_fails_nth_allocation() {
        let plan = FaultPlan::new().fail_nth_alloc(1);
        let m = Machine::with_faults(MachineSpec::test2(), SpillPolicy::default(), plan);
        let _a = m
            .try_alloc_array::<u64>("first", 16, AllocPolicy::Interleaved)
            .unwrap();
        let err = m
            .try_alloc_array::<u64>("second", 16, AllocPolicy::Interleaved)
            .unwrap_err();
        assert_eq!(
            err,
            PolymerError::AllocFailed {
                name: "second".to_string(),
                index: 1
            }
        );
        // Later allocations proceed normally.
        let _c = m
            .try_alloc_array::<u64>("third", 16, AllocPolicy::Interleaved)
            .unwrap();
    }

    #[test]
    fn capacity_clamp_comes_from_plan_or_spec() {
        let plan = FaultPlan::new().clamp_node_capacity(3 * PAGE);
        let spec = MachineSpec::test2().with_node_capacity(2 * PAGE);
        let m = Machine::with_faults(spec, SpillPolicy::Fail, plan.clone());
        assert_eq!(m.node_capacity_bytes(), Some(2 * PAGE));
        let m = Machine::with_faults(MachineSpec::test2(), SpillPolicy::Fail, plan);
        assert_eq!(m.node_capacity_bytes(), Some(3 * PAGE));
        let m = Machine::new(MachineSpec::test2());
        assert_eq!(m.node_capacity_bytes(), None);
    }

    #[test]
    fn demote_overflow_prefers_slow_nodes() {
        // test2_tiered: fast {0,1} capped at 2 pages, slow {2,3} unbounded.
        let spec = MachineSpec::test2_tiered().with_fast_capacity(2 * PAGE);
        let m = Machine::with_faults(spec, SpillPolicy::Demote, FaultPlan::default());
        let a = m
            .try_alloc_array::<u8>("a", 5 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap();
        // 2 pages fit on fast node 0; 3 demote to slow node 2 (nearest slow,
        // full mesh ties broken by id) — never sideways to fast node 1.
        assert_eq!(m.node_live_bytes(), vec![2 * PAGE, 0, 3 * PAGE, 0]);
        assert_eq!(m.spilled_pages(), 3);
        assert_eq!(m.spilled_pages_by_node(), vec![0, 0, 3, 0]);
        assert_eq!(m.demoted_pages_by_node(), vec![0, 0, 3, 0]);
        assert_eq!(a.node_of((3 * PAGE) as usize), 2);
        drop(a);
        assert_eq!(m.node_live_bytes(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn demote_falls_back_to_nearest_remote_when_slow_full() {
        let spec = MachineSpec::test2_tiered()
            .with_fast_capacity(2 * PAGE)
            .with_slow_capacity(PAGE);
        let m = Machine::with_faults(spec, SpillPolicy::Demote, FaultPlan::default());
        let _a = m
            .try_alloc_array::<u8>("a", 6 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap();
        // 2 on node 0, slow nodes take 1 each, remaining 2 fall back to the
        // nearest node with room: fast node 1.
        assert_eq!(m.node_live_bytes(), vec![2 * PAGE, 2 * PAGE, PAGE, PAGE]);
        assert_eq!(m.demoted_pages_by_node(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn demote_on_single_tier_machine_acts_like_nearest_remote() {
        let m = capped(2, SpillPolicy::Demote);
        let _a = m
            .try_alloc_array::<u8>("a", 4 * PAGE as usize, AllocPolicy::OnNode(0))
            .unwrap();
        assert_eq!(m.node_live_bytes(), vec![2 * PAGE, 2 * PAGE]);
        assert_eq!(m.demoted_pages_by_node(), vec![0, 0]);
    }

    #[test]
    fn tiered_machine_registers_migratable_placements() {
        let m = Machine::new(MachineSpec::test2_tiered());
        let a = m.alloc_array::<u8>("a", 4 * PAGE as usize, AllocPolicy::OnNode(0));
        let (map, pb) = m.page_map_of(0).expect("tiered alloc is paged");
        assert_eq!(map.len(), 4);
        assert_eq!(pb, PAGE);
        assert_eq!(a.node_of(0), 0);
        // Single-tier machines keep the compact placement forms.
        let m1 = Machine::new(MachineSpec::test2());
        let _b = m1.alloc_array::<u8>("b", 4 * PAGE as usize, AllocPolicy::OnNode(0));
        assert!(m1.page_map_of(0).is_none());
    }

    #[test]
    fn migrate_page_moves_accounting_and_is_visible_to_arrays() {
        let m = Machine::new(MachineSpec::test2_tiered());
        let a = m.alloc_array::<u8>("a", 4 * PAGE as usize, AllocPolicy::OnNode(2));
        assert_eq!(m.node_live_bytes(), vec![0, 0, 4 * PAGE, 0]);
        // Promote page 1 to fast node 0: the array clone sees the move.
        assert_eq!(m.migrate_page(0, 1, 0), Some(2));
        assert_eq!(a.node_of(PAGE as usize), 0);
        assert_eq!(a.node_of(0), 2);
        assert_eq!(m.node_live_bytes(), vec![PAGE, 0, 3 * PAGE, 0]);
        assert_eq!(m.promoted_pages_by_node(), vec![1, 0, 0, 0]);
        // Demote it back.
        assert_eq!(m.migrate_page(0, 1, 3), Some(0));
        assert_eq!(m.demoted_pages_by_node(), vec![0, 0, 0, 1]);
        // No-op and out-of-range moves are rejected.
        assert_eq!(m.migrate_page(0, 1, 3), None);
        assert_eq!(m.migrate_page(0, 99, 0), None);
        // Free returns exactly what is charged after the migrations.
        drop(a);
        assert_eq!(m.node_live_bytes(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn migrate_page_respects_target_capacity() {
        let spec = MachineSpec::test2_tiered().with_fast_capacity(PAGE);
        let m = Machine::new(spec);
        let _a = m.alloc_array::<u8>("a", 3 * PAGE as usize, AllocPolicy::OnNode(2));
        assert_eq!(m.migrate_page(0, 0, 0), Some(2));
        // Fast node 0 is now full: further promotion there is refused.
        assert_eq!(m.migrate_page(0, 1, 0), None);
        assert_eq!(m.node_live_bytes(), vec![PAGE, 0, 2 * PAGE, 0]);
    }

    #[test]
    fn slow_tag_routing_streams_allocation_to_slow_tier() {
        let m = Machine::new(MachineSpec::test2_tiered());
        m.route_tags_to_slow(&["topo"]);
        let _e = m.alloc_array::<u8>("topo/e_dst", 4 * PAGE as usize, AllocPolicy::OnNode(0));
        let _v = m.alloc_array::<u8>("data/curr", 2 * PAGE as usize, AllocPolicy::OnNode(0));
        // Edge pages interleave over slow nodes {2,3}; vertex data stays fast.
        assert_eq!(m.node_live_bytes(), vec![2 * PAGE, 0, 2 * PAGE, 2 * PAGE]);
        assert_eq!(m.slow_routed_tags(), vec!["topo".to_string()]);
        // Routing a tag twice does not duplicate it.
        m.route_tags_to_slow(&["topo"]);
        assert_eq!(m.slow_routed_tags().len(), 1);
        // No effect on single-tier machines.
        let m1 = Machine::new(MachineSpec::test2());
        m1.route_tags_to_slow(&["topo"]);
        let _e1 = m1.alloc_array::<u8>("topo/e_dst", 4 * PAGE as usize, AllocPolicy::OnNode(0));
        assert_eq!(m1.node_live_bytes(), vec![4 * PAGE, 0]);
    }

    #[test]
    fn spill_accounting_invariants_hold_over_random_schedules() {
        // Deterministic pseudo-random alloc/free schedule; checks after every
        // step that (a) no node exceeds its cap, (b) per-node live bytes sum
        // to the page footprint of the live allocations.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for policy in [SpillPolicy::NearestRemote, SpillPolicy::Interleave] {
            let cap_pages = 8u64;
            let m = capped(cap_pages, policy);
            let mut live: Vec<(crate::NumaArray<u8>, u64)> = Vec::new();
            let mut live_pages = 0u64;
            for step in 0..200 {
                let r = next();
                if r % 3 != 0 || live.is_empty() {
                    let pages = 1 + (r >> 8) % 4;
                    let node = ((r >> 16) % 2) as usize;
                    match m.try_alloc_array::<u8>(
                        &format!("s{step}"),
                        (pages * PAGE) as usize,
                        AllocPolicy::OnNode(node),
                    ) {
                        Ok(a) => {
                            live.push((a, pages));
                            live_pages += pages;
                        }
                        Err(PolymerError::NodeCapacityExceeded { .. }) => {}
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                } else {
                    let i = (r >> 24) as usize % live.len();
                    let (a, pages) = live.swap_remove(i);
                    drop(a);
                    live_pages -= pages;
                }
                let by_node = m.node_live_bytes();
                assert!(by_node.iter().all(|&b| b <= cap_pages * PAGE));
                assert_eq!(by_node.iter().sum::<u64>(), live_pages * PAGE);
            }
        }
    }
}
