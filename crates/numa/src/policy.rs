//! Allocation policies: how the pages of an allocation map to memory nodes.
//!
//! These model the placement options discussed in Sections 3.1 and 4.2 of the
//! paper: Linux's default first-touch binding, interleaved allocation,
//! centralized allocation by a main thread, explicit binding to one node, and
//! Polymer's *contiguous-virtual / distributed-physical* layout in which one
//! contiguous array has its page ranges homed on the nodes that own the
//! corresponding vertex partitions.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::topology::{NodeId, PAGE_SIZE};

/// Mutable per-page home-node map, shared (via `Arc`) between the machine's
/// allocation registry and every array that cloned the placement.
///
/// Entries are `AtomicU8` so page *migration* — tier promotion/demotion at
/// phase boundaries — is visible to all holders without unsafe code or
/// locks. Within a phase the map is never mutated (migrations run only in
/// the executor's serial phase-boundary hook), so the relaxed loads on the
/// access path observe a stable mapping.
#[derive(Debug)]
pub struct PageMap {
    nodes: Box<[AtomicU8]>,
}

impl PageMap {
    fn new(map: Vec<u8>) -> Self {
        PageMap {
            nodes: map.into_iter().map(AtomicU8::new).collect(),
        }
    }

    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the map covers no pages (never happens for resolved
    /// placements, which always cover at least one page).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Home node of a page.
    #[inline]
    pub fn get(&self, page: usize) -> NodeId {
        self.nodes[page].load(Ordering::Relaxed) as NodeId
    }

    /// Move a page to a new home node. Only the machine's migration path
    /// calls this, at phase boundaries.
    pub(crate) fn set(&self, page: usize, node: NodeId) {
        self.nodes[page].store(node as u8, Ordering::Relaxed);
    }

    /// Snapshot the map as plain bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        self.nodes
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .collect()
    }
}

/// Placement intent supplied when allocating a [`crate::NumaArray`].
#[derive(Clone, Debug)]
pub enum AllocPolicy {
    /// Linux first-touch: all pages bound to the node of the thread that
    /// allocates (and is assumed to initialize) the array. The allocating
    /// node is supplied at allocation time.
    FirstTouch(NodeId),
    /// All pages on node 0, as when a main thread allocates and initializes
    /// short-term runtime state each iteration (Section 3.1).
    Centralized,
    /// Pages round-robin across all nodes of the machine (numactl
    /// `--interleave=all`).
    Interleaved,
    /// All pages bound to one explicit node (libnuma `numa_alloc_onnode`).
    OnNode(NodeId),
    /// Polymer's application-data layout: the array is one contiguous
    /// virtual range, but element range `i` (with the given length) is
    /// physically homed on the given node. Ranges are in element counts and
    /// must sum to the array length.
    ChunkedElems(Vec<(usize, NodeId)>),
}

/// Resolved page→node mapping of one allocation. Cheap to clone and lookup.
#[derive(Clone, Debug)]
pub struct Placement {
    kind: PlacementKind,
    /// Page size in bytes (power of two). 4 KiB models normal pages; 2 MiB
    /// models transparent huge pages, whose coarse placement granularity can
    /// hurt on NUMA (Gaud et al., USENIX ATC'14 — cited by the paper).
    page_shift: u32,
}

/// The mapping shape.
#[derive(Clone, Debug)]
enum PlacementKind {
    /// Every page on one node.
    OnNode(NodeId),
    /// Page `p` lives on node `p % nodes`.
    Interleaved { nodes: usize },
    /// Explicit per-page home nodes, mutable for page migration.
    Pages(Arc<PageMap>),
}

impl Placement {
    /// Resolve a policy for an allocation of `len` elements of `elem_size`
    /// bytes on a machine with `nodes` memory nodes and 4 KiB pages.
    pub fn resolve(policy: &AllocPolicy, len: usize, elem_size: usize, nodes: usize) -> Placement {
        Self::resolve_paged(policy, len, elem_size, nodes, PAGE_SIZE)
    }

    /// Like [`Placement::resolve`] with an explicit page size (must be a
    /// power of two).
    pub fn resolve_paged(
        policy: &AllocPolicy,
        len: usize,
        elem_size: usize,
        nodes: usize,
        page_bytes: usize,
    ) -> Placement {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let page_shift = page_bytes.trailing_zeros();
        let check = |n: NodeId| {
            assert!(
                n < nodes,
                "placement node {n} out of range (machine has {nodes})"
            );
            n
        };
        let kind = match policy {
            AllocPolicy::FirstTouch(n) | AllocPolicy::OnNode(n) => PlacementKind::OnNode(check(*n)),
            AllocPolicy::Centralized => PlacementKind::OnNode(0),
            AllocPolicy::Interleaved => PlacementKind::Interleaved { nodes },
            AllocPolicy::ChunkedElems(ranges) => {
                let total: usize = ranges.iter().map(|(c, _)| *c).sum();
                assert_eq!(
                    total, len,
                    "chunked placement ranges must cover the array exactly"
                );
                let bytes = len * elem_size;
                let pages = bytes.div_ceil(page_bytes).max(1);
                let mut map = vec![0u8; pages];
                let mut elem = 0usize;
                for (count, node) in ranges {
                    check(*node);
                    if *count == 0 {
                        continue;
                    }
                    let start_page = elem * elem_size / page_bytes;
                    let end_elem = elem + count;
                    let end_page = (end_elem * elem_size)
                        .div_ceil(page_bytes)
                        .max(start_page + 1);
                    map[start_page..end_page.min(pages)].fill(*node as u8);
                    elem = end_elem;
                }
                PlacementKind::Pages(Arc::new(PageMap::new(map)))
            }
        };
        Placement { kind, page_shift }
    }

    /// Home node of the page containing byte offset `byte_off`.
    #[inline]
    pub fn node_of(&self, byte_off: usize) -> NodeId {
        let page = byte_off >> self.page_shift;
        match &self.kind {
            PlacementKind::OnNode(n) => *n,
            PlacementKind::Interleaved { nodes } => page % nodes,
            PlacementKind::Pages(map) => map.get(page.min(map.len() - 1)),
        }
    }

    /// log2 of the page size in bytes.
    #[inline]
    pub(crate) fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// Walk the home-node runs of `n` elements of `elem` bytes starting at
    /// byte offset `off`: calls `f(node, count)` once per maximal run of
    /// consecutive elements whose *start bytes* share a home node. This is
    /// the coalesced counterpart of calling [`Placement::node_of`] per
    /// element — element membership follows the start byte, so elements
    /// straddling a page boundary are attributed exactly as the per-element
    /// path attributes them. Cost is one table lookup per page-run, not per
    /// element.
    #[inline]
    pub(crate) fn for_each_elem_run(
        &self,
        off: usize,
        elem: usize,
        n: usize,
        mut f: impl FnMut(NodeId, usize),
    ) {
        if n == 0 {
            return;
        }
        if let PlacementKind::OnNode(node) = &self.kind {
            // Single-home allocations are one run regardless of pages.
            f(*node, n);
            return;
        }
        let last_start = off + (n - 1) * elem;
        let mut k = 0usize;
        let mut cur = off;
        while k < n {
            let node = self.node_of(cur);
            // Extend the run across consecutive pages with the same home.
            let mut boundary = ((cur >> self.page_shift) + 1) << self.page_shift;
            while last_start >= boundary && self.node_of(boundary) == node {
                boundary = ((boundary >> self.page_shift) + 1) << self.page_shift;
            }
            // Elements whose start byte falls below the boundary.
            let cnt = (boundary - cur).div_ceil(elem).min(n - k);
            f(node, cnt);
            k += cnt;
            cur += cnt * elem;
        }
    }

    /// Page size of this placement, in bytes.
    #[inline]
    pub fn page_bytes(&self) -> usize {
        1usize << self.page_shift
    }

    /// Number of pages an allocation of `total_bytes` occupies under this
    /// placement (at least one, matching how placements are resolved).
    pub fn num_pages(&self, total_bytes: usize) -> usize {
        total_bytes.div_ceil(self.page_bytes()).max(1)
    }

    /// Home node of every page of an allocation of `total_bytes`, in order.
    pub fn page_nodes(&self, total_bytes: usize) -> Vec<NodeId> {
        (0..self.num_pages(total_bytes))
            .map(|p| self.node_of(p << self.page_shift))
            .collect()
    }

    /// Build a placement from an explicit per-page node map, used when
    /// capacity pressure forces pages away from their requested homes.
    pub(crate) fn from_page_map(map: Vec<u8>, page_shift: u32) -> Placement {
        assert!(!map.is_empty(), "page map must cover at least one page");
        Placement {
            kind: PlacementKind::Pages(Arc::new(PageMap::new(map))),
            page_shift,
        }
    }

    /// The shared mutable page map backing this placement, if it is in the
    /// explicit per-page form (the only migratable form).
    pub(crate) fn page_map(&self) -> Option<&Arc<PageMap>> {
        match &self.kind {
            PlacementKind::Pages(map) => Some(map),
            _ => None,
        }
    }

    /// A copy of this placement expanded to the explicit per-page form
    /// covering `total_bytes`, so its pages can later be migrated. The
    /// expansion preserves every page's home node; only the representation
    /// changes. Tiered machines register every allocation through this.
    pub(crate) fn to_paged(&self, total_bytes: usize) -> Placement {
        match &self.kind {
            PlacementKind::Pages(_) => self.clone(),
            _ => {
                let map: Vec<u8> = self
                    .page_nodes(total_bytes)
                    .into_iter()
                    .map(|n| n as u8)
                    .collect();
                Placement::from_page_map(map, self.page_shift)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_node_and_centralized() {
        let p = Placement::resolve(&AllocPolicy::OnNode(3), 1000, 8, 8);
        assert_eq!(p.node_of(0), 3);
        assert_eq!(p.node_of(7999), 3);
        let c = Placement::resolve(&AllocPolicy::Centralized, 1000, 8, 8);
        assert_eq!(c.node_of(4097), 0);
    }

    #[test]
    fn interleaved_round_robin() {
        let p = Placement::resolve(&AllocPolicy::Interleaved, 10_000, 8, 4);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(PAGE_SIZE), 1);
        assert_eq!(p.node_of(4 * PAGE_SIZE), 0);
        assert_eq!(p.node_of(5 * PAGE_SIZE + 17), 1);
    }

    #[test]
    fn chunked_elems_maps_ranges_to_nodes() {
        // 1024 u64 elements per node over 2 nodes: 8 KiB each = 2 pages each.
        let p = Placement::resolve(
            &AllocPolicy::ChunkedElems(vec![(1024, 0), (1024, 1)]),
            2048,
            8,
            2,
        );
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(8191), 0);
        assert_eq!(p.node_of(8192), 1);
        assert_eq!(p.node_of(16383), 1);
    }

    #[test]
    #[should_panic(expected = "must cover the array exactly")]
    fn chunked_must_cover() {
        Placement::resolve(&AllocPolicy::ChunkedElems(vec![(10, 0)]), 11, 8, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_out_of_range_rejected() {
        Placement::resolve(&AllocPolicy::OnNode(9), 10, 8, 2);
    }

    #[test]
    fn huge_pages_coarsen_placement() {
        // 2048 u64 elements = 16 KiB: four 4 KiB pages interleave over two
        // nodes, but a single 2 MiB huge page pins everything to node 0.
        let small = Placement::resolve_paged(&AllocPolicy::Interleaved, 2048, 8, 2, 4096);
        assert_eq!(small.node_of(0), 0);
        assert_eq!(small.node_of(4096), 1);
        let huge = Placement::resolve_paged(&AllocPolicy::Interleaved, 2048, 8, 2, 2 << 20);
        assert_eq!(huge.node_of(0), 0);
        assert_eq!(huge.node_of(4096), 0);
        assert_eq!(huge.node_of(16383), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_rejected() {
        Placement::resolve_paged(&AllocPolicy::Centralized, 8, 8, 2, 3000);
    }

    #[test]
    fn chunked_skips_empty_ranges() {
        let p = Placement::resolve(
            &AllocPolicy::ChunkedElems(vec![(0, 1), (1024, 0), (0, 1), (1024, 1)]),
            2048,
            8,
            2,
        );
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(8192), 1);
    }

    /// Reference for [`Placement::for_each_elem_run`]: one `node_of` per
    /// element start byte.
    fn runs_by_element(p: &Placement, off: usize, elem: usize, n: usize) -> Vec<(NodeId, usize)> {
        let mut out: Vec<(NodeId, usize)> = Vec::new();
        for k in 0..n {
            let node = p.node_of(off + k * elem);
            match out.last_mut() {
                Some((ln, c)) if *ln == node => *c += 1,
                _ => out.push((node, 1)),
            }
        }
        out
    }

    #[test]
    fn elem_runs_match_per_element_walk() {
        // Mixed shapes: straddling elements, runs spanning multiple pages,
        // single-node placements, interleaving.
        let cases = [
            (Placement::resolve(&AllocPolicy::Interleaved, 4096, 8, 4), 8),
            (Placement::resolve(&AllocPolicy::OnNode(2), 4096, 8, 4), 8),
            (
                Placement::resolve(
                    &AllocPolicy::ChunkedElems(vec![(700, 1), (1348, 0)]),
                    2048,
                    12,
                    2,
                ),
                12,
            ),
        ];
        for (p, elem) in &cases {
            for (off, n) in [(0, 1), (4090, 3), (16, 2000), (4096, 513), (123, 700)] {
                let mut got = Vec::new();
                p.for_each_elem_run(off, *elem, n, |node, cnt| got.push((node, cnt)));
                assert_eq!(
                    got,
                    runs_by_element(p, off, *elem, n),
                    "off={off} n={n} elem={elem}"
                );
            }
        }
    }

    #[test]
    fn sub_page_allocation_has_one_page() {
        let p = Placement::resolve(&AllocPolicy::ChunkedElems(vec![(3, 1)]), 3, 4, 2);
        assert_eq!(p.node_of(0), 1);
        assert_eq!(p.node_of(11), 1);
    }
}
