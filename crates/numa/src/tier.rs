//! Promotion/demotion policies for tiered (fast/slow) machines.
//!
//! On a tiered [`crate::MachineSpec`] the slow tier (modelled on Optane-class
//! persistent memory) holds data that does not fit the fast tier's DRAM.
//! Between phases, a [`TierRuntime`] attached to the executor
//! ([`crate::SimExecutor::set_tiering`]) inspects the per-page access heat
//! collected by the [`crate::AccessCtx`]s and migrates hot pages up to the
//! fast tier — and, when the fast tier is full, demotes the coldest
//! promoted pages back down to make room. Heat is tracked as an EWMA
//! across boundaries (each boundary halves the old counts before folding
//! the fresh ones in), promotions per boundary are capped by a budget, an
//! incoming page must be meaningfully hotter than the eviction victim
//! (2× hysteresis) before it may displace it, and promoted pages that go
//! untouched for several consecutive boundaries are demoted even without
//! capacity pressure, so the fast tier tracks the *current* hot set.
//!
//! Migration is not free: every moved page is charged as explicit memory
//! traffic (a sequential read from the source node plus a sequential write to
//! the destination) through a synthetic `tier-migrate` phase, so tiering
//! overhead shows up in [`crate::PhaseCost`], the run clock, and the
//! per-socket trace counters exactly like application traffic does.
//!
//! Three policies are modelled, spanning the design space real systems use:
//!
//! * [`TierPolicy::FirstTouch`] — promote any slow page touched in the
//!   phase just ended, in scan order. The baseline OS behaviour: eager and
//!   cheap to decide, but promotes cold streaming pages as readily as hot
//!   ones.
//! * [`TierPolicy::HotPageLru`] — count every access per page and promote
//!   the hottest pages first; when the fast tier fills, demote the coldest
//!   promoted page (ties broken least-recently-promoted first, the classic
//!   hot-page tiering of Nimble/Memtis-style systems), and only when the
//!   incoming page is strictly hotter than that victim — so a converged hot
//!   set stops migrating instead of churning against equally-warm streams.
//! * [`TierPolicy::Sampled`] — AutoNUMA-style: sample one access in N
//!   (default 32), promote pages whose sampled count clears a small
//!   threshold. Approximates `HotPageLru` at a fraction of the tracking
//!   cost; the sampling noise is modelled faithfully, so its decisions are
//!   coarser.

use std::collections::{BTreeMap, VecDeque};

use crate::ctx::HeatMode;
use crate::machine::{AllocId, Machine};
use crate::topology::NodeId;

/// Which promotion policy a [`TierRuntime`] applies at phase boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TierPolicy {
    /// Promote any slow page touched in the phase just ended, in scan
    /// order, without ranking by heat.
    FirstTouch,
    /// Promote hottest pages first (full per-page counting); demote the
    /// coldest promoted page (ties broken least-recently-promoted first)
    /// when the fast tier fills.
    HotPageLru,
    /// AutoNUMA-style sampled scanning: count one access in
    /// [`TierRuntime::SAMPLE_PERIOD`], promote pages clearing a small
    /// sampled-heat threshold.
    Sampled,
}

impl TierPolicy {
    /// Every policy, in ablation order.
    pub const ALL: [TierPolicy; 3] = [
        TierPolicy::FirstTouch,
        TierPolicy::HotPageLru,
        TierPolicy::Sampled,
    ];

    /// Stable lower-case name (bench tables, JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            TierPolicy::FirstTouch => "first-touch",
            TierPolicy::HotPageLru => "hot-page-lru",
            TierPolicy::Sampled => "sampled",
        }
    }

    /// The heat-sampling mode this policy needs from the access contexts.
    pub(crate) fn heat_mode(self) -> HeatMode {
        match self {
            TierPolicy::FirstTouch | TierPolicy::HotPageLru => HeatMode::Full,
            TierPolicy::Sampled => HeatMode::Sampled(TierRuntime::SAMPLE_PERIOD),
        }
    }

    /// Minimum recorded heat for a page to become a promotion candidate.
    fn min_heat(self) -> u32 {
        match self {
            // Any touch at all.
            TierPolicy::FirstTouch => 1,
            // Full counting: ask for evidence of reuse, not a lone touch.
            TierPolicy::HotPageLru => 2,
            // Sampled counting: one sample landing on a page is already a
            // strong signal at a 1-in-N sampling rate.
            TierPolicy::Sampled => 1,
        }
    }
}

/// One page migration performed at a phase boundary (promotion or demotion),
/// reported back so the executor can charge it as traffic.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Migration {
    /// The allocation whose page moved.
    pub alloc: AllocId,
    /// Bytes moved (one placement page).
    pub bytes: u64,
    /// Old home node.
    pub from: NodeId,
    /// New home node.
    pub to: NodeId,
}

/// The phase-boundary tiering engine: consumes drained page heat, decides
/// promotions (and capacity-forced demotions) under a per-phase page budget,
/// and executes them through [`Machine::migrate_page`].
pub struct TierRuntime {
    policy: TierPolicy,
    /// Maximum pages promoted per phase boundary (demotions forced by those
    /// promotions do not count against it).
    budget_pages: usize,
    /// Fast-resident pages in promotion order (front = least recently
    /// promoted). Eviction picks the entry with the lowest current-boundary
    /// heat, breaking ties towards the front — a cold-first LRU.
    promoted: VecDeque<(AllocId, usize)>,
    /// Exponentially-decayed per-page heat: halved at every boundary, then
    /// the boundary's drained heat is folded in. Promotion and eviction both
    /// read this accumulated value, so a page's standing reflects its recent
    /// history rather than whichever phase happened to run last — a stream
    /// that alternates edge and vertex phases would otherwise evict the hot
    /// set at every vertex boundary and re-promote it at the next edge one.
    ewma: BTreeMap<(AllocId, usize), u32>,
    /// Consecutive boundaries each promoted page has gone untouched, for
    /// idle reclaim. Reset to zero on any touch; missing means touched.
    idle: BTreeMap<(AllocId, usize), u32>,
    /// Total promotions/demotions performed, for reports and tests.
    promotions: u64,
    demotions: u64,
}

impl TierRuntime {
    /// Sampling period of [`TierPolicy::Sampled`] (count one access in N),
    /// matching AutoNUMA's default scan granularity in spirit.
    pub const SAMPLE_PERIOD: u32 = 32;

    /// A promoted page untouched for this many consecutive boundaries is
    /// demoted even without capacity pressure (kswapd-style idle reclaim).
    /// A page promoted off one touch — graph-construction reads, say — must
    /// not squat in the fast tier for the rest of the run; three boundaries
    /// is long enough that phase alternation (an edge phase not touching
    /// vertex state, and vice versa) never looks like idleness.
    pub const IDLE_DEMOTE_BOUNDARIES: u32 = 3;

    /// A candidate must run this many times hotter than the coldest
    /// fast-resident page before it may evict it. Near-tie swaps move a page
    /// in each direction for at best a marginal placement improvement, so a
    /// working set whose pages jitter around the same heat would otherwise
    /// migrate forever; the factor-of-two deadband converges instead.
    pub const EVICTION_HYSTERESIS: u32 = 2;

    /// Default per-phase promotion budget, in pages (2 MiB at 4 KiB pages).
    /// Generous enough that a hot working set migrates within a few
    /// iterations, small enough that a single boundary never bulk-copies
    /// the whole graph — and that an eager policy promoting cold streaming
    /// pages cannot spend more on copies than the phase spent on work.
    pub const DEFAULT_BUDGET_PAGES: usize = 512;

    /// A runtime applying `policy` with the default budget.
    pub fn new(policy: TierPolicy) -> Self {
        TierRuntime {
            policy,
            budget_pages: Self::DEFAULT_BUDGET_PAGES,
            promoted: VecDeque::new(),
            ewma: BTreeMap::new(),
            idle: BTreeMap::new(),
            promotions: 0,
            demotions: 0,
        }
    }

    /// Override the per-phase promotion budget (pages).
    pub fn with_budget(mut self, pages: usize) -> Self {
        self.budget_pages = pages;
        self
    }

    /// The policy this runtime applies.
    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// Total pages promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Total pages demoted so far (capacity-forced evictions).
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// The fast node with the most free capacity (ties to the lowest id).
    /// `None` when every fast node is at capacity (or has unknown capacity —
    /// unlimited fast nodes always win with `u64::MAX` headroom).
    fn best_fast_target(machine: &Machine, live: &[u64]) -> Option<NodeId> {
        let spec = machine.spec();
        let mut best: Option<(u64, NodeId)> = None;
        for n in spec.fast_nodes() {
            let free = match machine.capacity_of_node(n) {
                Some(cap) => cap.saturating_sub(live[n]),
                None => u64::MAX,
            };
            if free == 0 {
                continue;
            }
            if best.map(|(bf, _)| free > bf).unwrap_or(true) {
                best = Some((free, n));
            }
        }
        best.map(|(_, n)| n)
    }

    /// The slow node with the most free capacity (ties to the lowest id),
    /// falling back to the first slow node when all are "full" (demotion must
    /// always find a home; the slow tier backs the whole footprint).
    fn best_slow_target(machine: &Machine, live: &[u64]) -> NodeId {
        let spec = machine.spec();
        let mut best: Option<(u64, NodeId)> = None;
        for n in spec.slow_nodes() {
            let free = match machine.capacity_of_node(n) {
                Some(cap) => cap.saturating_sub(live[n]),
                None => u64::MAX,
            };
            if best.map(|(bf, _)| free > bf).unwrap_or(true) {
                best = Some((free, n));
            }
        }
        best.map(|(_, n)| n).unwrap_or_else(|| {
            *spec
                .slow_nodes()
                .first()
                .expect("tiered spec has slow nodes")
        })
    }

    /// The heat of the coldest still-fast-resident promoted page this
    /// boundary, or `None` when nothing promoted remains resident. Entries
    /// that were freed or migrated away are pruned as a side effect.
    fn coldest_resident_heat(
        &mut self,
        machine: &Machine,
        heat_of: &BTreeMap<(AllocId, usize), u32>,
    ) -> Option<u32> {
        self.promoted.retain(|&(alloc, page)| {
            machine
                .page_map_of(alloc)
                .map(|(map, _)| {
                    page < map.len() && !machine.spec().tier_of(map.get(page)).is_slow()
                })
                .unwrap_or(false)
        });
        self.promoted
            .iter()
            .map(|key| heat_of.get(key).copied().unwrap_or(0))
            .min()
    }

    /// Demote the coldest promoted fast page (current-boundary heat, ties to
    /// the least recently promoted) to the slow tier, freeing one page of
    /// fast capacity. Returns the migration, or `None` when the queue holds
    /// no page that is still fast-resident.
    fn demote_one(
        &mut self,
        machine: &Machine,
        live: &mut [u64],
        heat_of: &BTreeMap<(AllocId, usize), u32>,
    ) -> Option<Migration> {
        self.coldest_resident_heat(machine, heat_of)?;
        let victim = self
            .promoted
            .iter()
            .enumerate()
            .min_by_key(|(i, key)| (heat_of.get(key).copied().unwrap_or(0), *i))
            .map(|(i, _)| i)?;
        let (alloc, page) = self.promoted.remove(victim)?;
        self.idle.remove(&(alloc, page));
        let page_bytes = machine.page_map_of(alloc).map(|(_, b)| b)?;
        let to = Self::best_slow_target(machine, live);
        let from = machine.migrate_page(alloc, page, to)?;
        live[from] = live[from].saturating_sub(page_bytes);
        live[to] += page_bytes;
        self.demotions += 1;
        Some(Migration {
            alloc,
            bytes: page_bytes,
            from,
            to,
        })
    }

    /// Run one phase boundary: turn the drained heat into promotions (plus
    /// any capacity-forced demotions) and return the migrations performed,
    /// in execution order, for the executor to charge as traffic.
    pub(crate) fn run_boundary(
        &mut self,
        machine: &Machine,
        heat: &[(AllocId, Vec<u32>)],
    ) -> Vec<Migration> {
        let spec = machine.spec();
        let min_heat = self.policy.min_heat();

        // This boundary's raw touches, then decay the accumulated heat and
        // fold them in.
        let mut fresh: BTreeMap<(AllocId, usize), u32> = BTreeMap::new();
        for (alloc, pages) in heat {
            for (page, &h) in pages.iter().enumerate() {
                if h > 0 {
                    fresh.insert((*alloc, page), h);
                }
            }
        }
        self.ewma.retain(|_, h| {
            *h /= 2;
            *h > 0
        });
        for (&key, &h) in &fresh {
            let e = self.ewma.entry(key).or_insert(0);
            *e = e.saturating_add(h);
        }
        // Advance the idle clocks of the current residents (pages promoted
        // later this boundary start fresh).
        for key in &self.promoted {
            if fresh.contains_key(key) {
                self.idle.remove(key);
            } else {
                *self.idle.entry(*key).or_insert(0) += 1;
            }
        }

        // Candidate pages: slow-resident with enough accumulated heat, in
        // (alloc, page) scan order. FirstTouch promotes on touch — it only
        // ever considers pages accessed in the phase just ended, never pages
        // merely remembered by the decaying history (an init-only page must
        // not earn a promotion it can no longer repay).
        let mut cands: Vec<(u32, AllocId, usize)> = Vec::new();
        let source: &BTreeMap<(AllocId, usize), u32> = if self.policy == TierPolicy::FirstTouch {
            &fresh
        } else {
            &self.ewma
        };
        for (&(alloc, page), &h) in source {
            if h < min_heat {
                continue;
            }
            let map = match machine.page_map_of(alloc) {
                Some((map, _)) => map,
                None => continue,
            };
            if page < map.len() && spec.tier_of(map.get(page)).is_slow() {
                cands.push((h, alloc, page));
            }
        }
        // Hottest first for the counting policies; FirstTouch keeps scan
        // order (the order of first touch within the phase is not recorded,
        // so allocation/page order is the deterministic stand-in).
        if self.policy != TierPolicy::FirstTouch {
            cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        }

        // Accumulated heat snapshot, for picking eviction victims and for
        // the churn guard below.
        let heat_of = self.ewma.clone();

        let mut live = machine.node_live_bytes();
        let mut out = Vec::new();
        let mut promoted_now = 0usize;
        for (h, alloc, page) in cands {
            // The budget caps pages *promoted*, not candidates considered:
            // a scan-order policy must still reach the hot pages sitting
            // behind thousands of guard-skipped stream pages.
            if promoted_now >= self.budget_pages {
                break;
            }
            let page_bytes = match machine.page_map_of(alloc) {
                Some((_, b)) => b,
                None => continue,
            };
            let mut target = Self::best_fast_target(machine, &live);
            if target.is_none() {
                // Fast tier full. Evict the coldest promoted page — but only
                // for a candidate clearing the hysteresis deadband above it;
                // swapping similarly-warm pages is pure migration overhead
                // (a converged hot set, or a stream re-touching every page
                // each phase, must not churn).
                match self.coldest_resident_heat(machine, &heat_of) {
                    Some(coldest) if h > coldest.saturating_mul(Self::EVICTION_HYSTERESIS) => {
                        if let Some(m) = self.demote_one(machine, &mut live, &heat_of) {
                            out.push(m);
                            target = Self::best_fast_target(machine, &live);
                        }
                    }
                    Some(_) => {
                        if self.policy == TierPolicy::FirstTouch {
                            // Scan order is not heat order: a hotter page may
                            // still follow.
                            continue;
                        }
                        break; // sorted hottest-first: no later candidate wins
                    }
                    None => break, // fast tier full of unevictable pages
                }
            }
            let Some(to) = target else { break };
            if let Some(from) = machine.migrate_page(alloc, page, to) {
                live[from] = live[from].saturating_sub(page_bytes);
                live[to] += page_bytes;
                self.promoted.push_back((alloc, page));
                self.idle.remove(&(alloc, page));
                self.promotions += 1;
                promoted_now += 1;
                out.push(Migration {
                    alloc,
                    bytes: page_bytes,
                    from,
                    to,
                });
            }
        }

        // Idle reclaim: a promoted page untouched for the last
        // IDLE_DEMOTE_BOUNDARIES boundaries goes back down even without
        // capacity pressure, so one-shot promotions (init-only reads) free
        // their fast capacity for pages still earning it.
        let dead: Vec<(AllocId, usize)> = self
            .promoted
            .iter()
            .filter(|key| self.idle.get(key).copied().unwrap_or(0) >= Self::IDLE_DEMOTE_BOUNDARIES)
            .copied()
            .collect();
        for (alloc, page) in dead {
            self.promoted.retain(|&k| k != (alloc, page));
            self.idle.remove(&(alloc, page));
            // Drop the stale history too: the page just proved idle, and a
            // lingering decayed count must not re-promote it next boundary.
            self.ewma.remove(&(alloc, page));
            let page_bytes = match machine.page_map_of(alloc) {
                Some((map, b)) if page < map.len() => {
                    if machine.spec().tier_of(map.get(page)).is_slow() {
                        continue; // already moved down by someone else
                    }
                    b
                }
                _ => continue, // freed allocation
            };
            let to = Self::best_slow_target(machine, &live);
            if let Some(from) = machine.migrate_page(alloc, page, to) {
                live[from] = live[from].saturating_sub(page_bytes);
                live[to] += page_bytes;
                self.demotions += 1;
                out.push(Migration {
                    alloc,
                    bytes: page_bytes,
                    from,
                    to,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::{MachineSpec, PAGE_SIZE};

    fn tiered_machine() -> Machine {
        Machine::new(MachineSpec::test2_tiered())
    }

    /// Heat vector with `hot` at the given pages.
    fn heat_for(alloc: AllocId, pages: &[(usize, u32)]) -> Vec<(AllocId, Vec<u32>)> {
        let max = pages.iter().map(|&(p, _)| p).max().unwrap_or(0);
        let mut v = vec![0u32; max + 1];
        for &(p, h) in pages {
            v[p] = h;
        }
        vec![(alloc, v)]
    }

    #[test]
    fn hot_slow_pages_promote_to_fast() {
        let m = tiered_machine();
        // 4 pages on slow node 2.
        let a = m.alloc_array::<u64>("a", 4 * 512, AllocPolicy::OnNode(2));
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(0, 10), (2, 5)]));
        assert_eq!(migs.len(), 2);
        assert!(migs.iter().all(|m2| m2.from == 2));
        assert!(migs.iter().all(|m2| !m.spec().tier_of(m2.to).is_slow()));
        // Hottest page first.
        assert_eq!(rt.promotions(), 2);
        assert_eq!(a.node_of(0), migs[0].to);
        assert_eq!(a.node_of(2 * 512), migs[1].to);
    }

    #[test]
    fn fast_resident_pages_are_not_candidates() {
        let m = tiered_machine();
        let a = m.alloc_array::<u64>("a", 512, AllocPolicy::OnNode(0));
        let mut rt = TierRuntime::new(TierPolicy::FirstTouch);
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(0, 100)]));
        assert!(migs.is_empty());
        assert_eq!(rt.promotions(), 0);
    }

    #[test]
    fn budget_caps_promotions_per_boundary() {
        let m = tiered_machine();
        let a = m.alloc_array::<u64>("a", 8 * 512, AllocPolicy::OnNode(3));
        let mut rt = TierRuntime::new(TierPolicy::FirstTouch).with_budget(3);
        let hot: Vec<(usize, u32)> = (0..8).map(|p| (p, 1)).collect();
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &hot));
        assert_eq!(migs.len(), 3);
        // Later boundaries drain the rest, three pages at a time.
        let migs2 = rt.run_boundary(&m, &heat_for(a.alloc_id(), &hot));
        assert_eq!(migs2.len(), 3);
        let migs3 = rt.run_boundary(&m, &heat_for(a.alloc_id(), &hot));
        assert_eq!(migs3.len(), 2);
        assert_eq!(rt.promotions(), 8);
    }

    #[test]
    fn full_fast_tier_forces_lru_demotion() {
        // Fast capacity of exactly 2 pages per fast node (4 pages total
        // fast), slow unlimited.
        let spec = MachineSpec::test2_tiered().with_fast_capacity(2 * PAGE_SIZE as u64);
        let m = Machine::new(spec);
        let a = m.alloc_array::<u64>("a", 8 * 512, AllocPolicy::OnNode(2));
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        // Promote pages 0..4 — exactly fills both fast nodes.
        let migs = rt.run_boundary(
            &m,
            &heat_for(a.alloc_id(), &[(0, 9), (1, 8), (2, 7), (3, 6)]),
        );
        assert_eq!(migs.len(), 4);
        assert_eq!(rt.demotions(), 0);
        // Promoting two hotter pages must evict the two coldest residents.
        let migs2 = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(4, 9), (5, 8)]));
        let demoted: Vec<_> = migs2
            .iter()
            .filter(|mg| m.spec().tier_of(mg.to).is_slow())
            .collect();
        assert_eq!(demoted.len(), 2);
        assert_eq!(rt.demotions(), 2);
        assert_eq!(rt.promotions(), 6);
        // Pages 2 and 3 — coldest after decay, untouched this boundary —
        // went back down; the still-warmer pages 0 and 1 stayed.
        assert!(m.spec().tier_of(a.node_of(2 * 512)).is_slow());
        assert!(m.spec().tier_of(a.node_of(3 * 512)).is_slow());
        assert!(!m.spec().tier_of(a.node_of(0)).is_slow());
        assert!(!m.spec().tier_of(a.node_of(4 * 512)).is_slow());
        assert!(!m.spec().tier_of(a.node_of(5 * 512)).is_slow());
        // Machine counters saw both directions.
        assert_eq!(m.promoted_pages_by_node().iter().sum::<u64>(), 6);
        assert_eq!(m.demoted_pages_by_node().iter().sum::<u64>(), 2);
    }

    #[test]
    fn equally_warm_pages_do_not_churn_a_full_fast_tier() {
        let spec = MachineSpec::test2_tiered().with_fast_capacity(2 * PAGE_SIZE as u64);
        let m = Machine::new(spec);
        let a = m.alloc_array::<u64>("a", 8 * 512, AllocPolicy::OnNode(2));
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        // Fill the fast tier with four hot pages.
        let migs = rt.run_boundary(
            &m,
            &heat_for(a.alloc_id(), &[(0, 9), (1, 9), (2, 9), (3, 9)]),
        );
        assert_eq!(migs.len(), 4);
        // A stream re-touching everything at the same heat must not displace
        // the resident set: no promotions, no demotions.
        let hot: Vec<(usize, u32)> = (0..8).map(|p| (p, 9)).collect();
        let migs2 = rt.run_boundary(&m, &heat_for(a.alloc_id(), &hot));
        assert!(migs2.is_empty(), "equal heat churned: {migs2:?}");
        // A page running strictly hotter than the residents' accumulated
        // heat does displace the coldest of them.
        let mut heats: Vec<(usize, u32)> = (0..4).map(|p| (p, 9)).collect();
        heats.push((7, 40));
        let migs3 = rt.run_boundary(&m, &heat_for(a.alloc_id(), &heats));
        assert_eq!(migs3.len(), 2); // one demotion + one promotion
        assert!(!m.spec().tier_of(a.node_of(7 * 512)).is_slow());
        assert_eq!(rt.demotions(), 1);
    }

    #[test]
    fn eviction_picks_the_coldest_resident_not_the_oldest() {
        let spec = MachineSpec::test2_tiered().with_fast_capacity(2 * PAGE_SIZE as u64);
        let m = Machine::new(spec);
        let a = m.alloc_array::<u64>("a", 8 * 512, AllocPolicy::OnNode(2));
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        rt.run_boundary(
            &m,
            &heat_for(a.alloc_id(), &[(0, 9), (1, 8), (2, 7), (3, 6)]),
        );
        // Page 0 is the oldest promotion but stays hot; page 2 goes cold.
        // The incoming hotter page must evict page 2, not page 0.
        let migs = rt.run_boundary(
            &m,
            &heat_for(a.alloc_id(), &[(0, 9), (1, 9), (3, 9), (4, 12)]),
        );
        assert_eq!(migs.len(), 2);
        assert!(m.spec().tier_of(a.node_of(2 * 512)).is_slow());
        assert!(!m.spec().tier_of(a.node_of(0)).is_slow());
        assert!(!m.spec().tier_of(a.node_of(4 * 512)).is_slow());
    }

    #[test]
    fn min_heat_threshold_filters_cold_pages() {
        let m = tiered_machine();
        let a = m.alloc_array::<u64>("a", 4 * 512, AllocPolicy::OnNode(2));
        // HotPageLru wants heat >= 2; a single touch stays put.
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(0, 1), (1, 2)]));
        assert_eq!(migs.len(), 1);
        assert_eq!(a.node_of(0), 2);
        assert_ne!(a.node_of(512), 2);
    }

    #[test]
    fn idle_promoted_pages_are_reclaimed_without_pressure() {
        let m = tiered_machine(); // unlimited fast capacity: no eviction path
        let a = m.alloc_array::<u64>("a", 4 * 512, AllocPolicy::OnNode(2));
        let mut rt = TierRuntime::new(TierPolicy::HotPageLru);
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(0, 50)]));
        assert_eq!(migs.len(), 1);
        // Untouched boundaries tick the idle clock; on the third the page
        // goes back down even though the fast tier has room to spare.
        for i in 0..TierRuntime::IDLE_DEMOTE_BOUNDARIES {
            assert!(
                !m.spec().tier_of(a.node_of(0)).is_slow(),
                "reclaimed after only {i} idle boundaries"
            );
            rt.run_boundary(&m, &[]);
        }
        assert!(m.spec().tier_of(a.node_of(0)).is_slow());
        assert_eq!(rt.demotions(), 1);
        // A touch in between resets the clock.
        let migs = rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(1, 50)]));
        assert_eq!(migs.len(), 1);
        rt.run_boundary(&m, &[]);
        rt.run_boundary(&m, &[]);
        rt.run_boundary(&m, &heat_for(a.alloc_id(), &[(1, 50)]));
        rt.run_boundary(&m, &[]);
        rt.run_boundary(&m, &[]);
        assert!(!m.spec().tier_of(a.node_of(512)).is_slow());
        rt.run_boundary(&m, &[]);
        assert!(m.spec().tier_of(a.node_of(512)).is_slow());
    }

    #[test]
    fn policy_names_and_modes() {
        assert_eq!(TierPolicy::FirstTouch.name(), "first-touch");
        assert_eq!(TierPolicy::HotPageLru.name(), "hot-page-lru");
        assert_eq!(TierPolicy::Sampled.name(), "sampled");
        assert_eq!(TierPolicy::Sampled.heat_mode(), HeatMode::Sampled(32));
        assert_eq!(TierPolicy::HotPageLru.heat_mode(), HeatMode::Full);
    }
}
