//! Latency and bandwidth tables, populated from the paper's measurements.
//!
//! Figure 3(b) gives load/store latency in cycles per hop distance; Figure 4
//! gives sequential and random bandwidth in MB/s per hop distance. The AMD
//! machine distinguishes two kinds of one-hop distance (two dies of the same
//! socket vs. adjacent sockets), so distances are modelled as four
//! [`DistClass`] values rather than a plain hop count.

use serde::{Deserialize, Serialize};

/// Distance class between two memory nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistClass {
    /// Same node: local DRAM.
    Local,
    /// One hop within a socket (the two dies of an AMD multi-chip module).
    OneHopIntra,
    /// One hop across sockets.
    OneHop,
    /// Two hops.
    TwoHop,
}

impl DistClass {
    /// All classes, in increasing distance order.
    pub const ALL: [DistClass; 4] = [
        DistClass::Local,
        DistClass::OneHopIntra,
        DistClass::OneHop,
        DistClass::TwoHop,
    ];

    /// Index into per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            DistClass::Local => 0,
            DistClass::OneHopIntra => 1,
            DistClass::OneHop => 2,
            DistClass::TwoHop => 3,
        }
    }

    /// Collapse to a hop count (0, 1 or 2).
    #[inline]
    pub fn hops(self) -> usize {
        match self {
            DistClass::Local => 0,
            DistClass::OneHopIntra | DistClass::OneHop => 1,
            DistClass::TwoHop => 2,
        }
    }

    /// True for any non-local class.
    #[inline]
    pub fn is_remote(self) -> bool {
        self != DistClass::Local
    }
}

/// Load/store latency in CPU cycles per distance class (paper Figure 3(b)).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Load latency in cycles, indexed by [`DistClass::index`].
    pub load_cycles: [f64; 4],
    /// Store latency in cycles, indexed by [`DistClass::index`].
    pub store_cycles: [f64; 4],
}

impl LatencyTable {
    /// Figure 3(b), 80-core Intel Xeon machine. The one-hop-intra column is
    /// unused on Intel (no multi-die sockets) and mirrors the one-hop value.
    pub fn intel80() -> Self {
        LatencyTable {
            load_cycles: [117.0, 271.0, 271.0, 372.0],
            store_cycles: [108.0, 304.0, 304.0, 409.0],
        }
    }

    /// Figure 3(b), 64-core AMD Opteron machine. The paper reports a single
    /// one-hop number, reused for both one-hop classes.
    pub fn amd64() -> Self {
        LatencyTable {
            load_cycles: [228.0, 419.0, 419.0, 498.0],
            store_cycles: [256.0, 463.0, 463.0, 544.0],
        }
    }

    /// Load latency for a distance class, in cycles.
    #[inline]
    pub fn load(&self, d: DistClass) -> f64 {
        self.load_cycles[d.index()]
    }

    /// Store latency for a distance class, in cycles.
    #[inline]
    pub fn store(&self, d: DistClass) -> f64 {
        self.store_cycles[d.index()]
    }
}

/// Sequential and random single-stream bandwidth in MB/s per distance class
/// (paper Figure 4). 1 MB/s ≡ 1 byte/µs, which the cost model exploits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BandwidthTable {
    /// Sequential-stream bandwidth, MB/s, indexed by [`DistClass::index`].
    pub seq_mbs: [f64; 4],
    /// Random-access bandwidth, MB/s, indexed by [`DistClass::index`].
    pub rand_mbs: [f64; 4],
    /// Bandwidth of interleaved allocation (pages round-robin over all
    /// nodes), MB/s: `[sequential, random]`. Reported by the paper as a
    /// separate column; the cost model reproduces it from the per-class mix,
    /// and the Figure 4 harness checks the two agree in shape.
    pub interleaved_mbs: [f64; 2],
}

impl BandwidthTable {
    /// Figure 4, 80-core Intel Xeon machine.
    pub fn intel80() -> Self {
        BandwidthTable {
            seq_mbs: [3207.0, 2455.0, 2455.0, 2101.0],
            rand_mbs: [720.0, 348.0, 348.0, 307.0],
            interleaved_mbs: [2333.0, 344.0],
        }
    }

    /// Figure 4, 64-core AMD Opteron machine. The paper's two one-hop values
    /// (2806/2406 sequential, 509/487 random) distinguish intra-socket from
    /// inter-socket one-hop distance.
    pub fn amd64() -> Self {
        BandwidthTable {
            seq_mbs: [3241.0, 2806.0, 2406.0, 1997.0],
            rand_mbs: [533.0, 509.0, 487.0, 415.0],
            interleaved_mbs: [2509.0, 466.0],
        }
    }

    /// Single-stream bandwidth for an access pattern and distance, MB/s.
    #[inline]
    pub fn bw(&self, sequential: bool, d: DistClass) -> f64 {
        if sequential {
            self.seq_mbs[d.index()]
        } else {
            self.rand_mbs[d.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_class_round_trip() {
        for d in DistClass::ALL {
            assert_eq!(DistClass::ALL[d.index()], d);
        }
    }

    #[test]
    fn hops_collapse() {
        assert_eq!(DistClass::Local.hops(), 0);
        assert_eq!(DistClass::OneHopIntra.hops(), 1);
        assert_eq!(DistClass::OneHop.hops(), 1);
        assert_eq!(DistClass::TwoHop.hops(), 2);
        assert!(!DistClass::Local.is_remote());
        assert!(DistClass::TwoHop.is_remote());
    }

    #[test]
    fn latency_monotone_in_distance() {
        for t in [LatencyTable::intel80(), LatencyTable::amd64()] {
            assert!(t.load(DistClass::Local) < t.load(DistClass::OneHop));
            assert!(t.load(DistClass::OneHop) < t.load(DistClass::TwoHop));
            assert!(t.store(DistClass::Local) < t.store(DistClass::TwoHop));
        }
    }

    #[test]
    fn bandwidth_monotone_and_seq_beats_rand() {
        for t in [BandwidthTable::intel80(), BandwidthTable::amd64()] {
            assert!(t.bw(true, DistClass::Local) > t.bw(true, DistClass::TwoHop));
            assert!(t.bw(false, DistClass::Local) > t.bw(false, DistClass::TwoHop));
            // The paper's key observation: sequential REMOTE beats random
            // LOCAL by a wide margin (2.92x on Intel).
            assert!(t.bw(true, DistClass::TwoHop) > 2.0 * t.bw(false, DistClass::Local));
        }
    }

    #[test]
    fn paper_headline_ratios_hold() {
        let t = BandwidthTable::intel80();
        // 2101 / 720 = 2.92x and 2101 / 307 = 6.85x, quoted in the abstract.
        let seq2_over_randlocal = t.bw(true, DistClass::TwoHop) / t.bw(false, DistClass::Local);
        let seq2_over_rand2 = t.bw(true, DistClass::TwoHop) / t.bw(false, DistClass::TwoHop);
        assert!((seq2_over_randlocal - 2.92).abs() < 0.01);
        assert!((seq2_over_rand2 - 6.85).abs() < 0.01);
    }
}
