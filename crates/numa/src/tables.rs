//! Latency and bandwidth tables, populated from the paper's measurements.
//!
//! Figure 3(b) gives load/store latency in cycles per hop distance; Figure 4
//! gives sequential and random bandwidth in MB/s per hop distance. The AMD
//! machine distinguishes two kinds of one-hop distance (two dies of the same
//! socket vs. adjacent sockets), so distances are modelled as four
//! [`DistClass`] values rather than a plain hop count.

use serde::{Deserialize, Serialize};

/// Distance class between two memory nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistClass {
    /// Same node: local DRAM.
    Local,
    /// One hop within a socket (the two dies of an AMD multi-chip module).
    OneHopIntra,
    /// One hop across sockets.
    OneHop,
    /// Two hops.
    TwoHop,
}

/// Memory tier of a node: a small fast tier (DRAM) or a big slow tier
/// (Optane-class persistent memory / CXL-attached capacity memory).
///
/// Tiers *compose* with [`DistClass`]: an access still has a hop distance to
/// the owning node, and on top of that the owning node's tier selects which
/// latency/bandwidth row is charged. The slow-tier rows are calibrated from
/// the Optane single-machine graph-analytics measurements (see
/// `docs/TIERING.md`): ~3.4× DRAM load latency, sequential bandwidth ÷2.6,
/// random bandwidth ÷8, with an extra write penalty.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierClass {
    /// DRAM: the paper's measured tables apply unchanged.
    #[default]
    Fast,
    /// Capacity tier behind the fast tier, with its own table rows.
    Slow,
}

impl TierClass {
    /// Both tiers, fast first.
    pub const ALL: [TierClass; 2] = [TierClass::Fast, TierClass::Slow];

    /// Index into per-tier tables (`Fast = 0`, `Slow = 1`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TierClass::Fast => 0,
            TierClass::Slow => 1,
        }
    }

    /// True for the slow (capacity) tier.
    #[inline]
    pub fn is_slow(self) -> bool {
        self == TierClass::Slow
    }
}

/// Slow-tier load-latency multiplier over DRAM (Optane random read ≈ 3.4×).
pub const SLOW_LOAD_FACTOR: f64 = 3.4;
/// Slow-tier store-latency multiplier over DRAM (write path is costlier than
/// the read path on persistent memory).
pub const SLOW_STORE_FACTOR: f64 = 4.6;
/// Slow-tier sequential bandwidth is DRAM ÷ this factor.
pub const SLOW_SEQ_BW_DIVISOR: f64 = 2.6;
/// Slow-tier random bandwidth is DRAM ÷ this factor (the Optane paper's
/// headline asymmetry: random reads collapse much harder than sequential).
pub const SLOW_RAND_BW_DIVISOR: f64 = 8.0;

#[inline]
fn scale4(a: [f64; 4], f: f64) -> [f64; 4] {
    [a[0] * f, a[1] * f, a[2] * f, a[3] * f]
}

impl DistClass {
    /// All classes, in increasing distance order.
    pub const ALL: [DistClass; 4] = [
        DistClass::Local,
        DistClass::OneHopIntra,
        DistClass::OneHop,
        DistClass::TwoHop,
    ];

    /// Index into per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            DistClass::Local => 0,
            DistClass::OneHopIntra => 1,
            DistClass::OneHop => 2,
            DistClass::TwoHop => 3,
        }
    }

    /// Collapse to a hop count (0, 1 or 2).
    #[inline]
    pub fn hops(self) -> usize {
        match self {
            DistClass::Local => 0,
            DistClass::OneHopIntra | DistClass::OneHop => 1,
            DistClass::TwoHop => 2,
        }
    }

    /// True for any non-local class.
    #[inline]
    pub fn is_remote(self) -> bool {
        self != DistClass::Local
    }
}

/// Load/store latency in CPU cycles per distance class (paper Figure 3(b)).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Load latency in cycles, indexed by [`DistClass::index`].
    pub load_cycles: [f64; 4],
    /// Store latency in cycles, indexed by [`DistClass::index`].
    pub store_cycles: [f64; 4],
    /// Slow-tier load latency in cycles per distance class. Legacy specs
    /// without the field deserialize to the intel80-derived calibration.
    #[serde(default = "default_slow_load")]
    pub slow_load_cycles: [f64; 4],
    /// Slow-tier store latency in cycles per distance class.
    #[serde(default = "default_slow_store")]
    pub slow_store_cycles: [f64; 4],
}

fn default_slow_load() -> [f64; 4] {
    LatencyTable::intel80().slow_load_cycles
}

fn default_slow_store() -> [f64; 4] {
    LatencyTable::intel80().slow_store_cycles
}

impl LatencyTable {
    /// Figure 3(b), 80-core Intel Xeon machine. The one-hop-intra column is
    /// unused on Intel (no multi-die sockets) and mirrors the one-hop value.
    pub fn intel80() -> Self {
        let load_cycles = [117.0, 271.0, 271.0, 372.0];
        let store_cycles = [108.0, 304.0, 304.0, 409.0];
        LatencyTable {
            load_cycles,
            store_cycles,
            slow_load_cycles: scale4(load_cycles, SLOW_LOAD_FACTOR),
            slow_store_cycles: scale4(store_cycles, SLOW_STORE_FACTOR),
        }
    }

    /// Figure 3(b), 64-core AMD Opteron machine. The paper reports a single
    /// one-hop number, reused for both one-hop classes.
    pub fn amd64() -> Self {
        let load_cycles = [228.0, 419.0, 419.0, 498.0];
        let store_cycles = [256.0, 463.0, 463.0, 544.0];
        LatencyTable {
            load_cycles,
            store_cycles,
            slow_load_cycles: scale4(load_cycles, SLOW_LOAD_FACTOR),
            slow_store_cycles: scale4(store_cycles, SLOW_STORE_FACTOR),
        }
    }

    /// Load latency for a distance class, in cycles (fast tier).
    #[inline]
    pub fn load(&self, d: DistClass) -> f64 {
        self.load_cycles[d.index()]
    }

    /// Store latency for a distance class, in cycles (fast tier).
    #[inline]
    pub fn store(&self, d: DistClass) -> f64 {
        self.store_cycles[d.index()]
    }

    /// Load latency for a distance class on a given tier, in cycles.
    #[inline]
    pub fn load_t(&self, d: DistClass, t: TierClass) -> f64 {
        match t {
            TierClass::Fast => self.load_cycles[d.index()],
            TierClass::Slow => self.slow_load_cycles[d.index()],
        }
    }

    /// Store latency for a distance class on a given tier, in cycles.
    #[inline]
    pub fn store_t(&self, d: DistClass, t: TierClass) -> f64 {
        match t {
            TierClass::Fast => self.store_cycles[d.index()],
            TierClass::Slow => self.slow_store_cycles[d.index()],
        }
    }
}

/// Sequential and random single-stream bandwidth in MB/s per distance class
/// (paper Figure 4). 1 MB/s ≡ 1 byte/µs, which the cost model exploits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BandwidthTable {
    /// Sequential-stream bandwidth, MB/s, indexed by [`DistClass::index`].
    pub seq_mbs: [f64; 4],
    /// Random-access bandwidth, MB/s, indexed by [`DistClass::index`].
    pub rand_mbs: [f64; 4],
    /// Bandwidth of interleaved allocation (pages round-robin over all
    /// nodes), MB/s: `[sequential, random]`. Reported by the paper as a
    /// separate column; the cost model reproduces it from the per-class mix,
    /// and the Figure 4 harness checks the two agree in shape.
    pub interleaved_mbs: [f64; 2],
    /// Slow-tier sequential bandwidth, MB/s per distance class. Legacy specs
    /// without the field deserialize to the intel80-derived calibration.
    #[serde(default = "default_slow_seq")]
    pub slow_seq_mbs: [f64; 4],
    /// Slow-tier random bandwidth, MB/s per distance class.
    #[serde(default = "default_slow_rand")]
    pub slow_rand_mbs: [f64; 4],
}

fn default_slow_seq() -> [f64; 4] {
    BandwidthTable::intel80().slow_seq_mbs
}

fn default_slow_rand() -> [f64; 4] {
    BandwidthTable::intel80().slow_rand_mbs
}

impl BandwidthTable {
    /// Figure 4, 80-core Intel Xeon machine.
    pub fn intel80() -> Self {
        let seq_mbs = [3207.0, 2455.0, 2455.0, 2101.0];
        let rand_mbs = [720.0, 348.0, 348.0, 307.0];
        BandwidthTable {
            seq_mbs,
            rand_mbs,
            interleaved_mbs: [2333.0, 344.0],
            slow_seq_mbs: scale4(seq_mbs, 1.0 / SLOW_SEQ_BW_DIVISOR),
            slow_rand_mbs: scale4(rand_mbs, 1.0 / SLOW_RAND_BW_DIVISOR),
        }
    }

    /// Figure 4, 64-core AMD Opteron machine. The paper's two one-hop values
    /// (2806/2406 sequential, 509/487 random) distinguish intra-socket from
    /// inter-socket one-hop distance.
    pub fn amd64() -> Self {
        let seq_mbs = [3241.0, 2806.0, 2406.0, 1997.0];
        let rand_mbs = [533.0, 509.0, 487.0, 415.0];
        BandwidthTable {
            seq_mbs,
            rand_mbs,
            interleaved_mbs: [2509.0, 466.0],
            slow_seq_mbs: scale4(seq_mbs, 1.0 / SLOW_SEQ_BW_DIVISOR),
            slow_rand_mbs: scale4(rand_mbs, 1.0 / SLOW_RAND_BW_DIVISOR),
        }
    }

    /// Single-stream bandwidth for an access pattern and distance, MB/s
    /// (fast tier).
    #[inline]
    pub fn bw(&self, sequential: bool, d: DistClass) -> f64 {
        if sequential {
            self.seq_mbs[d.index()]
        } else {
            self.rand_mbs[d.index()]
        }
    }

    /// Single-stream bandwidth for a pattern, distance and tier, MB/s.
    #[inline]
    pub fn bw_t(&self, sequential: bool, d: DistClass, t: TierClass) -> f64 {
        match t {
            TierClass::Fast => self.bw(sequential, d),
            TierClass::Slow => {
                if sequential {
                    self.slow_seq_mbs[d.index()]
                } else {
                    self.slow_rand_mbs[d.index()]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_class_round_trip() {
        for d in DistClass::ALL {
            assert_eq!(DistClass::ALL[d.index()], d);
        }
    }

    #[test]
    fn hops_collapse() {
        assert_eq!(DistClass::Local.hops(), 0);
        assert_eq!(DistClass::OneHopIntra.hops(), 1);
        assert_eq!(DistClass::OneHop.hops(), 1);
        assert_eq!(DistClass::TwoHop.hops(), 2);
        assert!(!DistClass::Local.is_remote());
        assert!(DistClass::TwoHop.is_remote());
    }

    #[test]
    fn latency_monotone_in_distance() {
        for t in [LatencyTable::intel80(), LatencyTable::amd64()] {
            assert!(t.load(DistClass::Local) < t.load(DistClass::OneHop));
            assert!(t.load(DistClass::OneHop) < t.load(DistClass::TwoHop));
            assert!(t.store(DistClass::Local) < t.store(DistClass::TwoHop));
        }
    }

    #[test]
    fn bandwidth_monotone_and_seq_beats_rand() {
        for t in [BandwidthTable::intel80(), BandwidthTable::amd64()] {
            assert!(t.bw(true, DistClass::Local) > t.bw(true, DistClass::TwoHop));
            assert!(t.bw(false, DistClass::Local) > t.bw(false, DistClass::TwoHop));
            // The paper's key observation: sequential REMOTE beats random
            // LOCAL by a wide margin (2.92x on Intel).
            assert!(t.bw(true, DistClass::TwoHop) > 2.0 * t.bw(false, DistClass::Local));
        }
    }

    #[test]
    fn tier_class_round_trip_and_default() {
        for t in TierClass::ALL {
            assert_eq!(TierClass::ALL[t.index()], t);
        }
        assert_eq!(TierClass::default(), TierClass::Fast);
        assert!(TierClass::Slow.is_slow());
        assert!(!TierClass::Fast.is_slow());
    }

    #[test]
    fn fast_tier_rows_are_the_paper_tables() {
        let lat = LatencyTable::intel80();
        let bw = BandwidthTable::intel80();
        for d in DistClass::ALL {
            assert_eq!(
                lat.load_t(d, TierClass::Fast).to_bits(),
                lat.load(d).to_bits()
            );
            assert_eq!(
                lat.store_t(d, TierClass::Fast).to_bits(),
                lat.store(d).to_bits()
            );
            for seq in [true, false] {
                assert_eq!(
                    bw.bw_t(seq, d, TierClass::Fast).to_bits(),
                    bw.bw(seq, d).to_bits()
                );
            }
        }
    }

    #[test]
    fn slow_tier_calibration_ratios() {
        for (lat, bw) in [
            (LatencyTable::intel80(), BandwidthTable::intel80()),
            (LatencyTable::amd64(), BandwidthTable::amd64()),
        ] {
            for d in DistClass::ALL {
                let load_x = lat.load_t(d, TierClass::Slow) / lat.load(d);
                let store_x = lat.store_t(d, TierClass::Slow) / lat.store(d);
                assert!((load_x - SLOW_LOAD_FACTOR).abs() < 1e-12);
                assert!((store_x - SLOW_STORE_FACTOR).abs() < 1e-12);
                let seq_div = bw.bw(true, d) / bw.bw_t(true, d, TierClass::Slow);
                let rand_div = bw.bw(false, d) / bw.bw_t(false, d, TierClass::Slow);
                assert!((seq_div - SLOW_SEQ_BW_DIVISOR).abs() < 1e-9);
                assert!((rand_div - SLOW_RAND_BW_DIVISOR).abs() < 1e-9);
            }
            // The Optane asymmetry: slow sequential still beats slow random
            // by a wider margin than on DRAM.
            assert!(
                bw.bw_t(true, DistClass::Local, TierClass::Slow)
                    > 3.0 * bw.bw_t(false, DistClass::Local, TierClass::Slow)
            );
        }
    }

    #[test]
    fn legacy_tables_deserialize_with_slow_defaults() {
        let json = serde_json::to_string(&BandwidthTable::intel80()).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("slow_seq_mbs");
        obj.remove("slow_rand_mbs");
        let legacy: BandwidthTable = serde_json::from_value(v).unwrap();
        assert_eq!(
            legacy.slow_seq_mbs[0].to_bits(),
            BandwidthTable::intel80().slow_seq_mbs[0].to_bits()
        );
        let json = serde_json::to_string(&LatencyTable::amd64()).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("slow_load_cycles");
        obj.remove("slow_store_cycles");
        let legacy: LatencyTable = serde_json::from_value(v).unwrap();
        // Defaults come from the intel80 calibration, not amd64's own rows.
        assert_eq!(
            legacy.slow_load_cycles[0].to_bits(),
            LatencyTable::intel80().slow_load_cycles[0].to_bits()
        );
    }

    #[test]
    fn paper_headline_ratios_hold() {
        let t = BandwidthTable::intel80();
        // 2101 / 720 = 2.92x and 2101 / 307 = 6.85x, quoted in the abstract.
        let seq2_over_randlocal = t.bw(true, DistClass::TwoHop) / t.bw(false, DistClass::Local);
        let seq2_over_rand2 = t.bw(true, DistClass::TwoHop) / t.bw(false, DistClass::TwoHop);
        assert!((seq2_over_randlocal - 2.92).abs() < 0.01);
        assert!((seq2_over_rand2 - 6.85).abs() < 0.01);
    }
}
