//! # polymer-numa — a simulated cc-NUMA machine for graph analytics
//!
//! This crate is the hardware substrate of the Polymer reproduction. The paper
//! ("NUMA-Aware Graph-Structured Analytics", PPoPP'15) evaluates on an 80-core
//! 8-socket Intel Xeon and a 64-core 8-node AMD Opteron machine; this crate
//! models those machines so that the graph engines built on top of it can be
//! compared under exactly the mechanisms the paper identifies:
//!
//! * **Topology** ([`NumaTopology`]): sockets, cores, and the hop distance
//!   between every pair of memory nodes (Intel twisted hypercube, AMD
//!   HyperTransport multi-chip modules).
//! * **Access cost tables** ([`LatencyTable`], [`BandwidthTable`]): load/store
//!   latency per hop and sequential/random bandwidth per hop, populated with
//!   the paper's measured values (Figures 3(b) and 4).
//! * **Placement** ([`AllocPolicy`], [`Machine`]): every allocation owns a
//!   page-granular map from virtual page to home node, supporting the
//!   first-touch, interleaved, centralized, bound, and chunked
//!   (contiguous-virtual / distributed-physical) policies of Sections 3.1
//!   and 4.2.
//! * **Instrumented arrays** ([`NumaArray`], [`NumaAtomicArray`]): real data,
//!   every access classified as sequential/random × local/remote × read/write
//!   through an [`AccessCtx`] bound to a simulated core.
//! * **Cost model** ([`CostModel`]): integrates classified access streams into
//!   simulated phase times, including per-node memory-controller and
//!   per-link interconnect congestion and an analytic last-level-cache model.
//! * **Executor** ([`SimExecutor`]): runs bulk-synchronous phases of
//!   per-thread tasks deterministically on the host while advancing a
//!   simulated clock.
//!
//! The arrays and float atomics are real `Sync` types — engine code written
//! against them is data-race free under genuine multithreading as well; the
//! simulator merely chooses to run tasks deterministically so that the
//! experiments in `polymer-bench` are reproducible.
//!
//! ```
//! use polymer_numa::{Machine, MachineSpec, AllocPolicy, SimExecutor};
//!
//! let machine = Machine::new(MachineSpec::intel80());
//! let data = machine.alloc_array::<u64>("demo", 1 << 16, AllocPolicy::Interleaved);
//! let mut sim = SimExecutor::new(&machine, machine.topology().total_cores());
//! let cost = sim.run_phase("touch", |tid, ctx| {
//!     let n = data.len();
//!     let per = n / ctx.num_threads();
//!     for i in tid * per..(tid + 1) * per {
//!         data.get(ctx, i);
//!     }
//! });
//! assert!(cost.time_us > 0.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod atomicf;
pub mod compress;
pub mod cost;
pub mod ctx;
pub mod machine;
pub mod policy;
pub mod report;
pub mod shard;
pub mod sim;
pub mod tables;
pub mod tier;
pub mod topology;

pub use array::{Atom, NumaArray, NumaAtomicArray, SeqWriter};
pub use atomicf::{AtomicF32, AtomicF64};
pub use compress::{compressed_topology, set_compressed_topology, CompressedLists};
pub use cost::{BarrierKind, CostConfig, CostModel, PhaseCost, SocketCost};
pub use ctx::{bulk_accounting, set_bulk_accounting, AccessCtx, AccessStats, Pattern, Rw};
pub use machine::{AllocId, Machine, MemUsage, SpillPolicy};
pub use policy::AllocPolicy;
pub use polymer_faults::{FaultPlan, PolymerError, PolymerResult};
pub use polymer_trace::{
    chrome_trace_json, phase_table, BarrierSpan, PhaseSpan, SharedTracer, SocketSample,
    TraceBuffer, Tracer, WorkerSpan,
};
pub use report::{MemoryReport, RemoteAccessReport};
pub use shard::{set_sim_sharding, sim_sharding, SimShardMode};
pub use sim::{PhaseKind, RunClock, SimExecutor};
pub use tables::{
    BandwidthTable, DistClass, LatencyTable, TierClass, SLOW_LOAD_FACTOR, SLOW_RAND_BW_DIVISOR,
    SLOW_SEQ_BW_DIVISOR, SLOW_STORE_FACTOR,
};
pub use tier::{TierPolicy, TierRuntime};
pub use topology::{MachineSpec, NodeId, NumaTopology, PAGE_SIZE};
