//! The deterministic bulk-synchronous executor.
//!
//! [`SimExecutor`] runs phases of per-simulated-thread tasks on the host,
//! integrates their classified access streams through the [`CostModel`], and
//! advances a simulated clock. Tasks run sequentially in thread-id order, so
//! every experiment is exactly reproducible; the data structures they operate
//! on are nonetheless real `Sync` types, so the same engine code is valid
//! under genuine multithreading.
//!
//! ## Tracing
//!
//! When [`SimExecutor::enable_trace`] is called, every phase and barrier is
//! also recorded into a [`polymer_trace::TraceBuffer`] carried by the
//! [`RunClock`] — spans on the simulated timeline, per-socket counters (from
//! [`PhaseCost::per_socket`](crate::cost::PhaseCost)), page-spill events, and
//! iteration stamps set through [`SimExecutor::set_iteration`]. Tracing never
//! changes simulated time: the cost integration is identical either way, and
//! an integration test pins traced and untraced runs to bit-identical clocks.
//!
//! ```
//! use polymer_numa::{Machine, MachineSpec, SimExecutor};
//!
//! let machine = Machine::new(MachineSpec::test2());
//! let mut sim = SimExecutor::new(&machine, 2);
//! sim.enable_trace();
//! sim.set_iteration(Some(0));
//! sim.run_phase("noop", |_, _| {});
//! sim.charge_barrier();
//! let trace = sim.clock().trace.buffer().unwrap();
//! assert_eq!(trace.phases.len(), 1);
//! assert_eq!(trace.barriers[0].iteration, Some(0));
//! ```

use std::collections::HashMap;

use polymer_trace::{PhaseSpan, SocketSample, Tracer};

use crate::cost::{BarrierKind, CostConfig, CostModel, PhaseCost, SocketCost};
use crate::ctx::{AccessCtx, AccessStats, HeatMode};
use crate::machine::{AllocId, Machine};
use crate::tier::TierRuntime;
use crate::topology::NodeId;

/// Category labels for phase-time breakdowns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Edge-parallel scatter work.
    Scatter,
    /// Vertex-parallel gather/apply work.
    Gather,
    /// Anything else.
    Other,
}

/// The simulated run clock: accumulated phase costs, barrier time, and a
/// per-phase-name time breakdown.
#[derive(Clone, Debug, Default)]
pub struct RunClock {
    /// Accumulated cost over every phase so far (times are sums).
    pub total: PhaseCost,
    /// Simulated time spent in barriers, µs.
    pub barrier_us: f64,
    /// Number of barriers charged.
    pub barriers: u64,
    /// Per-phase-name accumulated (time µs, invocation count).
    pub by_phase: HashMap<&'static str, (f64, u64)>,
    /// Timeline of phases, barriers, and per-socket counters, recorded when
    /// tracing is enabled ([`SimExecutor::enable_trace`]); [`Tracer::Off`]
    /// (and zero-cost) otherwise. Export with
    /// [`polymer_trace::chrome_trace_json`] or [`polymer_trace::phase_table`].
    pub trace: Tracer,
}

impl RunClock {
    /// Total simulated time including barriers, in µs.
    pub fn elapsed_us(&self) -> f64 {
        self.total.time_us + self.barrier_us
    }

    /// Total simulated time in seconds.
    pub fn elapsed_sec(&self) -> f64 {
        self.elapsed_us() / 1e6
    }

    /// Serialize the recorded timeline as Chrome trace-event JSON (open in
    /// `chrome://tracing` or Perfetto). An empty-but-valid document unless
    /// tracing was enabled.
    pub fn to_chrome_trace(&self) -> String {
        match self.trace.buffer() {
            Some(buf) => polymer_trace::chrome_trace_json(buf),
            None => polymer_trace::chrome_trace_json(&Default::default()),
        }
    }
}

/// Convert the cost model's per-socket counters into trace samples (same
/// layout; the types differ only so `polymer-trace` stays dependency-free).
fn socket_samples(per_socket: &[SocketCost]) -> Vec<SocketSample> {
    per_socket
        .iter()
        .map(|c| SocketSample {
            loads: c.loads,
            stores: c.stores,
            count: c.count,
            bytes: c.bytes,
            llc_hit_bytes: c.llc_hit_bytes,
            llc_miss_bytes: c.llc_miss_bytes,
            busy_us: c.busy_us,
        })
        .collect()
}

/// Deterministic executor over `num_threads` simulated threads bound
/// node-major to the machine's cores.
pub struct SimExecutor {
    machine: Machine,
    model: CostModel,
    barrier_kind: BarrierKind,
    nodes: Vec<NodeId>,
    ctxs: Vec<AccessCtx>,
    /// Contiguous tid ranges sharing a home node — the host-parallel shards
    /// of [`SimExecutor::run_phase_split`].
    shards: Vec<std::ops::Range<usize>>,
    clock: RunClock,
    /// Spill counter at the last trace checkpoint, for per-phase deltas.
    spilled_seen: u64,
    /// Tier promotion engine, run at every phase boundary when attached
    /// ([`SimExecutor::set_tiering`]). `None` on single-tier machines and on
    /// tiered machines running without promotion (static placement).
    tier: Option<TierRuntime>,
}

impl SimExecutor {
    /// An executor with the default cost model and the NUMA-aware barrier.
    pub fn new(machine: &Machine, num_threads: usize) -> Self {
        Self::with_config(
            machine,
            num_threads,
            CostConfig::default(),
            BarrierKind::SenseNuma,
        )
    }

    /// An executor with explicit cost-model constants and barrier family.
    pub fn with_config(
        machine: &Machine,
        num_threads: usize,
        config: CostConfig,
        barrier_kind: BarrierKind,
    ) -> Self {
        let topo = machine.topology();
        assert!(
            num_threads >= 1 && num_threads <= topo.total_cores(),
            "thread count {num_threads} exceeds machine cores {}",
            topo.total_cores()
        );
        let ctxs: Vec<AccessCtx> = (0..num_threads)
            .map(|t| AccessCtx::with_threads(machine, t, t, num_threads))
            .collect();
        let nodes: Vec<NodeId> = ctxs.iter().map(|c| c.node()).collect();
        let shards = crate::shard::shard_ranges(&nodes);
        let mut sim = SimExecutor {
            machine: machine.clone(),
            model: CostModel::new(machine, config),
            barrier_kind,
            nodes,
            ctxs,
            shards,
            clock: RunClock::default(),
            spilled_seen: machine.spilled_pages(),
            tier: None,
        };
        // Machines carrying a tier policy hand every executor a fresh
        // promotion runtime — engines inherit tiering with no code of their
        // own (see `Machine::set_tier_policy`).
        if machine.is_tiered() {
            if let Some(policy) = machine.tier_policy() {
                sim.set_tiering(TierRuntime::new(policy));
            }
        }
        sim
    }

    /// Attach a tier promotion engine: at every phase boundary the runtime
    /// drains the page heat collected during the phase, migrates hot
    /// slow-tier pages to the fast tier (demoting least-recently-promoted
    /// pages when the fast tier is full), and the migrations are charged as
    /// a synthetic `tier-migrate` phase on the clock. Panics on single-tier
    /// machines — there is nothing to promote to.
    pub fn set_tiering(&mut self, runtime: TierRuntime) {
        assert!(
            self.machine.is_tiered(),
            "set_tiering requires a tiered machine spec"
        );
        let mode = runtime.policy().heat_mode();
        for ctx in &mut self.ctxs {
            ctx.set_heat_mode(mode);
        }
        self.tier = Some(runtime);
    }

    /// The attached tier runtime, if any.
    pub fn tiering(&self) -> Option<&TierRuntime> {
        self.tier.as_ref()
    }

    /// Detach the tier runtime (heat collection stops; placements freeze).
    pub fn clear_tiering(&mut self) -> Option<TierRuntime> {
        for ctx in &mut self.ctxs {
            ctx.set_heat_mode(HeatMode::Off);
        }
        self.tier.take()
    }

    /// Record a phase/barrier timeline with per-socket counters into the
    /// clock's [`Tracer`] (export via [`RunClock::to_chrome_trace`] or query
    /// through [`polymer_trace::TraceBuffer`]). Tracing does not change
    /// simulated time.
    pub fn enable_trace(&mut self) {
        self.clock
            .trace
            .enable(self.num_sockets(), self.num_threads());
        self.spilled_seen = self.machine.spilled_pages();
    }

    /// Stamp subsequently recorded spans with an iteration/superstep number
    /// (no-op unless tracing is enabled).
    pub fn set_iteration(&mut self, iteration: Option<u64>) {
        self.clock.trace.set_iteration(iteration);
    }

    /// The machine this executor runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of simulated threads.
    pub fn num_threads(&self) -> usize {
        self.ctxs.len()
    }

    /// Number of distinct sockets the threads span.
    pub fn num_sockets(&self) -> usize {
        let mut seen = [false; crate::topology::MAX_NODES];
        let mut n = 0;
        for &node in &self.nodes {
            if !seen[node] {
                seen[node] = true;
                n += 1;
            }
        }
        n
    }

    /// The home node of simulated thread `tid`.
    pub fn node_of_thread(&self, tid: usize) -> NodeId {
        self.nodes[tid]
    }

    /// Threads (tids) bound to cores of `node`.
    pub fn threads_on_node(&self, node: NodeId) -> Vec<usize> {
        (0..self.ctxs.len())
            .filter(|&t| self.nodes[t] == node)
            .collect()
    }

    /// Change the barrier family charged by [`SimExecutor::charge_barrier`]
    /// (the Figure 10 ablation).
    pub fn set_barrier_kind(&mut self, kind: BarrierKind) {
        self.barrier_kind = kind;
    }

    /// The currently configured barrier family.
    pub fn barrier_kind(&self) -> BarrierKind {
        self.barrier_kind
    }

    /// Run one bulk-synchronous phase: `task(tid, ctx)` is invoked once per
    /// simulated thread; the phase's simulated time is the cost-model maximum
    /// over threads and congested resources. Returns the phase cost and
    /// advances the clock.
    pub fn run_phase(
        &mut self,
        name: &'static str,
        mut task: impl FnMut(usize, &mut AccessCtx),
    ) -> PhaseCost {
        for (tid, ctx) in self.ctxs.iter_mut().enumerate() {
            task(tid, ctx);
        }
        self.finish_phase(name)
    }

    /// Run one bulk-synchronous phase split into a side-effect-free compute
    /// half and a serially replayed publish half, allowing the compute half
    /// to run host-parallel (one host thread per simulated socket) under the
    /// global [`crate::SimShardMode`].
    ///
    /// `compute(tid, ctx)` is invoked once per simulated thread and returns a
    /// per-thread payload; when sharding is active, shards run concurrently
    /// but tids within a shard still run serially in ascending order.
    /// `publish(tid, ctx, payload)` then runs serially in tid order on the
    /// calling thread. Cost integration is identical to
    /// [`SimExecutor::run_phase`], and the result is **bit-identical**
    /// whether or not host threads are used, under two contract obligations
    /// on the caller:
    ///
    /// * compute must not observe values written by another tid's compute of
    ///   the same phase (reads of state frozen at the phase boundary, and
    ///   writes that are disjoint by construction — e.g. own-partition
    ///   targets or reserved ranges — are both fine);
    /// * any accounted access whose *value* or *order* depends on other
    ///   tids' same-phase writes must be deferred to `publish` (combine into
    ///   shared accumulators, shared-bitmap test-and-set, cross-thread
    ///   queue handoff).
    ///
    /// Both halves charge the same per-thread [`AccessCtx`]: statistics are
    /// additive per `(context, allocation)` and classification state is
    /// per-allocation, so moving an allocation's accesses between the two
    /// halves never changes that allocation's classified stream as long as
    /// its per-thread access order is preserved.
    pub fn run_phase_split<D: Send>(
        &mut self,
        name: &'static str,
        compute: impl Fn(usize, &mut AccessCtx) -> D + Sync,
        mut publish: impl FnMut(usize, &mut AccessCtx, D),
    ) -> PhaseCost {
        let payloads: Vec<D> = if crate::shard::parallel_enabled(self.shards.len()) {
            crate::shard::run_sharded(&mut self.ctxs, &self.shards, &compute)
        } else {
            self.ctxs
                .iter_mut()
                .enumerate()
                .map(|(tid, ctx)| compute(tid, ctx))
                .collect()
        };
        for (tid, (ctx, payload)) in self.ctxs.iter_mut().zip(payloads).enumerate() {
            publish(tid, ctx, payload);
        }
        self.finish_phase(name)
    }

    /// Collect per-thread statistics in tid order, integrate them through
    /// the cost model, and advance the clock — the serial merge shared by
    /// [`SimExecutor::run_phase`] and [`SimExecutor::run_phase_split`].
    fn finish_phase(&mut self, name: &'static str) -> PhaseCost {
        let threads: Vec<(NodeId, AccessStats)> = self
            .ctxs
            .iter_mut()
            .enumerate()
            .map(|(t, ctx)| (self.nodes[t], ctx.take_stats()))
            .collect();
        let cost = self.model.phase_cost(&threads);
        let start_us = self.clock.elapsed_us();
        let spilled_now = self.machine.spilled_pages();
        let spilled_delta = spilled_now - self.spilled_seen;
        self.spilled_seen = spilled_now;
        self.clock.trace.record(|buf| {
            // Threads bind node-major, so the issuing sockets are exactly the
            // first `buf.sockets` machine nodes — the buffer's lanes.
            let lanes = buf.sockets.min(cost.per_socket.len());
            buf.push_phase(PhaseSpan {
                name,
                iteration: buf.iteration(),
                start_us,
                dur_us: cost.time_us,
                per_thread_us: cost.per_thread_us.clone(),
                per_socket: socket_samples(&cost.per_socket[..lanes]),
                spilled_pages: spilled_delta,
            });
        });
        self.clock.total.accumulate(&cost);
        let e = self.clock.by_phase.entry(name).or_insert((0.0, 0));
        e.0 += cost.time_us;
        e.1 += 1;
        if self.tier.is_some() {
            self.run_tier_boundary();
        }
        cost
    }

    /// Drain the phase's page heat, let the tier runtime migrate pages, and
    /// charge the migration traffic as a synthetic `tier-migrate` phase.
    /// Runs after the main phase's `take_stats`, so every context re-resolves
    /// page homes at its next access (tiered contexts drop their page caches
    /// at `take_stats`).
    fn run_tier_boundary(&mut self) {
        // Merge per-context heat into one per-(alloc, page) view.
        let mut heat: Vec<(AllocId, Vec<u32>)> = Vec::new();
        for ctx in &mut self.ctxs {
            for (alloc, pages) in ctx.take_heat() {
                match heat.iter_mut().find(|(a, _)| *a == alloc) {
                    Some((_, agg)) => {
                        if agg.len() < pages.len() {
                            agg.resize(pages.len(), 0);
                        }
                        for (slot, h) in agg.iter_mut().zip(pages.iter()) {
                            *slot = slot.saturating_add(*h);
                        }
                    }
                    None => heat.push((alloc, pages)),
                }
            }
        }
        heat.sort_by_key(|(a, _)| *a);
        let mut rt = self.tier.take().expect("tier runtime attached");
        let migrations = rt.run_boundary(&self.machine, &heat);
        self.tier = Some(rt);
        if migrations.is_empty() {
            return;
        }
        // Charge the copies on thread 0's context — migration is a serial
        // runtime service, like the kernel's migration daemon — and integrate
        // them as their own phase so the overhead is visible per se.
        for m in &migrations {
            self.ctxs[0].record_migration(m.alloc, m.bytes, m.from, m.to);
        }
        let threads: Vec<(NodeId, AccessStats)> = self
            .ctxs
            .iter_mut()
            .enumerate()
            .map(|(t, ctx)| (self.nodes[t], ctx.take_stats()))
            .collect();
        let cost = self.model.phase_cost(&threads);
        let start_us = self.clock.elapsed_us();
        self.clock.trace.record(|buf| {
            let lanes = buf.sockets.min(cost.per_socket.len());
            buf.push_phase(PhaseSpan {
                name: "tier-migrate",
                iteration: buf.iteration(),
                start_us,
                dur_us: cost.time_us,
                per_thread_us: cost.per_thread_us.clone(),
                per_socket: socket_samples(&cost.per_socket[..lanes]),
                spilled_pages: 0,
            });
        });
        self.clock.total.accumulate(&cost);
        let e = self
            .clock
            .by_phase
            .entry("tier-migrate")
            .or_insert((0.0, 0));
        e.0 += cost.time_us;
        e.1 += 1;
    }

    /// Charge one global barrier at the configured family's cost, scaled by
    /// the machine spec's `barrier_scale` (see [`crate::MachineSpec`]).
    pub fn charge_barrier(&mut self) {
        let us = self.barrier_kind.cost_us(self.num_sockets()) * self.machine.spec().barrier_scale;
        let start_us = self.clock.elapsed_us();
        self.clock
            .trace
            .record(|buf| buf.push_barrier(start_us, us));
        self.clock.barrier_us += us;
        self.clock.barriers += 1;
    }

    /// The accumulated clock.
    pub fn clock(&self) -> &RunClock {
        &self.clock
    }

    /// Reset the clock (e.g. to exclude graph-construction phases from a
    /// timed computation stage, as the paper does). Tracing remains enabled
    /// if it was, recording into a fresh buffer.
    pub fn reset_clock(&mut self) {
        let traced = self.clock.trace.is_enabled();
        self.clock = RunClock::default();
        if traced {
            self.enable_trace();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    #[test]
    fn phases_advance_clock_and_aggregate() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1 << 16, AllocPolicy::Interleaved);
        let mut sim = SimExecutor::new(&m, 4);
        assert_eq!(sim.num_threads(), 4);
        assert_eq!(sim.num_sockets(), 2);
        let c1 = sim.run_phase("scan", |tid, ctx| {
            let per = a.len() / 4;
            for i in tid * per..(tid + 1) * per {
                a.get(ctx, i);
            }
        });
        assert!(c1.time_us > 0.0);
        sim.charge_barrier();
        let c2 = sim.run_phase("scan", |_, _| {});
        assert_eq!(c2.time_us, 0.0);
        let clock = sim.clock();
        assert_eq!(clock.barriers, 1);
        assert!(clock.barrier_us > 0.0);
        assert_eq!(clock.by_phase["scan"].1, 2);
        assert!((clock.elapsed_us() - (c1.time_us + clock.barrier_us)).abs() < 1e-9);
    }

    #[test]
    fn thread_to_node_binding_is_node_major() {
        let m = Machine::new(MachineSpec::intel80());
        let sim = SimExecutor::new(&m, 40);
        assert_eq!(sim.node_of_thread(0), 0);
        assert_eq!(sim.node_of_thread(10), 1);
        assert_eq!(sim.node_of_thread(39), 3);
        assert_eq!(sim.num_sockets(), 4);
        assert_eq!(sim.threads_on_node(2), (20..30).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_kind_switch_changes_cost() {
        let m = Machine::new(MachineSpec::intel80());
        let mut sim = SimExecutor::new(&m, 80);
        sim.charge_barrier();
        let cheap = sim.clock().barrier_us;
        sim.set_barrier_kind(BarrierKind::Pthread);
        sim.charge_barrier();
        let expensive = sim.clock().barrier_us - cheap;
        assert!(expensive > 100.0 * cheap);
    }

    #[test]
    fn reset_clock_clears_everything() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1024, AllocPolicy::Centralized);
        let mut sim = SimExecutor::new(&m, 2);
        sim.run_phase("x", |_, ctx| {
            a.get(ctx, 0);
        });
        sim.charge_barrier();
        sim.reset_clock();
        assert_eq!(sim.clock().elapsed_us(), 0.0);
        assert_eq!(sim.clock().barriers, 0);
    }

    #[test]
    fn trace_records_timeline_and_exports_json() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 4096, AllocPolicy::Centralized);
        let mut sim = SimExecutor::new(&m, 2);
        sim.enable_trace();
        sim.set_iteration(Some(4));
        sim.run_phase("scan", |_, ctx| {
            for i in 0..100 {
                a.get(ctx, i);
            }
        });
        sim.charge_barrier();
        sim.run_phase("apply", |_, _| {});
        let clock = sim.clock();
        let buf = clock.trace.buffer().expect("tracing enabled");
        assert_eq!(buf.phases.len(), 2);
        assert_eq!(buf.barriers.len(), 1);
        assert_eq!(buf.phases[0].name, "scan");
        assert_eq!(buf.phases[0].iteration, Some(4));
        // Two threads bind node-major onto test2's first socket.
        assert_eq!(buf.sockets, 1);
        assert_eq!(buf.workers, 2);
        // Spans are contiguous on the simulated timeline.
        let end0 = buf.phases[0].start_us + buf.phases[0].dur_us;
        assert!((buf.barriers[0].start_us - end0).abs() < 1e-9);
        // The buffer's totals reproduce the clock's.
        assert!((buf.total_barrier_us() - clock.barrier_us).abs() < 1e-9);
        assert!((buf.total_phase_us() - clock.total.time_us).abs() < 1e-9);
        // Per-socket counters rode along from the cost model: node 0 issued
        // the accesses (thread 0 did all the work on a 2-thread test2 box).
        let totals = buf.socket_totals();
        assert_eq!(
            totals.iter().map(|s| s.total_count()).sum::<u64>(),
            clock.total.count_local + clock.total.count_remote
        );
        let json = clock.to_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"scan\""));
        assert!(json.contains("\"barrier-wait\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn trace_disabled_by_default() {
        let m = Machine::new(MachineSpec::test2());
        let mut sim = SimExecutor::new(&m, 1);
        sim.run_phase("x", |_, _| {});
        assert!(!sim.clock().trace.is_enabled());
        assert!(sim.clock().trace.buffer().is_none());
        // Still a valid (empty) chrome document.
        assert!(sim.clock().to_chrome_trace().contains("\"traceEvents\""));
    }

    #[test]
    fn reset_clock_keeps_tracing_enabled_with_fresh_buffer() {
        let m = Machine::new(MachineSpec::test2());
        let mut sim = SimExecutor::new(&m, 2);
        sim.enable_trace();
        sim.run_phase("construct", |_, _| {});
        sim.charge_barrier();
        sim.reset_clock();
        let buf = sim.clock().trace.buffer().expect("still tracing");
        assert!(buf.phases.is_empty() && buf.barriers.is_empty());
        sim.run_phase("compute", |_, _| {});
        assert_eq!(
            sim.clock().trace.buffer().unwrap().phases[0].name,
            "compute"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds machine cores")]
    fn too_many_threads_rejected() {
        let m = Machine::new(MachineSpec::test2());
        SimExecutor::new(&m, 5);
    }

    #[test]
    #[should_panic(expected = "requires a tiered machine")]
    fn tiering_rejected_on_single_tier_machine() {
        let m = Machine::new(MachineSpec::test2());
        let mut sim = SimExecutor::new(&m, 2);
        sim.set_tiering(crate::tier::TierRuntime::new(
            crate::tier::TierPolicy::HotPageLru,
        ));
    }

    #[test]
    fn tiering_promotes_hot_pages_and_charges_migration_phase() {
        use crate::tier::{TierPolicy, TierRuntime};
        let m = Machine::new(MachineSpec::test2_tiered());
        // Hot data starts on the slow tier (node 2).
        let a = m.alloc_array_with("data/hot", 4096, AllocPolicy::OnNode(2), |i| i as u64);
        let mut sim = SimExecutor::new(&m, 2);
        sim.enable_trace();
        sim.set_tiering(TierRuntime::new(TierPolicy::HotPageLru));
        let scan = |_tid: usize, ctx: &mut AccessCtx| {
            for i in 0..a.len() {
                a.get(ctx, i);
            }
        };
        let cold = sim.run_phase("scan", scan);
        // The boundary promoted all touched pages to the fast tier...
        assert!(sim.tiering().unwrap().promotions() > 0);
        assert!(!m.spec().tier_of(a.node_of(0)).is_slow());
        // ...charging the copies on the clock as their own phase.
        let (migrate_us, n) = sim.clock().by_phase["tier-migrate"];
        assert!(migrate_us > 0.0 && n == 1);
        let buf = sim.clock().trace.buffer().unwrap();
        assert!(buf.phases.iter().any(|p| p.name == "tier-migrate"));
        // The same scan now runs faster from the fast tier.
        let warm = sim.run_phase("scan", scan);
        assert!(
            warm.time_us < cold.time_us,
            "post-promotion scan {} must beat slow-tier scan {}",
            warm.time_us,
            cold.time_us
        );
    }

    #[test]
    fn tiering_off_leaves_tiered_clock_untouched_by_heat() {
        use crate::tier::{TierPolicy, TierRuntime};
        // A tiered machine without an attached runtime must behave exactly
        // like static placement: no heat, no migrations, no extra phases.
        let run = |tiering: bool| -> (u64, f64) {
            let m = Machine::new(MachineSpec::test2_tiered());
            let a = m.alloc_array_with("a", 2048, AllocPolicy::OnNode(0), |i| i as u64);
            let mut sim = SimExecutor::new(&m, 2);
            if tiering {
                sim.set_tiering(TierRuntime::new(TierPolicy::FirstTouch));
            }
            sim.run_phase("scan", |_, ctx| {
                for i in 0..a.len() {
                    a.get(ctx, i);
                }
            });
            (
                sim.clock().elapsed_us().to_bits(),
                sim.clock()
                    .by_phase
                    .get("tier-migrate")
                    .map(|e| e.1)
                    .unwrap_or(0) as f64,
            )
        };
        let (plain, m0) = run(false);
        let (tiered, m1) = run(true);
        // Data already fast-resident: the runtime finds nothing to promote,
        // and the clock matches the static run bit-for-bit.
        assert_eq!(plain, tiered);
        assert_eq!(m0, 0.0);
        assert_eq!(m1, 0.0);
    }

    /// One full compute/publish phase per (mode, run): every thread scans a
    /// slice of `a`, computes partial float sums, and the publish half
    /// combines them into a shared accumulator and flags `updated`. Returns
    /// the bit patterns that must match across modes.
    fn split_phase_fingerprint(mode: crate::shard::SimShardMode) -> (u64, f64, f64, String) {
        use crate::shard::{set_sim_sharding, sim_sharding};
        let prev = sim_sharding();
        set_sim_sharding(mode);
        let m = Machine::new(MachineSpec::intel80());
        let a = m.alloc_array_with("a", 1 << 14, AllocPolicy::Interleaved, |i| i as u64);
        let acc = m.alloc_atomic::<f64>("acc", 64, AllocPolicy::OnNode(0));
        let upd = m.alloc_atomic::<u64>("upd", 8, AllocPolicy::OnNode(0));
        let mut sim = SimExecutor::new(&m, 40);
        let nt = sim.num_threads();
        let mut costs = Vec::new();
        for _ in 0..3 {
            let c = sim.run_phase_split(
                "split",
                |tid, ctx| {
                    let per = a.len() / nt;
                    let mut sum = 0.0f64;
                    for v in a.iter_seq(ctx, tid * per..(tid + 1) * per) {
                        sum += (v as f64).sqrt();
                    }
                    (sum, tid % 7)
                },
                |_tid, ctx, (sum, slot)| {
                    acc.fetch_add(ctx, slot, sum);
                    upd.fetch_or(ctx, slot % 8, 1 << slot);
                },
            );
            costs.push(c.time_us);
            sim.charge_barrier();
        }
        set_sim_sharding(prev);
        let accs: String = (0..64)
            .map(|i| format!("{:016x}", acc.raw_load(i).to_bits()))
            .collect();
        (sim.clock().elapsed_us().to_bits(), costs[0], costs[2], accs)
    }

    #[test]
    fn run_phase_split_is_bit_identical_across_shard_modes() {
        use crate::shard::SimShardMode;
        let _guard = crate::shard::TEST_MODE_LOCK.lock().unwrap();
        // `On` forces real host threads even on a single-core host, so this
        // exercises the parallel path everywhere.
        let serial = split_phase_fingerprint(SimShardMode::Off);
        let sharded = split_phase_fingerprint(SimShardMode::On);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn run_phase_split_matches_one_pass_run_phase() {
        // The same per-thread access streams issued through run_phase (all
        // inline) and run_phase_split (reads in compute, combines in
        // publish) must produce bit-identical costs: statistics are additive
        // per (context, allocation) and each allocation's per-thread access
        // order is preserved.
        let run = |split: bool| -> u64 {
            let m = Machine::new(MachineSpec::test2());
            let a = m.alloc_array_with("a", 4096, AllocPolicy::Interleaved, |i| i as u64);
            let acc = m.alloc_atomic::<f64>("acc", 4, AllocPolicy::OnNode(0));
            let mut sim = SimExecutor::new(&m, 4);
            if split {
                sim.run_phase_split(
                    "p",
                    |tid, ctx| {
                        let mut s = 0.0;
                        for v in a.iter_seq(ctx, tid * 1024..(tid + 1) * 1024) {
                            s += v as f64;
                        }
                        s
                    },
                    |tid, ctx, s| {
                        acc.fetch_add(ctx, tid % 4, s);
                    },
                );
            } else {
                sim.run_phase("p", |tid, ctx| {
                    let mut s = 0.0;
                    for v in a.iter_seq(ctx, tid * 1024..(tid + 1) * 1024) {
                        s += v as f64;
                    }
                    acc.fetch_add(ctx, tid % 4, s);
                });
            }
            sim.clock().elapsed_us().to_bits()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn run_phase_split_propagates_shard_panics() {
        use crate::shard::{set_sim_sharding, sim_sharding, SimShardMode};
        let _guard = crate::shard::TEST_MODE_LOCK.lock().unwrap();
        let prev = sim_sharding();
        set_sim_sharding(SimShardMode::On);
        let m = Machine::new(MachineSpec::intel80());
        let mut sim = SimExecutor::new(&m, 40);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_phase_split(
                "boom",
                |tid, _ctx| {
                    if tid == 25 {
                        panic!("shard task failed");
                    }
                },
                |_, _, _| {},
            );
        }));
        set_sim_sharding(prev);
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "shard task failed");
    }
}
