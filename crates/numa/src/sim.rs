//! The deterministic bulk-synchronous executor.
//!
//! [`SimExecutor`] runs phases of per-simulated-thread tasks on the host,
//! integrates their classified access streams through the [`CostModel`], and
//! advances a simulated clock. Tasks run sequentially in thread-id order, so
//! every experiment is exactly reproducible; the data structures they operate
//! on are nonetheless real `Sync` types, so the same engine code is valid
//! under genuine multithreading.

use std::collections::HashMap;

use crate::cost::{BarrierKind, CostConfig, CostModel, PhaseCost};
use crate::ctx::{AccessCtx, AccessStats};
use crate::machine::Machine;
use crate::topology::NodeId;

/// Category labels for phase-time breakdowns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Edge-parallel scatter work.
    Scatter,
    /// Vertex-parallel gather/apply work.
    Gather,
    /// Anything else.
    Other,
}

/// One recorded phase or barrier interval on the simulated timeline.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Phase name, or `"barrier"`.
    pub name: &'static str,
    /// Simulated start time, µs.
    pub start_us: f64,
    /// Simulated duration, µs.
    pub dur_us: f64,
}

/// The simulated run clock: accumulated phase costs, barrier time, and a
/// per-phase-name time breakdown.
#[derive(Clone, Debug, Default)]
pub struct RunClock {
    /// Accumulated cost over every phase so far (times are sums).
    pub total: PhaseCost,
    /// Simulated time spent in barriers, µs.
    pub barrier_us: f64,
    /// Number of barriers charged.
    pub barriers: u64,
    /// Per-phase-name accumulated (time µs, invocation count).
    pub by_phase: HashMap<&'static str, (f64, u64)>,
    /// Timeline of phases and barriers, when tracing is enabled
    /// ([`SimExecutor::enable_trace`]).
    pub trace: Vec<TraceEvent>,
}

impl RunClock {
    /// Total simulated time including barriers, in µs.
    pub fn elapsed_us(&self) -> f64 {
        self.total.time_us + self.barrier_us
    }

    /// Total simulated time in seconds.
    pub fn elapsed_sec(&self) -> f64 {
        self.elapsed_us() / 1e6
    }

    /// Serialize the recorded timeline as Chrome trace-event JSON (open in
    /// `chrome://tracing` or Perfetto). Times are in microseconds, which is
    /// the format's native unit. Empty unless tracing was enabled.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1}}",
                e.name, e.start_us, e.dur_us
            ));
        }
        out.push(']');
        out
    }
}

/// Deterministic executor over `num_threads` simulated threads bound
/// node-major to the machine's cores.
pub struct SimExecutor {
    machine: Machine,
    model: CostModel,
    barrier_kind: BarrierKind,
    nodes: Vec<NodeId>,
    ctxs: Vec<AccessCtx>,
    clock: RunClock,
    trace: bool,
}

impl SimExecutor {
    /// An executor with the default cost model and the NUMA-aware barrier.
    pub fn new(machine: &Machine, num_threads: usize) -> Self {
        Self::with_config(machine, num_threads, CostConfig::default(), BarrierKind::SenseNuma)
    }

    /// An executor with explicit cost-model constants and barrier family.
    pub fn with_config(
        machine: &Machine,
        num_threads: usize,
        config: CostConfig,
        barrier_kind: BarrierKind,
    ) -> Self {
        let topo = machine.topology();
        assert!(
            num_threads >= 1 && num_threads <= topo.total_cores(),
            "thread count {num_threads} exceeds machine cores {}",
            topo.total_cores()
        );
        let ctxs: Vec<AccessCtx> = (0..num_threads)
            .map(|t| AccessCtx::with_threads(machine, t, t, num_threads))
            .collect();
        let nodes = ctxs.iter().map(|c| c.node()).collect();
        SimExecutor {
            machine: machine.clone(),
            model: CostModel::new(machine, config),
            barrier_kind,
            nodes,
            ctxs,
            clock: RunClock::default(),
            trace: false,
        }
    }

    /// Record a phase/barrier timeline into the clock (see
    /// [`RunClock::to_chrome_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// The machine this executor runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of simulated threads.
    pub fn num_threads(&self) -> usize {
        self.ctxs.len()
    }

    /// Number of distinct sockets the threads span.
    pub fn num_sockets(&self) -> usize {
        let mut seen = [false; crate::topology::MAX_NODES];
        let mut n = 0;
        for &node in &self.nodes {
            if !seen[node] {
                seen[node] = true;
                n += 1;
            }
        }
        n
    }

    /// The home node of simulated thread `tid`.
    pub fn node_of_thread(&self, tid: usize) -> NodeId {
        self.nodes[tid]
    }

    /// Threads (tids) bound to cores of `node`.
    pub fn threads_on_node(&self, node: NodeId) -> Vec<usize> {
        (0..self.ctxs.len()).filter(|&t| self.nodes[t] == node).collect()
    }

    /// Change the barrier family charged by [`SimExecutor::charge_barrier`]
    /// (the Figure 10 ablation).
    pub fn set_barrier_kind(&mut self, kind: BarrierKind) {
        self.barrier_kind = kind;
    }

    /// The currently configured barrier family.
    pub fn barrier_kind(&self) -> BarrierKind {
        self.barrier_kind
    }

    /// Run one bulk-synchronous phase: `task(tid, ctx)` is invoked once per
    /// simulated thread; the phase's simulated time is the cost-model maximum
    /// over threads and congested resources. Returns the phase cost and
    /// advances the clock.
    pub fn run_phase(
        &mut self,
        name: &'static str,
        mut task: impl FnMut(usize, &mut AccessCtx),
    ) -> PhaseCost {
        for (tid, ctx) in self.ctxs.iter_mut().enumerate() {
            task(tid, ctx);
        }
        let threads: Vec<(NodeId, AccessStats)> = self
            .ctxs
            .iter_mut()
            .enumerate()
            .map(|(t, ctx)| (self.nodes[t], ctx.take_stats()))
            .collect();
        let cost = self.model.phase_cost(&threads);
        if self.trace {
            self.clock.trace.push(TraceEvent {
                name,
                start_us: self.clock.elapsed_us(),
                dur_us: cost.time_us,
            });
        }
        self.clock.total.accumulate(&cost);
        let e = self.clock.by_phase.entry(name).or_insert((0.0, 0));
        e.0 += cost.time_us;
        e.1 += 1;
        cost
    }

    /// Charge one global barrier at the configured family's cost, scaled by
    /// the machine spec's `barrier_scale` (see [`crate::MachineSpec`]).
    pub fn charge_barrier(&mut self) {
        let us = self.barrier_kind.cost_us(self.num_sockets()) * self.machine.spec().barrier_scale;
        if self.trace {
            self.clock.trace.push(TraceEvent {
                name: "barrier",
                start_us: self.clock.elapsed_us(),
                dur_us: us,
            });
        }
        self.clock.barrier_us += us;
        self.clock.barriers += 1;
    }

    /// The accumulated clock.
    pub fn clock(&self) -> &RunClock {
        &self.clock
    }

    /// Reset the clock (e.g. to exclude graph-construction phases from a
    /// timed computation stage, as the paper does).
    pub fn reset_clock(&mut self) {
        self.clock = RunClock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AllocPolicy;
    use crate::topology::MachineSpec;

    #[test]
    fn phases_advance_clock_and_aggregate() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1 << 16, AllocPolicy::Interleaved);
        let mut sim = SimExecutor::new(&m, 4);
        assert_eq!(sim.num_threads(), 4);
        assert_eq!(sim.num_sockets(), 2);
        let c1 = sim.run_phase("scan", |tid, ctx| {
            let per = a.len() / 4;
            for i in tid * per..(tid + 1) * per {
                a.get(ctx, i);
            }
        });
        assert!(c1.time_us > 0.0);
        sim.charge_barrier();
        let c2 = sim.run_phase("scan", |_, _| {});
        assert_eq!(c2.time_us, 0.0);
        let clock = sim.clock();
        assert_eq!(clock.barriers, 1);
        assert!(clock.barrier_us > 0.0);
        assert_eq!(clock.by_phase["scan"].1, 2);
        assert!((clock.elapsed_us() - (c1.time_us + clock.barrier_us)).abs() < 1e-9);
    }

    #[test]
    fn thread_to_node_binding_is_node_major() {
        let m = Machine::new(MachineSpec::intel80());
        let sim = SimExecutor::new(&m, 40);
        assert_eq!(sim.node_of_thread(0), 0);
        assert_eq!(sim.node_of_thread(10), 1);
        assert_eq!(sim.node_of_thread(39), 3);
        assert_eq!(sim.num_sockets(), 4);
        assert_eq!(sim.threads_on_node(2), (20..30).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_kind_switch_changes_cost() {
        let m = Machine::new(MachineSpec::intel80());
        let mut sim = SimExecutor::new(&m, 80);
        sim.charge_barrier();
        let cheap = sim.clock().barrier_us;
        sim.set_barrier_kind(BarrierKind::Pthread);
        sim.charge_barrier();
        let expensive = sim.clock().barrier_us - cheap;
        assert!(expensive > 100.0 * cheap);
    }

    #[test]
    fn reset_clock_clears_everything() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 1024, AllocPolicy::Centralized);
        let mut sim = SimExecutor::new(&m, 2);
        sim.run_phase("x", |_, ctx| {
            a.get(ctx, 0);
        });
        sim.charge_barrier();
        sim.reset_clock();
        assert_eq!(sim.clock().elapsed_us(), 0.0);
        assert_eq!(sim.clock().barriers, 0);
    }

    #[test]
    fn trace_records_timeline_and_exports_json() {
        let m = Machine::new(MachineSpec::test2());
        let a = m.alloc_array::<u64>("a", 4096, AllocPolicy::Centralized);
        let mut sim = SimExecutor::new(&m, 2);
        sim.enable_trace();
        sim.run_phase("scan", |_, ctx| {
            for i in 0..100 {
                a.get(ctx, i);
            }
        });
        sim.charge_barrier();
        sim.run_phase("apply", |_, _| {});
        let clock = sim.clock();
        assert_eq!(clock.trace.len(), 3);
        assert_eq!(clock.trace[0].name, "scan");
        assert_eq!(clock.trace[1].name, "barrier");
        // Events are contiguous on the simulated timeline.
        let end0 = clock.trace[0].start_us + clock.trace[0].dur_us;
        assert!((clock.trace[1].start_us - end0).abs() < 1e-9);
        let json = clock.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"scan\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn trace_disabled_by_default() {
        let m = Machine::new(MachineSpec::test2());
        let mut sim = SimExecutor::new(&m, 1);
        sim.run_phase("x", |_, _| {});
        assert!(sim.clock().trace.is_empty());
        assert_eq!(sim.clock().to_chrome_trace(), "[]");
    }

    #[test]
    #[should_panic(expected = "exceeds machine cores")]
    fn too_many_threads_rejected() {
        let m = Machine::new(MachineSpec::test2());
        SimExecutor::new(&m, 5);
    }
}
