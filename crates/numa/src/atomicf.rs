//! Atomic floating-point cells built from integer atomics via bit casts.
//!
//! The paper's `PREdgeF` uses `AtomicAdd` on application-defined `f64` rank
//! data; Rust has no `AtomicF64`, so these wrappers implement atomic
//! add/min/max with compare-exchange loops over `AtomicU64`/`AtomicU32`.
//! The reductions used by the engines are commutative and associative, so
//! `Relaxed` ordering suffices for the data itself; phase boundaries (the
//! barriers in `polymer-sync`) provide the cross-thread happens-before edges.
//!
//! No `unsafe` is needed: `f64::to_bits`/`from_bits` are safe transmutes.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

macro_rules! atomic_float {
    ($name:ident, $float:ty, $atomic:ty, $bits:ty) => {
        /// Atomic floating-point cell; see module docs for the memory-order
        /// contract.
        #[derive(Debug, Default)]
        pub struct $name {
            bits: $atomic,
        }

        impl $name {
            /// Create a cell holding `v`.
            #[inline]
            pub fn new(v: $float) -> Self {
                Self {
                    bits: <$atomic>::new(v.to_bits()),
                }
            }

            /// Load the current value.
            #[inline]
            pub fn load(&self) -> $float {
                <$float>::from_bits(self.bits.load(Ordering::Relaxed))
            }

            /// Store a new value.
            #[inline]
            pub fn store(&self, v: $float) {
                self.bits.store(v.to_bits(), Ordering::Relaxed);
            }

            /// Atomically add `v`, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, v: $float) -> $float {
                self.rmw(|cur| cur + v)
            }

            /// Atomically take the minimum with `v`, returning the previous
            /// value. NaN inputs are ignored (the stored value wins).
            #[inline]
            pub fn fetch_min(&self, v: $float) -> $float {
                self.rmw(|cur| if v < cur { v } else { cur })
            }

            /// Atomically take the maximum with `v`, returning the previous
            /// value.
            #[inline]
            pub fn fetch_max(&self, v: $float) -> $float {
                self.rmw(|cur| if v > cur { v } else { cur })
            }

            /// Atomically multiply by `v`, returning the previous value
            /// (used by the belief-propagation message product).
            #[inline]
            pub fn fetch_mul(&self, v: $float) -> $float {
                self.rmw(|cur| cur * v)
            }

            /// The underlying integer atomic (crate-internal, for bit-exact
            /// compare-and-swap in the `Atom` impl).
            #[inline]
            pub(crate) fn as_bits(&self) -> &$atomic {
                &self.bits
            }

            #[inline]
            fn rmw(&self, f: impl Fn($float) -> $float) -> $float {
                let mut cur = self.bits.load(Ordering::Relaxed);
                loop {
                    let old = <$float>::from_bits(cur);
                    let new = f(old).to_bits();
                    match self.bits.compare_exchange_weak(
                        cur,
                        new,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
        }
    };
}

atomic_float!(AtomicF64, f64, AtomicU64, u64);
atomic_float!(AtomicF32, f32, AtomicU32, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_min_max_mul() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.fetch_add(2.5), 1.5);
        assert_eq!(a.load(), 4.0);
        assert_eq!(a.fetch_min(3.0), 4.0);
        assert_eq!(a.load(), 3.0);
        assert_eq!(a.fetch_min(5.0), 3.0);
        assert_eq!(a.load(), 3.0);
        assert_eq!(a.fetch_max(10.0), 3.0);
        assert_eq!(a.load(), 10.0);
        assert_eq!(a.fetch_mul(0.5), 10.0);
        assert_eq!(a.load(), 5.0);
    }

    #[test]
    fn f32_variant() {
        let a = AtomicF32::new(0.0);
        a.fetch_add(1.25);
        a.fetch_add(1.25);
        assert_eq!(a.load(), 2.5);
        a.store(-1.0);
        assert_eq!(a.fetch_min(-2.0), -1.0);
        assert_eq!(a.load(), -2.0);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        // Powers of two so float addition is exact regardless of order.
        let a = std::sync::Arc::new(AtomicF64::new(0.0));
        let threads = 4;
        let per = 10_000;
        crossbeam::scope(|s| {
            for _ in 0..threads {
                let a = a.clone();
                s.spawn(move |_| {
                    for _ in 0..per {
                        a.fetch_add(0.25);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(a.load(), threads as f64 * per as f64 * 0.25);
    }

    #[test]
    fn concurrent_min_converges() {
        let a = std::sync::Arc::new(AtomicF64::new(f64::INFINITY));
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let a = a.clone();
                s.spawn(move |_| {
                    for i in 0..1000u64 {
                        a.fetch_min((t * 1000 + i) as f64);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(a.load(), 0.0);
    }
}
