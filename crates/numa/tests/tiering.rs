//! Property tests for tiered-memory accounting: arbitrary promotion and
//! demotion schedules must conserve per-node byte accounting, respect node
//! capacities, and keep the promotion/demotion counters consistent with the
//! tier classification of each move.

use polymer_numa::{
    AllocPolicy, FaultPlan, Machine, MachineSpec, NumaArray, SpillPolicy, TierClass, PAGE_SIZE,
};
use proptest::prelude::*;

/// Pages the capped fast tier holds per node in these tests.
const FAST_CAP_PAGES: u64 = 3;

/// Recompute per-node live bytes from scratch out of every allocation's
/// page map — the ground truth the incremental `node_live` accounting must
/// always match.
fn recount_from_page_maps(machine: &Machine, arrays: &[NumaArray<u64>]) -> Vec<u64> {
    let mut live = vec![0u64; machine.topology().num_nodes()];
    for a in arrays {
        let (map, page_bytes) = machine
            .page_map_of(a.alloc_id())
            .expect("tiered allocations are always explicit-paged");
        for page in 0..map.len() {
            live[map.get(page)] += page_bytes;
        }
    }
    live
}

fn build_machine() -> Machine {
    let spec = MachineSpec::test2_tiered().with_fast_capacity(FAST_CAP_PAGES * PAGE_SIZE as u64);
    Machine::with_faults(spec, SpillPolicy::Demote, FaultPlan::default())
}

fn alloc_policy(sel: usize, node_hint: usize) -> AllocPolicy {
    match sel % 4 {
        0 => AllocPolicy::Interleaved,
        1 => AllocPolicy::Centralized,
        2 => AllocPolicy::OnNode(node_hint % 4),
        _ => AllocPolicy::FirstTouch(node_hint % 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random allocations followed by a random page-migration schedule:
    // after every single migration attempt (successful or refused) the
    // incremental per-node accounting equals a from-scratch recount of
    // every page map, total live bytes never change, capped nodes never
    // exceed capacity, and the promotion/demotion counters advance exactly
    // when a page crosses the tier boundary.
    #[test]
    fn migration_schedules_conserve_per_node_byte_accounting(
        allocs in proptest::collection::vec((1usize..=6, 0usize..4, 0usize..4), 1..5),
        moves in proptest::collection::vec((0usize..16, 0usize..8, 0usize..4), 1..64),
    ) {
        let machine = build_machine();
        let arrays: Vec<NumaArray<u64>> = allocs
            .iter()
            .enumerate()
            .map(|(i, &(pages, sel, hint))| {
                machine.alloc_array::<u64>(
                    &format!("prop/a{i}"),
                    pages * PAGE_SIZE / std::mem::size_of::<u64>(),
                    alloc_policy(sel, hint),
                )
            })
            .collect();

        let topo = machine.topology();
        let total: u64 = machine.node_live_bytes().iter().sum();
        // Alloc-time Demote spills may already have bumped the demotion
        // counters; migrations are charged on top of this baseline.
        let mut expect_promoted: Vec<u64> = machine.promoted_pages_by_node();
        let mut expect_demoted: Vec<u64> = machine.demoted_pages_by_node();

        for &(ai, pi, target) in &moves {
            let id = arrays[ai % arrays.len()].alloc_id();
            let (map, page_bytes) = machine.page_map_of(id).unwrap();
            let page = pi % map.len();
            let from = map.get(page);

            match machine.migrate_page(id, page, target) {
                Some(prev) => {
                    prop_assert_eq!(prev, from);
                    prop_assert_ne!(from, target);
                    prop_assert_eq!(map.get(page), target);
                    let (ft, tt) = (topo.tier_of(from), topo.tier_of(target));
                    if ft.is_slow() && tt == TierClass::Fast {
                        expect_promoted[target] += 1;
                    } else if ft == TierClass::Fast && tt.is_slow() {
                        expect_demoted[target] += 1;
                    }
                }
                None => {
                    // Refused: same node, or the target was full. Either
                    // way the page must not have moved.
                    prop_assert_eq!(map.get(page), from);
                    if from != target {
                        let cap = machine.capacity_of_node(target).unwrap();
                        prop_assert!(
                            machine.node_live_bytes()[target] + page_bytes > cap,
                            "migration refused without a capacity reason"
                        );
                    }
                }
            }

            let live = machine.node_live_bytes();
            prop_assert_eq!(live.iter().sum::<u64>(), total, "total live bytes drifted");
            prop_assert_eq!(&live, &recount_from_page_maps(&machine, &arrays));
            for (node, &bytes) in live.iter().enumerate() {
                if let Some(cap) = machine.capacity_of_node(node) {
                    prop_assert!(bytes <= cap, "node {} over capacity", node);
                }
            }
            prop_assert_eq!(&machine.promoted_pages_by_node(), &expect_promoted);
            prop_assert_eq!(&machine.demoted_pages_by_node(), &expect_demoted);
        }

        // Freeing everything returns every node to zero live bytes.
        drop(arrays);
        prop_assert!(machine.node_live_bytes().iter().all(|&b| b == 0));
    }
}
