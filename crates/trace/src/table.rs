//! The compact per-phase text table — the third trace sink, printed by the
//! `polymer-bench` binaries and the `numa_explorer` example.

use crate::TraceBuffer;

/// Render the per-phase breakdown of a recorded run as a right-aligned text
/// table: calls, total time, share of the run, bytes by locality, and the
/// byte-weighted LLC hit rate per phase name, with a barrier row and a total
/// row.
///
/// ```
/// use polymer_trace::{table::phase_table, PhaseSpan, SocketSample, TraceBuffer};
///
/// let mut buf = TraceBuffer::new(1, 1);
/// buf.push_phase(PhaseSpan {
///     name: "scatter",
///     iteration: Some(0),
///     start_us: 0.0,
///     dur_us: 90.0,
///     per_thread_us: vec![90.0],
///     per_socket: vec![SocketSample::default()],
///     spilled_pages: 0,
/// });
/// buf.push_barrier(90.0, 10.0);
/// let rendered = phase_table(&buf);
/// assert!(rendered.contains("scatter"));
/// assert!(rendered.contains("90.0%"));   // scatter's share of the run
/// assert!(rendered.contains("total"));
/// ```
pub fn phase_table(buf: &TraceBuffer) -> String {
    let rows = buf.phase_rows();
    let total_us = buf.total_phase_us() + buf.total_barrier_us();
    let mut cells: Vec<[String; 7]> = vec![[
        "phase".into(),
        "calls".into(),
        "time(ms)".into(),
        "share".into(),
        "local(MB)".into(),
        "remote(MB)".into(),
        "llc-hit".into(),
    ]];
    for r in &rows {
        cells.push([
            r.name.to_string(),
            r.calls.to_string(),
            format!("{:.3}", r.total_us / 1e3),
            share(r.total_us, total_us),
            format!("{:.2}", r.local_bytes as f64 / 1e6),
            format!("{:.2}", r.remote_bytes as f64 / 1e6),
            format!("{:.1}%", r.llc_hit_ratio * 100.0),
        ]);
    }
    let (lb, rb): (u64, u64) = rows.iter().fold((0, 0), |(l, r), row| {
        (l + row.local_bytes, r + row.remote_bytes)
    });
    cells.push([
        "total".into(),
        (buf.phases.len() + buf.barriers.len()).to_string(),
        format!("{:.3}", total_us / 1e3),
        "100.0%".into(),
        format!("{:.2}", lb as f64 / 1e6),
        format!("{:.2}", rb as f64 / 1e6),
        String::new(),
    ]);

    let mut widths = [0usize; 7];
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if i == 0 || i + 2 == cells.len() {
            let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&dashes.join("  "));
            out.push('\n');
        }
    }
    if buf.truncated {
        out.push_str("(trace truncated: the run ended abnormally)\n");
    }
    out
}

fn share(part: f64, total: f64) -> String {
    if total == 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part / total * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhaseSpan, SocketSample};

    #[test]
    fn table_lists_phases_barrier_and_total() {
        let mut buf = TraceBuffer::new(1, 2);
        let mut s = SocketSample::default();
        s.bytes[0][0] = 2_000_000;
        s.bytes[1][2] = 500_000;
        for i in 0..2 {
            buf.set_iteration(Some(i));
            buf.push_phase(PhaseSpan {
                name: "scatter",
                iteration: Some(i),
                start_us: i as f64 * 110.0,
                dur_us: 100.0,
                per_thread_us: vec![100.0, 80.0],
                per_socket: vec![s.clone()],
                spilled_pages: 0,
            });
            buf.push_barrier(i as f64 * 110.0 + 100.0, 10.0);
        }
        let t = phase_table(&buf);
        assert!(t.contains("scatter"), "{t}");
        assert!(t.contains("barrier"), "{t}");
        assert!(t.contains("total"), "{t}");
        assert!(t.contains("4.00"), "local MB column: {t}");
        assert!(t.contains("90.9%"), "share column: {t}");
        assert!(!t.contains("truncated"));
        buf.mark_truncated();
        assert!(phase_table(&buf).contains("truncated"));
    }

    #[test]
    fn empty_buffer_renders_without_division_by_zero() {
        let t = phase_table(&TraceBuffer::new(1, 1));
        assert!(t.contains("total"));
    }
}
