//! # polymer-trace — the observability layer
//!
//! A lightweight, zero-dependency event/span layer that the executors emit
//! into: spans for phases, iterations and barrier crossings, plus per-socket
//! counters (transactions and bytes split by access pattern × hop distance,
//! LLC hit/miss bytes, busy time, spill events). Times are simulated
//! nanosecond-resolution microseconds when recorded by the deterministic
//! [`SimExecutor`](https://docs.rs/polymer-numa), and wall-clock
//! microseconds when recorded by the real-thread executor through
//! [`SharedTracer`].
//!
//! Three sinks consume a recorded [`TraceBuffer`]:
//!
//! * the buffer itself — queryable in-memory from tests and harness code
//!   ([`TraceBuffer::total_barrier_us`], [`TraceBuffer::phase_rows`],
//!   [`TraceBuffer::iteration_us`], …);
//! * [`chrome::chrome_trace_json`] — a `chrome://tracing` / Perfetto JSON
//!   exporter with one lane per simulated socket and one per worker;
//! * [`table::phase_table`] — a compact per-phase text table the
//!   `polymer-bench` binaries print and write alongside JSON results.
//!
//! Tracing is off by default and zero-cost when disabled: the recording
//! handle is the two-variant enum [`Tracer`] (no `dyn` in the hot path), and
//! every record call takes a closure that is never invoked — and whose
//! argument is never built — while the tracer is [`Tracer::Off`].
//!
//! ```
//! use polymer_trace::{PhaseSpan, SocketSample, Tracer};
//!
//! let mut tracer = Tracer::default();          // Off: record() is a no-op
//! tracer.record(|_| unreachable!("not called while disabled"));
//!
//! tracer.enable(2, 4);                         // 2 sockets, 4 workers
//! tracer.set_iteration(Some(0));
//! tracer.record(|buf| {
//!     buf.push_phase(PhaseSpan {
//!         name: "scatter",
//!         iteration: buf.iteration(),
//!         start_us: 0.0,
//!         dur_us: 125.0,
//!         per_thread_us: vec![125.0, 110.0, 90.0, 80.0],
//!         per_socket: vec![SocketSample::default(); 2],
//!         spilled_pages: 0,
//!     });
//!     buf.push_barrier(125.0, 8.0);
//! });
//! let buf = tracer.buffer().unwrap();
//! assert_eq!(buf.phases.len(), 1);
//! assert_eq!(buf.total_barrier_us(), 8.0);
//! // Every socket waits out the full barrier, so each lane sums to it.
//! assert_eq!(buf.barrier_wait_per_socket(), vec![8.0, 8.0]);
//! ```

#![deny(unsafe_code)]

pub mod chrome;
pub mod table;

pub use chrome::chrome_trace_json;
pub use table::phase_table;

/// Per-socket counters for one phase, attributed to the *issuing* socket
/// (the socket whose threads performed the accesses).
///
/// The 2×4 matrices are indexed `[pattern][distance]` with pattern
/// 0 = sequential, 1 = random, and distance the hop class
/// 0 = local, 1 = one hop intra-package, 2 = one hop, 3 = two hops —
/// matching `Pattern::index()` and `DistClass::index()` in `polymer-numa`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SocketSample {
    /// Load (read) transactions issued by this socket's threads.
    pub loads: u64,
    /// Store (write) transactions issued by this socket's threads.
    pub stores: u64,
    /// Transactions by `[pattern][hop distance]`.
    pub count: [[u64; 4]; 2],
    /// Bytes moved by `[pattern][hop distance]` (before cache filtering).
    pub bytes: [[u64; 4]; 2],
    /// Bytes served from the socket's LLC.
    pub llc_hit_bytes: f64,
    /// Bytes that missed the LLC and went to DRAM.
    pub llc_miss_bytes: f64,
    /// Busy time of the socket's slowest thread, µs.
    pub busy_us: f64,
}

impl SocketSample {
    /// Total transactions over every pattern/distance bucket.
    pub fn total_count(&self) -> u64 {
        self.count.iter().flatten().sum()
    }

    /// Bytes whose home was this socket's own node (distance class 0).
    pub fn local_bytes(&self) -> u64 {
        self.bytes[0][0] + self.bytes[1][0]
    }

    /// Bytes homed on any other node (distance classes 1–3).
    pub fn remote_bytes(&self) -> u64 {
        self.bytes.iter().map(|p| p[1] + p[2] + p[3]).sum()
    }

    /// LLC hit fraction by bytes (0 when nothing was accessed).
    pub fn llc_hit_ratio(&self) -> f64 {
        let all = self.llc_hit_bytes + self.llc_miss_bytes;
        if all == 0.0 {
            0.0
        } else {
            self.llc_hit_bytes / all
        }
    }

    /// Fold another sample into this one (counters add; busy time adds,
    /// since per-phase busy times are disjoint on the timeline).
    pub fn merge(&mut self, other: &SocketSample) {
        self.loads += other.loads;
        self.stores += other.stores;
        for p in 0..2 {
            for d in 0..4 {
                self.count[p][d] += other.count[p][d];
                self.bytes[p][d] += other.bytes[p][d];
            }
        }
        self.llc_hit_bytes += other.llc_hit_bytes;
        self.llc_miss_bytes += other.llc_miss_bytes;
        self.busy_us += other.busy_us;
    }
}

/// One bulk-synchronous phase on the run timeline.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    /// Phase name (`"scatter-push"`, `"gather-pull"`, `"apply"`, …).
    pub name: &'static str,
    /// Iteration/superstep stamp, when the executor set one.
    pub iteration: Option<u64>,
    /// Start on the run timeline, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Busy time per worker for this phase, µs.
    pub per_thread_us: Vec<f64>,
    /// Counters per socket (see [`SocketSample`]); may be empty when the
    /// recording executor has no cost model (real-thread runs).
    pub per_socket: Vec<SocketSample>,
    /// Pages that spilled off their requested node during this phase.
    pub spilled_pages: u64,
}

/// One barrier crossing on the run timeline.
#[derive(Clone, Copy, Debug)]
pub struct BarrierSpan {
    /// Iteration/superstep stamp, when the executor set one.
    pub iteration: Option<u64>,
    /// Start on the run timeline, µs.
    pub start_us: f64,
    /// Synchronization cost, µs. Every participating socket waits this out.
    pub dur_us: f64,
}

/// A span recorded by one real OS worker thread (wall-clock executors).
#[derive(Clone, Debug)]
pub struct WorkerSpan {
    /// Span name (`"iteration"`, `"barrier-wait"`, …).
    pub name: &'static str,
    /// Recording worker (lane).
    pub worker: usize,
    /// Iteration stamp.
    pub iteration: Option<u64>,
    /// Start relative to the tracer's epoch, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
}

/// Aggregated per-phase-name statistics (one row of the compact table).
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase name.
    pub name: &'static str,
    /// Number of recorded spans.
    pub calls: u64,
    /// Summed duration, µs.
    pub total_us: f64,
    /// Summed bytes homed on the issuing socket.
    pub local_bytes: u64,
    /// Summed bytes homed on other sockets.
    pub remote_bytes: u64,
    /// Byte-weighted LLC hit fraction.
    pub llc_hit_ratio: f64,
    /// Pages spilled during these spans.
    pub spilled_pages: u64,
}

/// The in-memory sink: everything recorded during one run, queryable
/// directly and exportable through [`chrome_trace_json`] / [`phase_table`].
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    /// Simulated sockets participating in the run.
    pub sockets: usize,
    /// Worker threads participating in the run.
    pub workers: usize,
    /// Recorded phases, in timeline order.
    pub phases: Vec<PhaseSpan>,
    /// Recorded barrier crossings, in timeline order.
    pub barriers: Vec<BarrierSpan>,
    /// Spans recorded by real worker threads (empty for simulated runs).
    pub worker_spans: Vec<WorkerSpan>,
    /// Set when the run ended abnormally (worker panic, poisoned barrier):
    /// the buffer is valid but covers only the completed prefix.
    pub truncated: bool,
    iteration: Option<u64>,
}

impl TraceBuffer {
    /// An empty buffer for a run spanning `sockets` sockets and `workers`
    /// worker threads.
    pub fn new(sockets: usize, workers: usize) -> Self {
        TraceBuffer {
            sockets,
            workers,
            ..Default::default()
        }
    }

    /// The current iteration stamp applied to newly recorded spans.
    pub fn iteration(&self) -> Option<u64> {
        self.iteration
    }

    /// Set (or clear) the iteration stamp for subsequent spans.
    pub fn set_iteration(&mut self, iteration: Option<u64>) {
        self.iteration = iteration;
    }

    /// Append a phase span.
    pub fn push_phase(&mut self, span: PhaseSpan) {
        self.phases.push(span);
    }

    /// Append a barrier crossing stamped with the current iteration.
    pub fn push_barrier(&mut self, start_us: f64, dur_us: f64) {
        self.barriers.push(BarrierSpan {
            iteration: self.iteration,
            start_us,
            dur_us,
        });
    }

    /// Append a worker-thread span (wall-clock executors).
    pub fn push_worker_span(&mut self, span: WorkerSpan) {
        self.worker_spans.push(span);
    }

    /// Mark the buffer as covering only a truncated prefix of the run.
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }

    /// End of the last recorded span, µs (the recorded timeline's extent).
    pub fn end_us(&self) -> f64 {
        let p = self
            .phases
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0, f64::max);
        let b = self
            .barriers
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0, f64::max);
        let w = self
            .worker_spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0, f64::max);
        p.max(b).max(w)
    }

    /// Total synchronization time over all recorded barriers, µs.
    pub fn total_barrier_us(&self) -> f64 {
        self.barriers.iter().map(|b| b.dur_us).sum()
    }

    /// Barrier wait time per socket, µs. A barrier releases no socket until
    /// the last one arrives, so every socket lane waits out each barrier's
    /// full cost: each entry equals [`TraceBuffer::total_barrier_us`].
    pub fn barrier_wait_per_socket(&self) -> Vec<f64> {
        vec![self.total_barrier_us(); self.sockets]
    }

    /// Sum of phase durations, µs.
    pub fn total_phase_us(&self) -> f64 {
        self.phases.iter().map(|p| p.dur_us).sum()
    }

    /// Merge of all per-socket counters over every phase.
    pub fn socket_totals(&self) -> Vec<SocketSample> {
        let mut totals = vec![SocketSample::default(); self.sockets];
        for p in &self.phases {
            for (t, s) in totals.iter_mut().zip(&p.per_socket) {
                t.merge(s);
            }
        }
        totals
    }

    /// Per-phase-name aggregation in first-seen order, with a final
    /// `"barrier"` row when barriers were recorded.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let mut rows: Vec<PhaseRow> = Vec::new();
        for p in &self.phases {
            let row = match rows.iter_mut().find(|r| r.name == p.name) {
                Some(r) => r,
                None => {
                    rows.push(PhaseRow {
                        name: p.name,
                        calls: 0,
                        total_us: 0.0,
                        local_bytes: 0,
                        remote_bytes: 0,
                        llc_hit_ratio: 0.0,
                        spilled_pages: 0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.calls += 1;
            row.total_us += p.dur_us;
            row.spilled_pages += p.spilled_pages;
            for s in &p.per_socket {
                row.local_bytes += s.local_bytes();
                row.remote_bytes += s.remote_bytes();
                // Stash hit/miss byte sums in the ratio field; normalized
                // below once every span is folded in.
                row.llc_hit_ratio += s.llc_hit_bytes;
            }
        }
        for row in &mut rows {
            let all = (row.local_bytes + row.remote_bytes) as f64;
            row.llc_hit_ratio = if all == 0.0 {
                0.0
            } else {
                row.llc_hit_ratio / all
            };
        }
        if !self.barriers.is_empty() {
            rows.push(PhaseRow {
                name: "barrier",
                calls: self.barriers.len() as u64,
                total_us: self.total_barrier_us(),
                local_bytes: 0,
                remote_bytes: 0,
                llc_hit_ratio: 0.0,
                spilled_pages: 0,
            });
        }
        rows
    }

    /// Time per iteration stamp, µs: `(iteration, phase + barrier time)`
    /// for every stamp seen, in ascending iteration order. Spans recorded
    /// without a stamp (construction, init) are excluded.
    pub fn iteration_us(&self) -> Vec<(u64, f64)> {
        let mut acc: Vec<(u64, f64)> = Vec::new();
        let mut add = |it: Option<u64>, dur: f64| {
            let Some(it) = it else { return };
            match acc.binary_search_by_key(&it, |e| e.0) {
                Ok(i) => acc[i].1 += dur,
                Err(i) => acc.insert(i, (it, dur)),
            }
        };
        for p in &self.phases {
            add(p.iteration, p.dur_us);
        }
        for b in &self.barriers {
            add(b.iteration, b.dur_us);
        }
        acc
    }
}

/// The recording handle: a two-variant enum so that the disabled path is a
/// branch on a discriminant — no allocation, no virtual dispatch, and the
/// closure passed to [`Tracer::record`] is never run (nor its captured
/// argument built) while off.
#[derive(Clone, Debug, Default)]
pub enum Tracer {
    /// Recording disabled (the default); every operation is a no-op.
    #[default]
    Off,
    /// Recording into the boxed buffer.
    On(Box<TraceBuffer>),
}

impl Tracer {
    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::On(_))
    }

    /// Start recording into a fresh buffer for `sockets` × `workers`.
    /// Replaces any previously recorded buffer.
    pub fn enable(&mut self, sockets: usize, workers: usize) {
        *self = Tracer::On(Box::new(TraceBuffer::new(sockets, workers)));
    }

    /// Stop recording and drop any buffer.
    pub fn disable(&mut self) {
        *self = Tracer::Off;
    }

    /// Run `f` against the buffer if recording is enabled; otherwise do
    /// nothing. This is the single hot-path entry: callers build spans
    /// *inside* the closure so the disabled path does no work at all.
    #[inline]
    pub fn record(&mut self, f: impl FnOnce(&mut TraceBuffer)) {
        if let Tracer::On(buf) = self {
            f(buf);
        }
    }

    /// Stamp subsequent spans with an iteration number (no-op when off).
    #[inline]
    pub fn set_iteration(&mut self, iteration: Option<u64>) {
        if let Tracer::On(buf) = self {
            buf.set_iteration(iteration);
        }
    }

    /// The recorded buffer, if enabled.
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        match self {
            Tracer::Off => None,
            Tracer::On(buf) => Some(buf),
        }
    }

    /// Take the recorded buffer out, leaving the tracer off.
    pub fn take(&mut self) -> Option<Box<TraceBuffer>> {
        match std::mem::take(self) {
            Tracer::Off => None,
            Tracer::On(buf) => Some(buf),
        }
    }
}

/// A thread-safe tracer for real-OS-thread executors: workers record
/// wall-clock spans relative to a common epoch through a shared reference.
/// The mutex sits outside any per-edge work (workers record once per phase
/// or barrier), so contention is negligible.
#[derive(Debug)]
pub struct SharedTracer {
    epoch: std::time::Instant,
    buf: std::sync::Mutex<TraceBuffer>,
}

impl SharedTracer {
    /// A tracer whose epoch (time zero) is now.
    pub fn new(sockets: usize, workers: usize) -> Self {
        SharedTracer {
            epoch: std::time::Instant::now(),
            buf: std::sync::Mutex::new(TraceBuffer::new(sockets, workers)),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Record a worker span. Panic-tolerant: a poisoned mutex (a sibling
    /// panicked while recording) still records.
    pub fn push_worker_span(&self, span: WorkerSpan) {
        self.lock().push_worker_span(span);
    }

    /// Mark the eventual buffer truncated (abnormal end of run).
    pub fn mark_truncated(&self) {
        self.lock().mark_truncated();
    }

    /// Extract the buffer (consumes the tracer).
    pub fn into_buffer(self) -> TraceBuffer {
        self.buf
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceBuffer> {
        self.buf.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bytes_local: u64, bytes_remote: u64) -> SocketSample {
        let mut s = SocketSample::default();
        s.bytes[0][0] = bytes_local;
        s.bytes[0][2] = bytes_remote;
        s.count[0][0] = bytes_local / 8;
        s.count[0][2] = bytes_remote / 8;
        s.loads = s.total_count();
        s.llc_hit_bytes = bytes_local as f64 / 2.0;
        s.llc_miss_bytes = bytes_local as f64 / 2.0 + bytes_remote as f64;
        s
    }

    fn demo_buffer() -> TraceBuffer {
        let mut buf = TraceBuffer::new(2, 4);
        buf.set_iteration(Some(0));
        buf.push_phase(PhaseSpan {
            name: "scatter",
            iteration: buf.iteration(),
            start_us: 0.0,
            dur_us: 100.0,
            per_thread_us: vec![100.0, 90.0, 60.0, 50.0],
            per_socket: vec![sample(800, 160), sample(400, 80)],
            spilled_pages: 0,
        });
        buf.push_barrier(100.0, 8.0);
        buf.set_iteration(Some(1));
        buf.push_phase(PhaseSpan {
            name: "scatter",
            iteration: buf.iteration(),
            start_us: 108.0,
            dur_us: 50.0,
            per_thread_us: vec![50.0, 40.0, 30.0, 20.0],
            per_socket: vec![sample(400, 80), sample(200, 40)],
            spilled_pages: 2,
        });
        buf.push_barrier(158.0, 8.0);
        buf
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let mut t = Tracer::default();
        assert!(!t.is_enabled());
        t.record(|_| panic!("must not run while off"));
        t.set_iteration(Some(3));
        assert!(t.buffer().is_none());
        assert!(t.take().is_none());
    }

    #[test]
    fn enabled_tracer_records_and_takes() {
        let mut t = Tracer::default();
        t.enable(2, 4);
        t.set_iteration(Some(7));
        t.record(|buf| buf.push_barrier(0.0, 5.0));
        let buf = t.take().expect("buffer present");
        assert!(!t.is_enabled(), "take leaves the tracer off");
        assert_eq!(buf.barriers.len(), 1);
        assert_eq!(buf.barriers[0].iteration, Some(7));
    }

    #[test]
    fn barrier_wait_per_socket_sums_to_total() {
        let buf = demo_buffer();
        assert_eq!(buf.total_barrier_us(), 16.0);
        assert_eq!(buf.barrier_wait_per_socket(), vec![16.0, 16.0]);
        assert_eq!(buf.end_us(), 166.0);
    }

    #[test]
    fn phase_rows_aggregate_by_name() {
        let rows = demo_buffer().phase_rows();
        assert_eq!(rows.len(), 2, "scatter + barrier");
        assert_eq!(rows[0].name, "scatter");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].total_us, 150.0);
        assert_eq!(rows[0].local_bytes, 1800);
        assert_eq!(rows[0].remote_bytes, 360);
        assert_eq!(rows[0].spilled_pages, 2);
        assert!(rows[0].llc_hit_ratio > 0.0 && rows[0].llc_hit_ratio < 1.0);
        assert_eq!(rows[1].name, "barrier");
        assert_eq!(rows[1].calls, 2);
    }

    #[test]
    fn iteration_times_split_phases_and_barriers() {
        let per_iter = demo_buffer().iteration_us();
        assert_eq!(per_iter, vec![(0, 108.0), (1, 58.0)]);
    }

    #[test]
    fn socket_totals_merge_all_phases() {
        let totals = demo_buffer().socket_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].local_bytes(), 1200);
        assert_eq!(totals[0].remote_bytes(), 240);
        assert_eq!(totals[1].local_bytes(), 600);
    }

    #[test]
    fn shared_tracer_collects_worker_spans() {
        let tr = std::sync::Arc::new(SharedTracer::new(1, 2));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let tr = tr.clone();
                std::thread::spawn(move || {
                    tr.push_worker_span(WorkerSpan {
                        name: "iteration",
                        worker: w,
                        iteration: Some(0),
                        start_us: tr.now_us(),
                        dur_us: 1.0,
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        tr.mark_truncated();
        let buf = std::sync::Arc::try_unwrap(tr).unwrap().into_buffer();
        assert_eq!(buf.worker_spans.len(), 2);
        assert!(buf.truncated);
    }
}
