//! Chrome trace-event JSON export (open in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! The exporter lays a [`TraceBuffer`] out as three processes:
//!
//! * **pid 1 — "run"**: the bulk-synchronous timeline — one `"X"` duration
//!   event per phase (with its iteration stamp in `args`) and per barrier;
//! * **pid 2 — "sockets"**: one lane per simulated socket, carrying a
//!   `barrier-wait` span for every barrier (each socket waits out the full
//!   synchronization cost, so each lane's spans sum to the run's barrier
//!   time) and `"C"` counter events sampling cumulative per-socket bytes by
//!   locality and LLC hit/miss bytes at every phase boundary;
//! * **pid 3 — "workers"**: one lane per worker thread — per-phase busy
//!   spans for simulated runs, raw recorded spans for real-thread runs.
//!
//! Everything is hand-serialized (this crate is dependency-free); timestamps
//! are microseconds, the format's native unit.

use crate::TraceBuffer;

const PID_RUN: u32 = 1;
const PID_SOCKETS: u32 = 2;
const PID_WORKERS: u32 = 3;

/// Serialize `buf` as a Chrome trace-event JSON object (the
/// `{"traceEvents": [...]}` envelope Perfetto and `chrome://tracing` load).
pub fn chrome_trace_json(buf: &TraceBuffer) -> String {
    let mut w = Writer::new();

    // Metadata: process and thread names for each lane.
    w.meta_process(PID_RUN, "run");
    w.meta_process(PID_SOCKETS, "sockets");
    w.meta_process(PID_WORKERS, "workers");
    w.meta_thread(PID_RUN, 0, "timeline");
    for s in 0..buf.sockets {
        w.meta_thread(PID_SOCKETS, s as u32, &format!("socket {s}"));
    }
    for t in 0..buf.workers {
        w.meta_thread(PID_WORKERS, t as u32, &format!("worker {t}"));
    }

    // pid 1: the phase/barrier timeline.
    for p in &buf.phases {
        w.span(PID_RUN, 0, p.name, p.start_us, p.dur_us, p.iteration);
    }
    for b in &buf.barriers {
        w.span(PID_RUN, 0, "barrier", b.start_us, b.dur_us, b.iteration);
    }

    // pid 2: per-socket barrier waits + cumulative counters.
    for b in &buf.barriers {
        for s in 0..buf.sockets {
            w.span(
                PID_SOCKETS,
                s as u32,
                "barrier-wait",
                b.start_us,
                b.dur_us,
                b.iteration,
            );
        }
    }
    let mut cum = vec![crate::SocketSample::default(); buf.sockets];
    for p in &buf.phases {
        for (c, s) in cum.iter_mut().zip(&p.per_socket) {
            c.merge(s);
        }
        let ts = p.start_us + p.dur_us;
        for (s, c) in cum.iter().enumerate() {
            w.counter(
                PID_SOCKETS,
                &format!("socket{s} bytes"),
                ts,
                &[
                    ("local", c.local_bytes() as f64),
                    ("remote", c.remote_bytes() as f64),
                ],
            );
            w.counter(
                PID_SOCKETS,
                &format!("socket{s} llc"),
                ts,
                &[("hit", c.llc_hit_bytes), ("miss", c.llc_miss_bytes)],
            );
        }
    }

    // pid 3: worker busy spans.
    for p in &buf.phases {
        for (t, &us) in p.per_thread_us.iter().enumerate() {
            if us > 0.0 {
                w.span(PID_WORKERS, t as u32, p.name, p.start_us, us, p.iteration);
            }
        }
    }
    for s in &buf.worker_spans {
        w.span(
            PID_WORKERS,
            s.worker as u32,
            s.name,
            s.start_us,
            s.dur_us,
            s.iteration,
        );
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&w.events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    if buf.truncated {
        out.push_str(",\"truncated\":true");
    }
    out.push('}');
    out
}

struct Writer {
    events: Vec<String>,
}

impl Writer {
    fn new() -> Self {
        Writer { events: Vec::new() }
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_str(name)
        ));
    }

    fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_str(name)
        ));
    }

    fn span(&mut self, pid: u32, tid: u32, name: &str, ts: f64, dur: f64, iteration: Option<u64>) {
        let args = match iteration {
            Some(it) => format!(",\"args\":{{\"iteration\":{it}}}"),
            None => String::new(),
        };
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid}{args}}}",
            json_str(name),
            json_num(ts),
            json_num(dur)
        ));
    }

    fn counter(&mut self, pid: u32, name: &str, ts: f64, series: &[(&str, f64)]) {
        let args: Vec<String> = series
            .iter()
            .map(|(k, v)| format!("{}:{}", json_str(k), json_num(*v)))
            .collect();
        self.events.push(format!(
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":0,\
             \"args\":{{{}}}}}",
            json_str(name),
            json_num(ts),
            args.join(",")
        ));
    }
}

/// JSON number: finite floats in shortest-round-trip form, never `NaN`/`inf`
/// (which JSON cannot carry — clamped to 0).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhaseSpan, SocketSample, WorkerSpan};

    #[test]
    fn export_contains_all_three_processes() {
        let mut buf = TraceBuffer::new(2, 2);
        buf.set_iteration(Some(0));
        buf.push_phase(PhaseSpan {
            name: "scatter",
            iteration: buf.iteration(),
            start_us: 0.0,
            dur_us: 10.0,
            per_thread_us: vec![10.0, 8.0],
            per_socket: vec![SocketSample::default(); 2],
            spilled_pages: 0,
        });
        buf.push_barrier(10.0, 2.0);
        buf.push_worker_span(WorkerSpan {
            name: "barrier-wait",
            worker: 1,
            iteration: Some(0),
            start_us: 10.0,
            dur_us: 2.0,
        });
        let json = chrome_trace_json(&buf);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        for needle in [
            "\"process_name\"",
            "\"socket 1\"",
            "\"worker 1\"",
            "\"scatter\"",
            "\"barrier\"",
            "\"barrier-wait\"",
            "\"ph\":\"C\"",
            "\"iteration\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains("truncated"));
    }

    #[test]
    fn truncated_buffers_are_flagged() {
        let mut buf = TraceBuffer::new(1, 1);
        buf.mark_truncated();
        assert!(chrome_trace_json(&buf).contains("\"truncated\":true"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(f64::NAN), "0.0");
        assert_eq!(json_num(0.1), "0.1");
    }
}
