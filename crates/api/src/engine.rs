//! The engine entry point shared by Polymer and the three baselines.

use polymer_faults::{panic_with, PolymerError, PolymerResult};
use polymer_graph::Graph;
use polymer_numa::{Machine, MemoryReport, RunClock};

use crate::backend::{Backend, ExecProfile};
use crate::driver::RecoverySession;
use crate::program::Program;
use crate::result::RunResult;

/// Which system an engine models, for reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's contribution (crate `polymer-core`).
    Polymer,
    /// Vertex-centric hybrid push/pull baseline (crate `polymer-ligra`).
    Ligra,
    /// Edge-centric scatter–shuffle–gather baseline (crate `polymer-xstream`).
    XStream,
    /// Asynchronous worklist baseline (crate `polymer-galois`).
    Galois,
}

impl EngineKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Polymer => "Polymer",
            EngineKind::Ligra => "Ligra",
            EngineKind::XStream => "X-Stream",
            EngineKind::Galois => "Galois",
        }
    }
}

/// A graph-analytics engine: executes a [`Program`] over a graph on a
/// simulated machine with `threads` simulated threads (bound node-major).
///
/// Engines are configured at construction (partitioning strategy, barrier
/// family, adaptive-states toggle, ...); `run` is side-effect free with
/// respect to the engine itself, so one engine value can serve many runs.
pub trait Engine {
    /// Which system this engine models.
    fn kind(&self) -> EngineKind;

    /// The engine's core entry point: execute `prog` to completion,
    /// surfacing every failure — invalid configuration, injected faults,
    /// divergence, a panicking engine body — as a typed [`PolymerError`]
    /// instead of a panic. Graph construction/loading time is excluded from
    /// the result's clock, as in the paper's methodology.
    ///
    /// With `traced == true` the engine records a span/counter timeline into
    /// the result's [`polymer_numa::Tracer`] (reachable through
    /// [`RunResult::trace`]): one span per bulk-synchronous phase and
    /// barrier, stamped with the iteration, carrying per-socket counters.
    /// Tracing must never change simulated time — the workspace test suite
    /// pins traced and untraced runs to bit-identical clocks.
    ///
    /// `recovery` supplies the run's checkpoint policy/store and an
    /// optional checkpoint to resume from
    /// ([`RecoverySession::disabled`] on every plain path — which must be
    /// charged-work-free, so disabled runs stay bit-identical to the golden
    /// fixtures). Resuming restores the checkpointed vertex values and
    /// frontier through charged `"restore"` sweeps and continues stamping
    /// global iterations from [`crate::driver::Checkpoint::iteration`].
    fn try_run_rec<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
        traced: bool,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>>;

    /// [`Engine::try_run_rec`] without recovery — tracing only.
    fn try_run_traced<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
        traced: bool,
    ) -> PolymerResult<RunResult<P::Val>> {
        self.try_run_rec(
            machine,
            threads,
            graph,
            prog,
            traced,
            &RecoverySession::disabled(),
        )
    }

    /// [`Engine::try_run_traced`] with tracing off — the common, zero-cost
    /// path.
    fn try_run<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
    ) -> PolymerResult<RunResult<P::Val>> {
        self.try_run_traced(machine, threads, graph, prog, false)
    }

    /// Infallible convenience wrapper over [`Engine::try_run`] for bench
    /// binaries and examples: panics (with the typed error as payload, see
    /// [`polymer_faults::panic_with`]) on any failure.
    fn run<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
    ) -> RunResult<P::Val> {
        self.try_run(machine, threads, graph, prog)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// Infallible wrapper over [`Engine::try_run_traced`], for harness code
    /// that wants the timeline without error plumbing.
    fn run_traced<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
    ) -> RunResult<P::Val> {
        self.try_run_traced(machine, threads, graph, prog, true)
            .unwrap_or_else(|e| panic_with(e))
    }

    /// How this engine's strategy maps onto the real-thread executor
    /// (direction policy, frontier adaptivity). The default is the full
    /// hybrid profile; engines with pinned strategies override it.
    fn exec_profile(&self) -> ExecProfile {
        ExecProfile::default()
    }

    /// Execute on a chosen [`Backend`]: `Simulated` dispatches to
    /// [`Engine::try_run`] on `machine` (deterministic, fully accounted);
    /// `RealThreads` runs the program with real OS threads under this
    /// engine's [`ExecProfile`] — values and iterations are real, while the
    /// simulated clock and memory report are empty (wall-clock time is the
    /// caller's to measure, and `sockets` reports the barrier group count).
    fn try_run_on<P: Program>(
        &self,
        backend: &Backend,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
    ) -> PolymerResult<RunResult<P::Val>> {
        self.try_run_on_rec(
            backend,
            machine,
            threads,
            graph,
            prog,
            &RecoverySession::disabled(),
        )
    }

    /// [`Engine::try_run_on`] with a [`RecoverySession`]: both backends
    /// publish checkpoints to the session's store and honour its resume
    /// checkpoint. This is the entry point the
    /// [`crate::supervisor::RunSupervisor`] drives per attempt.
    fn try_run_on_rec<P: Program>(
        &self,
        backend: &Backend,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
        recovery: &RecoverySession<P::Val>,
    ) -> PolymerResult<RunResult<P::Val>> {
        match backend {
            Backend::Simulated => self.try_run_rec(machine, threads, graph, prog, false, recovery),
            Backend::RealThreads(cfg) => {
                let (values, iterations) = crate::parallel::try_run_threads_rec(
                    graph,
                    prog,
                    threads,
                    cfg,
                    &self.exec_profile(),
                    None,
                    recovery,
                )?;
                Ok(RunResult {
                    values,
                    iterations,
                    clock: RunClock::default(),
                    memory: MemoryReport {
                        peak_bytes: 0,
                        spilled_pages: 0,
                        tags: vec![],
                        spilled_by_node: vec![],
                        demoted_by_node: vec![],
                        promoted_by_node: vec![],
                    },
                    threads,
                    sockets: cfg.groups.clamp(1, threads.max(1)),
                    recovery: None,
                    tag: None,
                })
            }
        }
    }
}

/// Validate the configuration shared by every engine: the thread count and
/// (for single-source programs) the source vertex. Engines call this before
/// allocating anything so a bad parameter is a typed
/// [`PolymerError::InvalidConfig`], not a panic.
pub fn validate_run_config<P: Program>(threads: usize, g: &Graph, prog: &P) -> PolymerResult<()> {
    if threads == 0 {
        return Err(PolymerError::InvalidConfig(
            "threads must be >= 1".to_string(),
        ));
    }
    if let crate::program::FrontierInit::Single(s) = prog.initial_frontier(g) {
        let n = g.num_vertices();
        if s as usize >= n {
            return Err(PolymerError::InvalidConfig(format!(
                "source vertex {s} out of range (graph has {n} vertices)"
            )));
        }
    }
    Ok(())
}

/// Run an engine body, converting any panic that escapes it into a typed
/// [`PolymerError`] (an engine bug or an injected fault surfacing through
/// infallible code paths). Engines wrap their `try_run` bodies in this so
/// `try_run` upholds its no-panic contract even over legacy internals.
pub fn catch_engine_faults<T>(f: impl FnOnce() -> PolymerResult<T>) -> PolymerResult<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(PolymerError::from_panic(payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(EngineKind::Polymer.name(), "Polymer");
        assert_eq!(EngineKind::Ligra.name(), "Ligra");
        assert_eq!(EngineKind::XStream.name(), "X-Stream");
        assert_eq!(EngineKind::Galois.name(), "Galois");
    }
}
