//! The engine entry point shared by Polymer and the three baselines.

use polymer_graph::Graph;
use polymer_numa::Machine;

use crate::program::Program;
use crate::result::RunResult;

/// Which system an engine models, for reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's contribution (crate `polymer-core`).
    Polymer,
    /// Vertex-centric hybrid push/pull baseline (crate `polymer-ligra`).
    Ligra,
    /// Edge-centric scatter–shuffle–gather baseline (crate `polymer-xstream`).
    XStream,
    /// Asynchronous worklist baseline (crate `polymer-galois`).
    Galois,
}

impl EngineKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Polymer => "Polymer",
            EngineKind::Ligra => "Ligra",
            EngineKind::XStream => "X-Stream",
            EngineKind::Galois => "Galois",
        }
    }
}

/// A graph-analytics engine: executes a [`Program`] over a graph on a
/// simulated machine with `threads` simulated threads (bound node-major).
///
/// Engines are configured at construction (partitioning strategy, barrier
/// family, adaptive-states toggle, ...); `run` is side-effect free with
/// respect to the engine itself, so one engine value can serve many runs.
pub trait Engine {
    /// Which system this engine models.
    fn kind(&self) -> EngineKind;

    /// Execute `prog` to completion and return the result. Graph
    /// construction/loading time is excluded from the result's clock, as in
    /// the paper's methodology.
    fn run<P: Program>(
        &self,
        machine: &Machine,
        threads: usize,
        graph: &Graph,
        prog: &P,
    ) -> RunResult<P::Val>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(EngineKind::Polymer.name(), "Polymer");
        assert_eq!(EngineKind::Ligra.name(), "Ligra");
        assert_eq!(EngineKind::XStream.name(), "X-Stream");
        assert_eq!(EngineKind::Galois.name(), "Galois");
    }
}
