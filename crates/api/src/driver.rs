//! The engine-agnostic iteration driver for the simulated backend.
//!
//! All four engines execute the same bulk-synchronous skeleton — stamp the
//! iteration, run the engine's phases, check the safety cap, stop when the
//! active set drains or `max_iters` is reached, then package the clock and
//! memory report into a [`RunResult`]. [`IterationDriver`] owns that
//! skeleton (and the [`SimExecutor`] it drives) so each engine contributes
//! only its paper-differentiating policy: the per-iteration phase body.
//!
//! The driver is accounting-transparent: it issues exactly the
//! `set_iteration` / `run_phase` / `charge_barrier` sequence the engines
//! issued before the extraction, so simulated output (PhaseCosts, simulated
//! seconds, Chrome traces) is bit-identical — the conformance suite pins
//! this against pre-refactor golden fixtures.
//!
//! ## Iteration checkpoints
//!
//! The driver is also where **iteration-granular recovery** hooks in: a
//! [`CheckpointPolicy`] decides after which completed iterations the
//! engine's state is snapshotted into a [`Checkpoint`] (vertex values +
//! [`FrontierSnapshot`] + iteration stamp) and published to a shared
//! [`CheckpointStore`]; [`IterationDriver::resume_at`] fast-forwards the
//! iteration counter so a resumed run stamps *global* iterations —
//! fault-plan trigger points already crossed are not replayed. The engines
//! charge their snapshot sweeps through the bulk accessors (a `"checkpoint"`
//! phase), so checkpoint cost is visible in simulated `PhaseCosts`;
//! [`CheckpointPolicy::Never`] takes the exact pre-existing code path and
//! keeps runs bit-identical to the golden fixtures.

use std::sync::{Arc, Mutex};

use polymer_faults::{PolymerError, PolymerResult};
use polymer_numa::{BarrierKind, Machine, MemoryReport, SimExecutor};
use polymer_sync::FrontierSnapshot;
use serde::{Deserialize, Error as SerdeError, Map, Serialize, Value};

use crate::result::RunResult;

/// After which completed iterations a run snapshots its state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never checkpoint (the default): zero overhead, bit-identical to the
    /// pre-recovery engines.
    #[default]
    Never,
    /// Checkpoint after every `k`th completed iteration (`EveryN(1)` =
    /// every iteration). `EveryN(0)` is treated as `Never`.
    EveryN(usize),
    /// Checkpoint after every iteration *while the run is under deadline
    /// pressure* (a barrier deadline or supervisor attempt budget is
    /// configured — see [`RecoverySession::with_deadline_pressure`]);
    /// behaves as `Never` otherwise.
    OnDeadlinePressure,
}

impl CheckpointPolicy {
    /// True when a snapshot is due after `completed` iterations.
    pub fn due(&self, completed: usize, deadline_pressure: bool) -> bool {
        match *self {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EveryN(0) => false,
            CheckpointPolicy::EveryN(k) => completed.is_multiple_of(k),
            CheckpointPolicy::OnDeadlinePressure => deadline_pressure,
        }
    }
}

/// One recoverable image of a run: everything an engine needs to continue
/// from the end of iteration `iteration` as if never interrupted.
/// Serializable through the vendored `serde` for on-disk persistence.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint<V> {
    /// Iterations completed when the snapshot was taken; a resumed run
    /// continues stamping from here (global iteration space).
    pub iteration: usize,
    /// Per-vertex `curr` values at the end of that iteration.
    pub values: Vec<V>,
    /// The live frontier, representation-exact (see [`FrontierSnapshot`]).
    pub frontier: FrontierSnapshot,
}

impl<V: Serialize> Serialize for Checkpoint<V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("iteration", Value::U64(self.iteration as u64));
        m.insert(
            "values",
            Value::Arr(self.values.iter().map(Serialize::to_value).collect()),
        );
        m.insert("frontier", self.frontier.to_value());
        Value::Obj(m)
    }
}

impl<V: Deserialize> Deserialize for Checkpoint<V> {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let m = v
            .as_object()
            .ok_or_else(|| SerdeError::custom("Checkpoint: expected object"))?;
        let field = |k: &str| {
            m.get(k)
                .ok_or_else(|| SerdeError::custom(format!("Checkpoint: missing field {k:?}")))
        };
        let iteration = field("iteration")?
            .as_u64()
            .ok_or_else(|| SerdeError::custom("Checkpoint: iteration must be an integer"))?
            as usize;
        let values = field("values")?
            .as_array()
            .ok_or_else(|| SerdeError::custom("Checkpoint: values must be an array"))?
            .iter()
            .map(V::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let frontier = FrontierSnapshot::from_value(field("frontier")?)?;
        Ok(Checkpoint {
            iteration,
            values,
            frontier,
        })
    }
}

/// A shared slot for the latest [`Checkpoint`] of a run. Cheap to clone
/// (`Arc` internally): the supervisor and the running engine hold the same
/// store, so a checkpoint published mid-attempt survives that attempt's
/// failure. By default only the latest checkpoint is retained;
/// [`CheckpointStore::with_history`] keeps all of them (tests, analysis).
#[derive(Debug)]
pub struct CheckpointStore<V> {
    inner: Arc<Mutex<StoreSlot<V>>>,
}

#[derive(Debug)]
struct StoreSlot<V> {
    latest: Option<Checkpoint<V>>,
    history: Option<Vec<Checkpoint<V>>>,
    taken: usize,
}

impl<V> Clone for CheckpointStore<V> {
    fn clone(&self) -> Self {
        CheckpointStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> Default for CheckpointStore<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CheckpointStore<V> {
    /// An empty store retaining only the latest checkpoint.
    pub fn new() -> Self {
        CheckpointStore {
            inner: Arc::new(Mutex::new(StoreSlot {
                latest: None,
                history: None,
                taken: 0,
            })),
        }
    }

    /// An empty store that additionally retains every published checkpoint.
    pub fn with_history() -> Self {
        let s = Self::new();
        s.inner.lock().unwrap().history = Some(Vec::new());
        s
    }

    /// Publish a checkpoint (becomes the latest).
    pub fn put(&self, ckpt: Checkpoint<V>)
    where
        V: Clone,
    {
        let mut slot = self.inner.lock().unwrap();
        slot.taken += 1;
        if let Some(h) = &mut slot.history {
            h.push(ckpt.clone());
        }
        slot.latest = Some(ckpt);
    }

    /// The latest checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint<V>>
    where
        V: Clone,
    {
        self.inner.lock().unwrap().latest.clone()
    }

    /// Every checkpoint published so far (empty unless built
    /// [`CheckpointStore::with_history`]).
    pub fn history(&self) -> Vec<Checkpoint<V>>
    where
        V: Clone,
    {
        self.inner
            .lock()
            .unwrap()
            .history
            .clone()
            .unwrap_or_default()
    }

    /// Checkpoints published over the store's lifetime.
    pub fn taken(&self) -> usize {
        self.inner.lock().unwrap().taken
    }
}

/// What one engine attempt needs to know about recovery: the checkpoint
/// policy and store to publish into, and optionally a checkpoint to resume
/// from. [`RecoverySession::disabled`] (policy `Never`, no store) is the
/// default path every plain `try_run` takes — it adds no charged work.
pub struct RecoverySession<V> {
    policy: CheckpointPolicy,
    store: Option<CheckpointStore<V>>,
    resume: Option<Checkpoint<V>>,
    deadline_pressure: bool,
}

impl<V> Default for RecoverySession<V> {
    fn default() -> Self {
        Self::disabled()
    }
}

impl<V> RecoverySession<V> {
    /// No checkpointing, no resume: the plain-run path.
    pub fn disabled() -> Self {
        RecoverySession {
            policy: CheckpointPolicy::Never,
            store: None,
            resume: None,
            deadline_pressure: false,
        }
    }

    /// A session that publishes checkpoints per `policy` into `store`.
    pub fn new(policy: CheckpointPolicy, store: CheckpointStore<V>) -> Self {
        RecoverySession {
            policy,
            store: Some(store),
            resume: None,
            deadline_pressure: false,
        }
    }

    /// Resume the attempt from `ckpt` instead of the program's initial
    /// state.
    pub fn with_resume(mut self, ckpt: Option<Checkpoint<V>>) -> Self {
        self.resume = ckpt;
        self
    }

    /// Mark the run as under deadline pressure (activates
    /// [`CheckpointPolicy::OnDeadlinePressure`]).
    pub fn with_deadline_pressure(mut self, pressure: bool) -> Self {
        self.deadline_pressure = pressure;
        self
    }

    /// The checkpoint to resume from, if any.
    pub fn resume(&self) -> Option<&Checkpoint<V>> {
        self.resume.as_ref()
    }

    /// True when a snapshot is due after `completed` iterations.
    pub fn should_checkpoint(&self, completed: usize) -> bool {
        self.store.is_some() && self.policy.due(completed, self.deadline_pressure)
    }

    /// Publish a checkpoint to the session's store (no-op without one).
    pub fn record(&self, ckpt: Checkpoint<V>)
    where
        V: Clone,
    {
        if let Some(store) = &self.store {
            store.put(ckpt);
        }
    }
}

/// Owns the simulated executor and the iteration loop shared by every
/// engine. Synchronous engines call [`IterationDriver::run_synchronous`];
/// asynchronous ones (Galois's worklist) drive [`IterationDriver::sim`]
/// directly and count rounds with [`IterationDriver::advance_round`] —
/// worklist rounds are not traced supersteps, so the driver never stamps
/// them.
pub struct IterationDriver {
    sim: SimExecutor,
    threads: usize,
    iters: usize,
    /// Iteration the counter was re-based to by
    /// [`IterationDriver::resume_from_state`]; the safety cap bounds
    /// `iters - base` so a warm-started repair loop gets its own full
    /// budget. Zero for cold runs and checkpoint resumes.
    base: usize,
    iter_cap: usize,
}

impl IterationDriver {
    /// A driver over a fresh executor with the default cost model: `threads`
    /// simulated threads bound node-major, the engine's `barrier` family,
    /// tracing per `traced`. `num_vertices` sizes the iteration safety cap
    /// (`2·|V| + 64`): a converging synchronous program never needs more
    /// iterations than vertices (BFS/SSSP level counts are bounded by the
    /// diameter < |V|); a frontier still alive past the cap is oscillating,
    /// not converging.
    pub fn new(
        machine: &Machine,
        threads: usize,
        barrier: BarrierKind,
        traced: bool,
        num_vertices: usize,
    ) -> Self {
        let mut sim = SimExecutor::with_config(machine, threads, Default::default(), barrier);
        if traced {
            sim.enable_trace();
        }
        IterationDriver {
            sim,
            threads,
            iters: 0,
            base: 0,
            iter_cap: 2 * num_vertices + 64,
        }
    }

    /// The executor, for phase bodies and engine setup queries (socket
    /// count, thread-to-node binding).
    pub fn sim(&mut self) -> &mut SimExecutor {
        &mut self.sim
    }

    /// Iterations (or asynchronous rounds) executed so far.
    pub fn iterations(&self) -> usize {
        self.iters
    }

    /// Count one asynchronous scheduling round (no superstep stamp).
    pub fn advance_round(&mut self) {
        self.iters += 1;
    }

    /// Fast-forward the iteration counter to resume from a
    /// [`Checkpoint::iteration`]: the next executed iteration stamps
    /// `iteration`, so a resumed run lives in the same global iteration
    /// space as the uninterrupted one (`max_iters`, the safety cap, and
    /// fault-plan trigger points all keep their meaning).
    pub fn resume_at(&mut self, iteration: usize) {
        self.iters = iteration;
    }

    /// Warm-start hook for incremental recomputation: like
    /// [`IterationDriver::resume_at`], the counter fast-forwards so repair
    /// iterations stamp in the same global space as the prior run (a
    /// warm-started result reports `prior.iterations + repair rounds`), but
    /// the iteration safety cap is *re-based* here — the repair loop gets
    /// its own full `2·|V| + 64` budget regardless of how many iterations
    /// the prior result already spent. Checkpoint resume deliberately does
    /// not re-base: it continues the *same* logical run, so cap and
    /// fault-trigger points must keep their absolute meaning.
    pub fn resume_from_state(&mut self, iteration: usize) {
        self.iters = iteration;
        self.base = iteration;
    }

    /// The bulk-synchronous loop: while `is_active(state)` and under
    /// `max_iters`, stamp the iteration and run `body(sim, iter, state)`.
    /// `state` is the engine's loop-carried data (its frontier or active
    /// count): the body consumes and rebuilds it each iteration. Errors from
    /// the body (divergence, injected faults) and the safety cap surface as
    /// typed [`PolymerError`]s.
    pub fn run_synchronous<S>(
        &mut self,
        max_iters: usize,
        state: &mut S,
        is_active: impl FnMut(&S) -> bool,
        body: impl FnMut(&mut SimExecutor, usize, &mut S) -> PolymerResult<()>,
    ) -> PolymerResult<()> {
        self.run_recoverable(
            max_iters,
            state,
            &RecoverySession::<u32>::disabled(),
            is_active,
            body,
            |_, _| (Vec::new(), FrontierSnapshot::default()),
        )
    }

    /// [`IterationDriver::run_synchronous`] with checkpoint hooks: after an
    /// iteration completes and [`RecoverySession::should_checkpoint`] says a
    /// snapshot is due, `snapshot(sim, state)` captures the engine's
    /// `(values, frontier)` — charging its sweeps through the executor, so
    /// the cost lands in `PhaseCosts` — and the driver stamps and publishes
    /// the [`Checkpoint`]. With a disabled session (the
    /// [`IterationDriver::run_synchronous`] path) `snapshot` is never
    /// called and the loop is the exact pre-recovery sequence.
    pub fn run_recoverable<S, V>(
        &mut self,
        max_iters: usize,
        state: &mut S,
        session: &RecoverySession<V>,
        mut is_active: impl FnMut(&S) -> bool,
        mut body: impl FnMut(&mut SimExecutor, usize, &mut S) -> PolymerResult<()>,
        mut snapshot: impl FnMut(&mut SimExecutor, &S) -> (Vec<V>, FrontierSnapshot),
    ) -> PolymerResult<()>
    where
        V: Clone,
    {
        while is_active(state) && self.iters < max_iters {
            if self.iters - self.base >= self.iter_cap {
                return Err(PolymerError::IterationCapExceeded { cap: self.iter_cap });
            }
            self.sim.set_iteration(Some(self.iters as u64));
            body(&mut self.sim, self.iters, state)?;
            self.iters += 1;
            if session.should_checkpoint(self.iters) {
                let (values, frontier) = snapshot(&mut self.sim, state);
                session.record(Checkpoint {
                    iteration: self.iters,
                    values,
                    frontier,
                });
            }
        }
        Ok(())
    }

    /// Package the run: final values, iteration count, the accumulated
    /// clock, and the machine's memory report.
    pub fn finish<V>(self, values: Vec<V>) -> RunResult<V> {
        let memory = MemoryReport::from_machine(self.sim.machine());
        let sockets = self.sim.num_sockets();
        RunResult {
            values,
            iterations: self.iters,
            clock: self.sim.clock().clone(),
            memory,
            threads: self.threads,
            sockets,
            recovery: None,
            tag: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_numa::MachineSpec;

    #[test]
    fn synchronous_loop_stamps_and_counts() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 2, BarrierKind::Hierarchical, false, 100);
        let mut remaining = 3usize;
        d.run_synchronous(
            10,
            &mut remaining,
            |r| *r > 0,
            |sim, _i, r| {
                sim.run_phase("noop", |_tid, _ctx| {});
                sim.charge_barrier();
                *r -= 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(d.iterations(), 3);
        let r = d.finish(vec![0u32; 4]);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.clock.barriers, 3);
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn max_iters_bounds_the_loop() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 100);
        let mut state = ();
        d.run_synchronous(5, &mut state, |_| true, |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(d.iterations(), 5);
    }

    #[test]
    fn runaway_frontier_hits_the_safety_cap() {
        let m = Machine::new(MachineSpec::test2());
        // num_vertices = 0 -> cap 64.
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 0);
        let mut state = ();
        let err = d
            .run_synchronous(usize::MAX, &mut state, |_| true, |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            PolymerError::IterationCapExceeded { cap: 64 }
        ));
    }

    #[test]
    fn checkpoint_policy_cadence() {
        assert!(!CheckpointPolicy::Never.due(1, true));
        assert!(!CheckpointPolicy::EveryN(0).due(4, false));
        assert!(CheckpointPolicy::EveryN(1).due(1, false));
        assert!(CheckpointPolicy::EveryN(3).due(6, false));
        assert!(!CheckpointPolicy::EveryN(3).due(7, false));
        assert!(CheckpointPolicy::OnDeadlinePressure.due(1, true));
        assert!(!CheckpointPolicy::OnDeadlinePressure.due(1, false));
    }

    #[test]
    fn recoverable_loop_publishes_and_resumes() {
        let m = Machine::new(MachineSpec::test2());
        let store = CheckpointStore::<u32>::with_history();
        let session = RecoverySession::new(CheckpointPolicy::EveryN(2), store.clone());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 100);
        let mut remaining = 5u32;
        d.run_recoverable(
            10,
            &mut remaining,
            &session,
            |r| *r > 0,
            |_, _, r| {
                *r -= 1;
                Ok(())
            },
            |_, r| (vec![*r], FrontierSnapshot::sparse(vec![*r], 0)),
        )
        .unwrap();
        assert_eq!(d.iterations(), 5);
        // Checkpoints after iterations 2 and 4.
        assert_eq!(store.taken(), 2);
        let hist = store.history();
        assert_eq!(
            hist.iter().map(|c| c.iteration).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(store.latest().unwrap().values, vec![1]);

        // Resume from the latest: the counter continues in global space.
        let ck = store.latest().unwrap();
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 100);
        d.resume_at(ck.iteration);
        let mut remaining = ck.values[0];
        d.run_synchronous(
            10,
            &mut remaining,
            |r| *r > 0,
            |_, _, r| {
                *r -= 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(d.iterations(), 5);
    }

    #[test]
    fn warm_start_stamps_globally_and_rebases_the_cap() {
        let m = Machine::new(MachineSpec::test2());
        // num_vertices = 0 -> cap 64. A prior run spent 60 iterations; a
        // warm-started repair of 10 more must not trip the cap.
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 0);
        d.resume_from_state(60);
        let mut remaining = 10usize;
        let mut stamps = Vec::new();
        d.run_synchronous(
            usize::MAX,
            &mut remaining,
            |r| *r > 0,
            |_, i, r| {
                stamps.push(i);
                *r -= 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(d.iterations(), 70);
        assert_eq!(stamps.first(), Some(&60));
        assert_eq!(stamps.last(), Some(&69));

        // The re-based cap still fires after a full fresh budget.
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 0);
        d.resume_from_state(60);
        let mut state = ();
        let err = d
            .run_synchronous(usize::MAX, &mut state, |_| true, |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            PolymerError::IterationCapExceeded { cap: 64 }
        ));
        assert_eq!(d.iterations(), 60 + 64);
    }

    #[test]
    fn disabled_session_never_snapshots() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 100);
        let mut left = 3u32;
        d.run_recoverable(
            10,
            &mut left,
            &RecoverySession::<u32>::disabled(),
            |r| *r > 0,
            |_, _, r| {
                *r -= 1;
                Ok(())
            },
            |_, _| panic!("snapshot must not run without a store"),
        )
        .unwrap();
    }

    #[test]
    fn checkpoint_serde_round_trip() {
        let ck = Checkpoint {
            iteration: 3,
            values: vec![7u64, 9],
            frontier: FrontierSnapshot::dense(vec![1, 4], 11),
        };
        let v = ck.to_value();
        let back = Checkpoint::<u64>::from_value(&v).expect("checkpoint deserializes");
        assert_eq!(back, ck);
        // Text round trip through the vendored serde_json layer happens in
        // the workspace tests; the Value tree is the contract here.
        assert!(Checkpoint::<u64>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn async_rounds_counted_without_stamping() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 10);
        d.sim().run_phase("relax", |_tid, _ctx| {});
        d.advance_round();
        d.advance_round();
        assert_eq!(d.finish(Vec::<u32>::new()).iterations, 2);
    }
}
