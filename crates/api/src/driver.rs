//! The engine-agnostic iteration driver for the simulated backend.
//!
//! All four engines execute the same bulk-synchronous skeleton — stamp the
//! iteration, run the engine's phases, check the safety cap, stop when the
//! active set drains or `max_iters` is reached, then package the clock and
//! memory report into a [`RunResult`]. [`IterationDriver`] owns that
//! skeleton (and the [`SimExecutor`] it drives) so each engine contributes
//! only its paper-differentiating policy: the per-iteration phase body.
//!
//! The driver is accounting-transparent: it issues exactly the
//! `set_iteration` / `run_phase` / `charge_barrier` sequence the engines
//! issued before the extraction, so simulated output (PhaseCosts, simulated
//! seconds, Chrome traces) is bit-identical — the conformance suite pins
//! this against pre-refactor golden fixtures.

use polymer_faults::{PolymerError, PolymerResult};
use polymer_numa::{BarrierKind, Machine, MemoryReport, SimExecutor};

use crate::result::RunResult;

/// Owns the simulated executor and the iteration loop shared by every
/// engine. Synchronous engines call [`IterationDriver::run_synchronous`];
/// asynchronous ones (Galois's worklist) drive [`IterationDriver::sim`]
/// directly and count rounds with [`IterationDriver::advance_round`] —
/// worklist rounds are not traced supersteps, so the driver never stamps
/// them.
pub struct IterationDriver {
    sim: SimExecutor,
    threads: usize,
    iters: usize,
    iter_cap: usize,
}

impl IterationDriver {
    /// A driver over a fresh executor with the default cost model: `threads`
    /// simulated threads bound node-major, the engine's `barrier` family,
    /// tracing per `traced`. `num_vertices` sizes the iteration safety cap
    /// (`2·|V| + 64`): a converging synchronous program never needs more
    /// iterations than vertices (BFS/SSSP level counts are bounded by the
    /// diameter < |V|); a frontier still alive past the cap is oscillating,
    /// not converging.
    pub fn new(
        machine: &Machine,
        threads: usize,
        barrier: BarrierKind,
        traced: bool,
        num_vertices: usize,
    ) -> Self {
        let mut sim = SimExecutor::with_config(machine, threads, Default::default(), barrier);
        if traced {
            sim.enable_trace();
        }
        IterationDriver {
            sim,
            threads,
            iters: 0,
            iter_cap: 2 * num_vertices + 64,
        }
    }

    /// The executor, for phase bodies and engine setup queries (socket
    /// count, thread-to-node binding).
    pub fn sim(&mut self) -> &mut SimExecutor {
        &mut self.sim
    }

    /// Iterations (or asynchronous rounds) executed so far.
    pub fn iterations(&self) -> usize {
        self.iters
    }

    /// Count one asynchronous scheduling round (no superstep stamp).
    pub fn advance_round(&mut self) {
        self.iters += 1;
    }

    /// The bulk-synchronous loop: while `is_active(state)` and under
    /// `max_iters`, stamp the iteration and run `body(sim, iter, state)`.
    /// `state` is the engine's loop-carried data (its frontier or active
    /// count): the body consumes and rebuilds it each iteration. Errors from
    /// the body (divergence, injected faults) and the safety cap surface as
    /// typed [`PolymerError`]s.
    pub fn run_synchronous<S>(
        &mut self,
        max_iters: usize,
        state: &mut S,
        mut is_active: impl FnMut(&S) -> bool,
        mut body: impl FnMut(&mut SimExecutor, usize, &mut S) -> PolymerResult<()>,
    ) -> PolymerResult<()> {
        while is_active(state) && self.iters < max_iters {
            if self.iters >= self.iter_cap {
                return Err(PolymerError::IterationCapExceeded { cap: self.iter_cap });
            }
            self.sim.set_iteration(Some(self.iters as u64));
            body(&mut self.sim, self.iters, state)?;
            self.iters += 1;
        }
        Ok(())
    }

    /// Package the run: final values, iteration count, the accumulated
    /// clock, and the machine's memory report.
    pub fn finish<V>(self, values: Vec<V>) -> RunResult<V> {
        let memory = MemoryReport::from_machine(self.sim.machine());
        let sockets = self.sim.num_sockets();
        RunResult {
            values,
            iterations: self.iters,
            clock: self.sim.clock().clone(),
            memory,
            threads: self.threads,
            sockets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymer_numa::MachineSpec;

    #[test]
    fn synchronous_loop_stamps_and_counts() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 2, BarrierKind::Hierarchical, false, 100);
        let mut remaining = 3usize;
        d.run_synchronous(
            10,
            &mut remaining,
            |r| *r > 0,
            |sim, _i, r| {
                sim.run_phase("noop", |_tid, _ctx| {});
                sim.charge_barrier();
                *r -= 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(d.iterations(), 3);
        let r = d.finish(vec![0u32; 4]);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.clock.barriers, 3);
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn max_iters_bounds_the_loop() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 100);
        let mut state = ();
        d.run_synchronous(5, &mut state, |_| true, |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(d.iterations(), 5);
    }

    #[test]
    fn runaway_frontier_hits_the_safety_cap() {
        let m = Machine::new(MachineSpec::test2());
        // num_vertices = 0 -> cap 64.
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 0);
        let mut state = ();
        let err = d
            .run_synchronous(usize::MAX, &mut state, |_| true, |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            PolymerError::IterationCapExceeded { cap: 64 }
        ));
    }

    #[test]
    fn async_rounds_counted_without_stamping() {
        let m = Machine::new(MachineSpec::test2());
        let mut d = IterationDriver::new(&m, 1, BarrierKind::Hierarchical, false, 10);
        d.sim().run_phase("relax", |_tid, _ctx| {});
        d.advance_round();
        d.advance_round();
        assert_eq!(d.finish(Vec::<u32>::new()).iterations, 2);
    }
}
